"""One-call regeneration of every Section 6 experiment.

The per-table benchmarks under ``benchmarks/`` are the canonical drivers
(they also assert the expected shapes); this module packages the same
computations for programmatic use: build an :class:`ExperimentSuite` over
two datasets and call :meth:`run_all` (or individual ``table_*`` /
``figure_*`` methods) to get rendered tables keyed by experiment id.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.core.recommender import PAPER_STRATEGIES
from repro.data.schema import Dataset
from repro.eval import (
    ExperimentHarness,
    average_list_overlap,
    average_pairwise_similarity,
    average_true_positive_rate,
    format_table,
    frequency_histogram,
    goal_completeness_after,
    library_frequencies,
    popularity_correlation,
    recommendation_frequencies,
    usefulness_summary,
)
from repro.eval.timing import DEFAULT_SCALES, run_scaling_study
from repro.exceptions import EvaluationError
from repro.utils.rng import SeedLike


@dataclass(frozen=True, slots=True)
class SuiteConfig:
    """Knobs of the experiment suite."""

    k: int = 10
    max_users: int | None = 150
    observed_fraction: float = 0.3
    seed: SeedLike = 0
    frequency_bins: tuple[float, ...] = (0.2, 0.4, 0.6, 0.8, 1.0)
    tpr_cutoffs: tuple[int, ...] = (5, 10)
    scaling_seed: SeedLike = 7
    run_scaling: bool = True

    def __post_init__(self) -> None:
        if self.k <= 0:
            raise EvaluationError(f"k must be positive, got {self.k}")


class ExperimentSuite:
    """Regenerate the paper's tables and figures over two datasets.

    Args:
        grocery: the dense, feature-carrying scenario (paper dataset 1).
        life_goals: the sparse scenario with per-user true goals (dataset 2).
        config: suite parameters.
    """

    def __init__(
        self,
        grocery: Dataset,
        life_goals: Dataset,
        config: SuiteConfig | None = None,
    ) -> None:
        self.config = config or SuiteConfig()
        self.grocery = ExperimentHarness(
            grocery,
            k=self.config.k,
            observed_fraction=self.config.observed_fraction,
            seed=self.config.seed,
            max_users=self.config.max_users,
        )
        self.life_goals = ExperimentHarness(
            life_goals,
            k=self.config.k,
            observed_fraction=self.config.observed_fraction,
            seed=self.config.seed,
            max_users=self.config.max_users,
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _lists(self, harness: ExperimentHarness, method: str):
        if method in PAPER_STRATEGIES:
            return harness.run_goal_method(method)
        return harness.run_baseline(method)

    def _harnesses(self) -> list[tuple[str, ExperimentHarness]]:
        return [
            (self.grocery.dataset.name, self.grocery),
            (self.life_goals.dataset.name, self.life_goals),
        ]

    # ------------------------------------------------------------------
    # Experiments
    # ------------------------------------------------------------------

    def table2_overlap(self) -> str:
        """Goal-based vs standard top-k overlap, both datasets."""
        sections: list[str] = []
        for name, harness in self._harnesses():
            baselines = [
                b for b in harness.baseline_names()
                if b in ("content", "cf_mf", "cf_knn")
            ]
            rows = []
            for strategy in PAPER_STRATEGIES:
                row: list[object] = [strategy]
                for baseline in baselines:
                    row.append(
                        average_list_overlap(
                            self._lists(harness, strategy),
                            self._lists(harness, baseline),
                        )
                    )
                rows.append(row)
            sections.append(
                format_table(
                    ["method"] + [f"vs_{b}" for b in baselines],
                    rows,
                    title=f"Table 2 ({name})",
                )
            )
        return "\n\n".join(sections)

    def table3_popularity(self) -> str:
        """Pearson correlation with the top-20 popular actions."""
        sections: list[str] = []
        for name, harness in self._harnesses():
            activities = harness.observed_activities()
            methods = list(harness.baseline_names()[:3]) + list(PAPER_STRATEGIES)
            rows = [
                [m, popularity_correlation(activities, self._lists(harness, m))]
                for m in methods
            ]
            sections.append(
                format_table(
                    ["method", "pearson_top20"], rows, title=f"Table 3 ({name})"
                )
            )
        return "\n\n".join(sections)

    def table4_usefulness(self) -> str:
        """Goal completeness after following the recommendations."""
        sections: list[str] = []
        for name, harness in self._harnesses():
            use_true_goals = any(user.user.goals for user in harness.split)
            methods = [
                b for b in harness.baseline_names()
                if b in ("content", "cf_knn", "cf_mf")
            ] + list(PAPER_STRATEGIES)
            rows = []
            for method in methods:
                summaries = [
                    goal_completeness_after(
                        harness.model,
                        user.observed,
                        rec,
                        goals=user.user.goals if use_true_goals else None,
                    )
                    for user, rec in zip(
                        harness.split, self._lists(harness, method)
                    )
                ]
                agg = usefulness_summary(summaries)
                rows.append([method, agg.avg_avg, agg.min_avg, agg.max_avg])
            sections.append(
                format_table(
                    ["method", "AvgAvg", "MinAvg", "MaxAvg"],
                    rows,
                    title=f"Table 4 ({name})",
                )
            )
        return "\n\n".join(sections)

    def table5_similarity(self) -> str:
        """Pairwise feature similarity within lists (grocery only)."""
        harness = self.grocery
        similarity = harness.content_similarity()
        methods = ["content", "cf_knn", "cf_mf"] + list(PAPER_STRATEGIES)
        rows = []
        for method in methods:
            summary = average_pairwise_similarity(
                self._lists(harness, method), similarity
            )
            rows.append([method, summary.average, summary.maximum, summary.minimum])
        return format_table(
            ["method", "AvgAvg", "AvgMax", "AvgMin"],
            rows,
            title=f"Table 5 ({harness.dataset.name})",
        )

    def figure4_tpr(self) -> str:
        """Average true positive rate at the configured cutoffs."""
        sections: list[str] = []
        for name, harness in self._harnesses():
            hidden = harness.hidden_sets()
            methods = [
                b for b in harness.baseline_names()
                if b in ("content", "cf_knn", "cf_mf")
            ] + list(PAPER_STRATEGIES)
            rows = []
            for method in methods:
                lists = self._lists(harness, method)
                row: list[object] = [method]
                for cutoff in self.config.tpr_cutoffs:
                    row.append(
                        average_true_positive_rate(
                            [rec.top(cutoff) for rec in lists], hidden
                        )
                    )
                rows.append(row)
            sections.append(
                format_table(
                    ["method"]
                    + [f"tpr@{c}" for c in self.config.tpr_cutoffs],
                    rows,
                    title=f"Figure 4 ({name})",
                )
            )
        return "\n\n".join(sections)

    def figures5_6_frequency(self) -> str:
        """Frequency profiles of the retrieved actions (grocery)."""
        harness = self.grocery
        bins = self.config.frequency_bins
        sections: list[str] = []
        for figure, frequency_fn in (
            ("Figure 5", recommendation_frequencies),
            (
                "Figure 6",
                lambda lists: library_frequencies(harness.model, lists),
            ),
        ):
            rows = []
            for strategy in PAPER_STRATEGIES:
                histogram = frequency_histogram(
                    frequency_fn(self._lists(harness, strategy)), bins
                )
                rows.append([strategy] + [fraction for _, fraction in histogram])
            sections.append(
                format_table(
                    ["method"] + [f"<= {edge}" for edge in bins],
                    rows,
                    title=f"{figure} ({harness.dataset.name})",
                )
            )
        return "\n\n".join(sections)

    def table6_goal_overlap(self) -> str:
        """Overlap among the goal-based methods, both datasets."""
        sections: list[str] = []
        for name, harness in self._harnesses():
            rows = []
            for a in PAPER_STRATEGIES:
                row: list[object] = [a]
                for b in PAPER_STRATEGIES:
                    row.append(
                        1.0
                        if a == b
                        else average_list_overlap(
                            self._lists(harness, a), self._lists(harness, b)
                        )
                    )
                rows.append(row)
            sections.append(
                format_table(
                    ["method"] + list(PAPER_STRATEGIES),
                    rows,
                    title=f"Table 6 ({name})",
                )
            )
        return "\n\n".join(sections)

    def figure7_scaling(self) -> str:
        """Per-request latency vs library scale."""
        rows = run_scaling_study(
            scales=DEFAULT_SCALES, seed=self.config.scaling_seed
        )
        return format_table(
            ["scale", "impls", "connectivity", "strategy", "mean_ms"],
            [
                [
                    row.scale,
                    row.num_implementations,
                    row.connectivity,
                    row.strategy,
                    row.mean_seconds * 1e3,
                ]
                for row in rows
            ],
            title="Figure 7",
        )

    # ------------------------------------------------------------------
    # Orchestration
    # ------------------------------------------------------------------

    def run_all(self, only: Sequence[str] | None = None) -> dict[str, str]:
        """Run the suite; returns ``{experiment_id: rendered table}``.

        ``only`` restricts to a subset of ids (raises
        :class:`EvaluationError` for unknown ids).
        """
        experiments = {
            "table2": self.table2_overlap,
            "table3": self.table3_popularity,
            "table4": self.table4_usefulness,
            "table5": self.table5_similarity,
            "figure4": self.figure4_tpr,
            "figures5_6": self.figures5_6_frequency,
            "table6": self.table6_goal_overlap,
        }
        if self.config.run_scaling:
            experiments["figure7"] = self.figure7_scaling
        if only is not None:
            unknown = set(only) - set(experiments)
            if unknown:
                raise EvaluationError(
                    f"unknown experiment ids: {sorted(unknown)}; "
                    f"available: {sorted(experiments)}"
                )
            experiments = {name: experiments[name] for name in only}
        return {name: run() for name, run in experiments.items()}

    def render_report(self, only: Sequence[str] | None = None) -> str:
        """Run and join everything into a single report document."""
        results = self.run_all(only)
        header = (
            "Experiment report "
            f"(k={self.config.k}, observed={self.config.observed_fraction}, "
            f"users per dataset={len(self.grocery.split)}/"
            f"{len(self.life_goals.split)})"
        )
        body = "\n\n".join(results[name] for name in results)
        return f"{header}\n\n{body}\n"
