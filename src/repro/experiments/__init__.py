"""Programmatic regeneration of the paper's experiment suite.

:class:`~repro.experiments.runner.ExperimentSuite` runs every table and
figure of the paper's Section 6 over a pair of datasets (grocery-style and
life-goal-style) and renders the results as plain-text tables — the same
computations the per-table benchmarks perform, packaged as a library call
and as the ``repro report`` CLI command.
"""

from repro.experiments.runner import ExperimentSuite, SuiteConfig

__all__ = ["ExperimentSuite", "SuiteConfig"]
