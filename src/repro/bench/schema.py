"""The BENCH_PERF.json report schema, hand-validated.

The environment ships no JSON-schema library, so :func:`validate_report`
walks the structure by hand and returns a list of human-readable problems
(empty means valid).  Keeping the validator in-package means the runner,
the CI gate and the tests all agree on one definition.

Report shape (``schema_version`` 1)::

    {
      "schema_version": 1,
      "suite": "smoke",
      "git_sha": "abc123..." | "unknown",
      "environment": {"python": "...", "platform": "...",
                      "implementation": "..."},
      "benchmarks": [
        {
          "name": "recommend_strategies",
          "description": "...",
          "metrics": {
            "breadth_checksum": {"value": 123.0, "kind": "exact",
                                  "tolerance": 0.0},
            "wall_seconds":     {"value": 0.01,  "kind": "info",
                                  "tolerance": 0.0}
          }
        }
      ]
    }

Metric ``kind`` drives the baseline comparison: ``exact`` values must match
bit-for-bit, ``relative`` values may drift by ``tolerance`` (relative to
the baseline value), ``info`` values are never gated.
"""

from __future__ import annotations

SCHEMA_VERSION = 1

#: The metric kinds the comparator understands.
METRIC_KINDS = ("exact", "relative", "info")

_ENVIRONMENT_KEYS = ("python", "platform", "implementation")


def _check_metric(path: str, metric: object, problems: list[str]) -> None:
    if not isinstance(metric, dict):
        problems.append(f"{path}: metric must be an object, got {type(metric).__name__}")
        return
    value = metric.get("value")
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        problems.append(f"{path}.value: must be a number, got {value!r}")
    kind = metric.get("kind")
    if kind not in METRIC_KINDS:
        problems.append(f"{path}.kind: must be one of {METRIC_KINDS}, got {kind!r}")
    tolerance = metric.get("tolerance")
    if not isinstance(tolerance, (int, float)) or isinstance(tolerance, bool):
        problems.append(f"{path}.tolerance: must be a number, got {tolerance!r}")
    elif tolerance < 0:
        problems.append(f"{path}.tolerance: must be non-negative, got {tolerance}")
    extra = set(metric) - {"value", "kind", "tolerance"}
    if extra:
        problems.append(f"{path}: unexpected keys {sorted(extra)}")


def _check_benchmark(path: str, bench: object, problems: list[str]) -> None:
    if not isinstance(bench, dict):
        problems.append(f"{path}: benchmark must be an object")
        return
    name = bench.get("name")
    if not isinstance(name, str) or not name:
        problems.append(f"{path}.name: must be a non-empty string, got {name!r}")
    if not isinstance(bench.get("description"), str):
        problems.append(f"{path}.description: must be a string")
    metrics = bench.get("metrics")
    if not isinstance(metrics, dict) or not metrics:
        problems.append(f"{path}.metrics: must be a non-empty object")
        return
    for metric_name, metric in metrics.items():
        if not isinstance(metric_name, str) or not metric_name:
            problems.append(f"{path}.metrics: metric names must be strings")
            continue
        _check_metric(f"{path}.metrics.{metric_name}", metric, problems)


def validate_report(report: object) -> list[str]:
    """Return every schema problem in ``report`` (empty list means valid)."""
    problems: list[str] = []
    if not isinstance(report, dict):
        return [f"report must be an object, got {type(report).__name__}"]
    version = report.get("schema_version")
    if version != SCHEMA_VERSION:
        problems.append(
            f"schema_version: expected {SCHEMA_VERSION}, got {version!r}"
        )
    if not isinstance(report.get("suite"), str) or not report.get("suite"):
        problems.append("suite: must be a non-empty string")
    if not isinstance(report.get("git_sha"), str):
        problems.append("git_sha: must be a string")
    environment = report.get("environment")
    if not isinstance(environment, dict):
        problems.append("environment: must be an object")
    else:
        for key in _ENVIRONMENT_KEYS:
            if not isinstance(environment.get(key), str):
                problems.append(f"environment.{key}: must be a string")
    benchmarks = report.get("benchmarks")
    if not isinstance(benchmarks, list) or not benchmarks:
        problems.append("benchmarks: must be a non-empty array")
        return problems
    seen: set[str] = set()
    for index, bench in enumerate(benchmarks):
        _check_benchmark(f"benchmarks[{index}]", bench, problems)
        if isinstance(bench, dict) and isinstance(bench.get("name"), str):
            if bench["name"] in seen:
                problems.append(f"benchmarks[{index}]: duplicate name {bench['name']!r}")
            seen.add(bench["name"])
    return problems
