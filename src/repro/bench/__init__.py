"""Machine-readable benchmark regression harness.

The package behind the ``repro-bench`` console script.  A *suite* is a
declared list of :class:`~repro.bench.suite.BenchmarkSpec` objects; running
one produces a ``BENCH_PERF.json`` report (schema in
:mod:`repro.bench.schema`) that a CI job compares against the committed
``benchmarks/baseline.json`` with per-metric tolerance bands.

Gating policy (machine independence): exact counts, checksums and other
deterministic quantities are gated exactly; ratios (e.g. observability
overhead) are gated with wide relative bands; absolute wall-clock numbers
are *informational only* and never gated, so the baseline is portable
across machines.

Usage::

    repro-bench --suite smoke                 # run + compare + write report
    repro-bench --suite smoke --update-baseline
    repro-bench --check benchmarks/results/BENCH_PERF.json
"""

from repro.bench.runner import build_report, compare_reports, main
from repro.bench.schema import SCHEMA_VERSION, validate_report
from repro.bench.suite import BenchmarkSpec, Metric, get_suite, suite_names

__all__ = [
    "SCHEMA_VERSION",
    "BenchmarkSpec",
    "Metric",
    "build_report",
    "compare_reports",
    "get_suite",
    "main",
    "suite_names",
    "validate_report",
]
