"""Declared benchmark suites for the regression harness.

A :class:`BenchmarkSpec` names one deterministic workload and a callable
producing ``{metric_name: Metric}``.  The *smoke* suite is small enough for
CI (a few seconds end to end) yet covers the hot pipeline: the four paper
strategies, the three association-space queries, the evaluation protocol,
the implementation-space memo and the observability overhead ratio.

Every gated metric is machine independent — counts, CRC32 checksums over
the ranked output, protocol metrics with tight relative bands, and one
wide-band ratio.  Wall-clock totals are published as ``info`` metrics so a
report still *shows* timing without the baseline gating on it.
"""

from __future__ import annotations

import tempfile
import time
import zlib
from collections.abc import Callable
from dataclasses import dataclass
from pathlib import Path

from repro import obs
from repro.core.approximate import PrunedBreadthStrategy, recall_at_k
from repro.core.caching import CachedModelView, LRUCache
from repro.core.entities import ActionLabel
from repro.core.recommender import PAPER_STRATEGIES, GoalRecommender
from repro.data import FoodMartConfig, generate_foodmart
from repro.eval.harness import ExperimentHarness
from repro.eval.metrics import average_true_positive_rate

#: Seed and sizing of the smoke workload; changing either invalidates the
#: committed baseline (regenerate with ``repro-bench --update-baseline``).
_SMOKE_SEED = 7
_SMOKE_MAX_USERS = 24
_SMOKE_K = 10
#: Posting-list cap of the smoke pruned-tier leg — small enough to truncate
#: rows even on the tiny harness, so the gated recall actually exercises
#: the approximation (the paper-scale recall gate lives in
#: ``benchmarks/bench_single_request.py``).
_SMOKE_PRUNE_BUDGET = 8


@dataclass(frozen=True, slots=True)
class Metric:
    """One measured quantity with its gating policy.

    ``kind`` is ``exact`` (baseline must match bit-for-bit), ``relative``
    (may drift by ``tolerance`` relative to the baseline value) or ``info``
    (published, never gated).
    """

    value: float
    kind: str = "exact"
    tolerance: float = 0.0

    def to_dict(self) -> dict[str, float | str]:
        return {
            "value": self.value,
            "kind": self.kind,
            "tolerance": self.tolerance,
        }


@dataclass(frozen=True, slots=True)
class BenchmarkSpec:
    """A named benchmark: ``run`` returns the metrics of one execution."""

    name: str
    description: str
    run: Callable[[ExperimentHarness], dict[str, Metric]]


def build_smoke_harness() -> ExperimentHarness:
    """The shared deterministic workload of the smoke suite."""
    dataset = generate_foodmart(FoodMartConfig.tiny(), seed=_SMOKE_SEED)
    return ExperimentHarness(
        dataset, k=_SMOKE_K, max_users=_SMOKE_MAX_USERS, seed=_SMOKE_SEED
    )


def _ranking_checksum(recommender: GoalRecommender,
                      activities: list[frozenset[ActionLabel]],
                      strategy: str) -> tuple[int, int]:
    """(CRC32 over the ranked output, number of non-empty lists)."""
    digest = 0
    nonempty = 0
    for activity in activities:
        result = recommender.recommend(activity, k=_SMOKE_K, strategy=strategy)
        if result.items:
            nonempty += 1
        for item in result:
            line = f"{item.action}:{item.score:.9f};"
            digest = zlib.crc32(line.encode("utf-8"), digest)
    return digest, nonempty


def _bench_recommend_strategies(
    harness: ExperimentHarness,
) -> dict[str, Metric]:
    recommender = harness.recommender
    activities = [user.observed for user in harness.split]
    metrics: dict[str, Metric] = {}
    start = time.perf_counter()
    for strategy in PAPER_STRATEGIES:
        digest, nonempty = _ranking_checksum(
            recommender, activities, strategy
        )
        metrics[f"{strategy}_checksum"] = Metric(float(digest))
        metrics[f"{strategy}_nonempty"] = Metric(float(nonempty))
    metrics["wall_seconds"] = Metric(
        time.perf_counter() - start, kind="info"
    )
    return metrics


def _bench_association_spaces(
    harness: ExperimentHarness,
) -> dict[str, Metric]:
    model = harness.model
    start = time.perf_counter()
    is_total = gs_total = as_total = 0
    for activity in harness.observed_activities():
        encoded = model.encode_activity(activity)
        is_total += len(model.implementation_space(encoded))
        gs_total += len(model.goal_space(encoded))
        as_total += len(model.action_space(encoded))
    return {
        "is_size_total": Metric(float(is_total)),
        "gs_size_total": Metric(float(gs_total)),
        "as_size_total": Metric(float(as_total)),
        "wall_seconds": Metric(time.perf_counter() - start, kind="info"),
    }


def _bench_evaluation_protocol(
    harness: ExperimentHarness,
) -> dict[str, Metric]:
    hidden = harness.hidden_sets()
    start = time.perf_counter()
    metrics: dict[str, Metric] = {}
    for strategy in ("breadth", "focus_cmp"):
        lists = harness.run_goal_method(strategy)
        tpr = average_true_positive_rate(lists, hidden)
        # Deterministic pure-Python float arithmetic; the tight band only
        # absorbs summation-order differences across interpreter builds.
        metrics[f"{strategy}_avg_tpr"] = Metric(
            tpr, kind="relative", tolerance=1e-6
        )
    metrics["wall_seconds"] = Metric(
        time.perf_counter() - start, kind="info"
    )
    return metrics


def _bench_space_cache(harness: ExperimentHarness) -> dict[str, Metric]:
    cache = LRUCache(256, name="bench_space")
    view = CachedModelView(harness.model, cache=cache)
    activities = [
        harness.model.encode_activity(a)
        for a in harness.observed_activities()
    ]
    start = time.perf_counter()
    for _ in range(2):  # second pass must hit the memo for every activity
        for encoded in activities:
            view.implementation_space(encoded)
    stats = cache.stats()
    return {
        "hits": Metric(float(stats.hits)),
        "misses": Metric(float(stats.misses)),
        "wall_seconds": Metric(time.perf_counter() - start, kind="info"),
    }


def _bench_obs_overhead(harness: ExperimentHarness) -> dict[str, Metric]:
    """Enabled-path cost ratio, gated with a wide machine-tolerant band."""
    recommender = harness.recommender
    activities = [user.observed for user in harness.split]

    def run_once() -> float:
        start = time.perf_counter()
        for activity in activities:
            recommender.recommend(activity, k=_SMOKE_K, strategy="breadth")
        return time.perf_counter() - start

    obs.disable()
    run_once()  # warm caches outside the timed region
    disabled: list[float] = []
    enabled: list[float] = []
    try:
        for _ in range(5):
            obs.disable()
            disabled.append(run_once())
            obs.enable(metrics=True, tracing=True, exemplars=True)
            enabled.append(run_once())
    finally:
        obs.disable()
    ratio = min(enabled) / min(disabled)
    return {
        # Noise-tolerant band: the committed baseline stores ~1.0x and CI
        # machines may jitter; the separate bench_obs_overhead.py pytest
        # bench enforces the hard 1.10x budget.
        "overhead_ratio": Metric(ratio, kind="relative", tolerance=0.5),
        "disabled_seconds": Metric(min(disabled), kind="info"),
        "enabled_seconds": Metric(min(enabled), kind="info"),
    }


def _bench_quality_telemetry(harness: ExperimentHarness) -> dict[str, Metric]:
    """Quality monitor + flight recorder: cost ratio and determinism.

    The gated metrics are machine independent: the PSI drift score depends
    only on the frozen baseline and the observed label sequence, and the
    head-based sampler admits a fixed subset of the synthetic request ids.
    The cost ratio gets the same wide noise band as ``obs_overhead``; the
    hard 1.10x budget lives in ``bench_quality_telemetry.py``.
    """
    recommender = harness.recommender
    model = harness.model
    activities = [user.observed for user in harness.split]
    request_ids = [f"req-{index:05d}" for index in range(len(activities))]

    def run_plain() -> float:
        start = time.perf_counter()
        for activity in activities:
            recommender.recommend(activity, k=_SMOKE_K, strategy="breadth")
        return time.perf_counter() - start

    def run_monitored(
        monitor: obs.QualityMonitor, recorder: obs.FlightRecorder
    ) -> float:
        start = time.perf_counter()
        for request_id, activity in zip(request_ids, activities):
            result = recommender.recommend(
                activity, k=_SMOKE_K, strategy="breadth"
            )
            monitor.observe_traffic(activity, model, result, generation=0)
            recorder.record_request(request_id, "/recommend", "POST", 200, 0.0)
        return time.perf_counter() - start

    plain: list[float] = []
    monitored: list[float] = []
    with tempfile.TemporaryDirectory() as tmp:
        recorder = obs.FlightRecorder(Path(tmp), sample_rate=0.25)
        monitor = obs.QualityMonitor(window_size=256)
        monitor.drift.set_baseline(obs.BaselineProfile.from_model(model))
        previous = obs.set_quality_monitor(monitor)
        obs.disable()
        run_plain()  # warm caches outside the timed region
        try:
            for _ in range(5):
                obs.disable()
                obs.enable(metrics=True, tracing=True, exemplars=True)
                plain.append(run_plain())
                obs.enable(
                    metrics=True, tracing=True, exemplars=True, quality=True
                )
                monitored.append(run_monitored(monitor, recorder))
                recorder.flush(timeout=10.0)  # drain outside the timed region
        finally:
            obs.set_quality_monitor(previous)
            obs.disable()
            sampled = sum(
                1
                for request_id in request_ids
                if recorder.should_sample(request_id)
            )
            recorder.close()
    return {
        "overhead_ratio": Metric(
            min(monitored) / min(plain), kind="relative", tolerance=0.5
        ),
        "drift_score": Metric(
            monitor.drift.score(), kind="relative", tolerance=1e-6
        ),
        "sampled_requests": Metric(float(sampled)),
        "plain_seconds": Metric(min(plain), kind="info"),
        "monitored_seconds": Metric(min(monitored), kind="info"),
    }


def _bench_metrics_history(harness: ExperimentHarness) -> dict[str, Metric]:
    """Fake-clock history capture: exact rates, counts and retention math.

    Every gated number is a pure function of the capture schedule: a
    private registry isolates the run from whatever families the
    surrounding suite registered, so the only call sites writing to it
    are the history's own self-metrics.  Twelve captures at a 5s fake
    step must derive a counter rate of exactly 1/5 per second, and the
    index's series/point/memory accounting follows from
    ``capacity = window // interval + 1`` alone.  The hard 2% overhead
    budget lives in ``benchmarks/bench_history_overhead.py``.
    """
    from repro.obs import metrics as obs_metrics

    registry = obs_metrics.MetricsRegistry()
    fake_now = [1000.0]
    history = obs.MetricsHistory(
        5.0,
        60.0,
        clock=lambda: fake_now[0],
        registry_getter=lambda: registry,
    )
    start = time.perf_counter()
    obs.enable(metrics=True)
    try:
        for _ in range(12):
            history.capture()
            fake_now[0] += 5.0
    finally:
        obs.disable()
    def last_value(family: str, key: str) -> float:
        payload = history.series(family)
        assert payload is not None
        rendered = payload["series"]
        assert isinstance(rendered, list)
        first = rendered[0]
        assert isinstance(first, dict)
        values = [v for v in first[key] if v is not None]
        return float(values[-1])

    index = history.index()
    families = index["families"]
    assert isinstance(families, dict)
    captures = index["captures"]
    memory = index["memory_bytes_estimate"]
    assert isinstance(captures, int) and isinstance(memory, int)
    return {
        "captures": Metric(float(captures)),
        "tracked_families": Metric(float(len(families))),
        "buffered_points": Metric(float(sum(
            int(entry["points"]) for entry in families.values()
        ))),
        "snapshot_rate_per_second": Metric(
            last_value("repro_history_snapshots_total", "values")
        ),
        "points_gauge_last": Metric(
            last_value("repro_history_points", "values")
        ),
        "capture_count_rate": Metric(
            last_value("repro_history_capture_seconds", "count_rate")
        ),
        "memory_bytes_estimate": Metric(float(memory)),
        "wall_seconds": Metric(time.perf_counter() - start, kind="info"),
    }


def _bench_lock_sanitizer(harness: ExperimentHarness) -> dict[str, Metric]:
    """Instrumented-lock cost on the serving path, wide machine band.

    Mirrors ``benchmarks/bench_lock_sanitizer.py`` at smoke scale: the
    gated metrics are the violation count (always zero against the
    committed ``locks.toml``) and a noise-tolerant overhead ratio; the
    hard 2%/25% budgets live in the standalone paper-scale bench.
    """
    # Imported here: repro.service pulls the HTTP stack, which the other
    # smoke benches do not need at module import time.
    from repro.core.incremental import IncrementalGoalModel
    from repro.service import ModelManager
    from repro.utils.concurrency import (
        enable_lock_sanitizer,
        lock_sanitizer_violations,
        reset_lock_sanitizer,
    )

    activities = [list(user.observed) for user in harness.split]

    def build() -> ModelManager:
        incremental = IncrementalGoalModel.from_library(
            harness.model.to_library()
        )
        # Unit caches: every request runs real scoring, not a lock loop.
        return ModelManager(incremental, cache_size=1, space_cache_size=1)

    def run_once(manager: ModelManager) -> float:
        start = time.perf_counter()
        for activity in activities:
            manager.recommend(activity, k=_SMOKE_K, strategy="breadth")
        return time.perf_counter() - start

    reset_lock_sanitizer()
    try:
        plain = build()
        enable_lock_sanitizer()  # discovers the committed locks.toml
        instrumented = build()
        run_once(plain)  # warm caches outside the timed region
        run_once(instrumented)
        disabled: list[float] = []
        enabled: list[float] = []
        for _ in range(5):
            disabled.append(run_once(plain))
            enabled.append(run_once(instrumented))
        violations = lock_sanitizer_violations()
    finally:
        reset_lock_sanitizer()
    ratio = min(enabled) / min(disabled)
    return {
        "overhead_ratio": Metric(ratio, kind="relative", tolerance=0.5),
        "violations": Metric(float(len(violations))),
        "disabled_seconds": Metric(min(disabled), kind="info"),
        "enabled_seconds": Metric(min(enabled), kind="info"),
    }


def _bench_single_request(harness: ExperimentHarness) -> dict[str, Metric]:
    """CSR hot path vs scalar reference: bit-parity plus pruned-tier recall.

    The CSR checksums are gated as exact values — they must equal the
    scalar checksums committed under ``recommend_strategies``, which is the
    bit-parity contract of the unified hot path stated as data.  The pruned
    leg runs both the scalar fallback and the engine kernel at a budget
    small enough to truncate on the tiny harness, gating their mutual
    parity and the (deterministic) recall against the exact rankings.
    """
    scalar = GoalRecommender(harness.model, use_csr=False)
    csr = GoalRecommender(harness.model, use_csr=True)
    activities = [user.observed for user in harness.split]
    metrics: dict[str, Metric] = {}
    start = time.perf_counter()
    parity = 1.0
    for strategy in PAPER_STRATEGIES:
        digest, nonempty = _ranking_checksum(csr, activities, strategy)
        metrics[f"{strategy}_csr_checksum"] = Metric(float(digest))
        metrics[f"{strategy}_csr_nonempty"] = Metric(float(nonempty))
        for activity in activities:
            reference = scalar.recommend(
                activity, k=_SMOKE_K, strategy=strategy
            )
            routed = csr.recommend(activity, k=_SMOKE_K, strategy=strategy)
            if reference != routed:
                parity = 0.0
    metrics["csr_scalar_parity"] = Metric(parity)

    pruned = PrunedBreadthStrategy(budget=_SMOKE_PRUNE_BUDGET)
    engine = csr.csr_engine()
    model = harness.model
    breadth = scalar.strategy("breadth")
    engine_parity = 1.0
    recall_total = 0.0
    recall_count = 0
    for activity in activities:
        encoded = model.encode_activity(activity)
        exact = breadth.rank(model, encoded, _SMOKE_K)
        approx = pruned.rank(model, encoded, _SMOKE_K)
        if engine is not None and approx != engine.pruned_breadth_rank(
            encoded, _SMOKE_K, _SMOKE_PRUNE_BUDGET
        ):
            engine_parity = 0.0
        if exact:
            recall_total += recall_at_k(exact, approx)
            recall_count += 1
    metrics["pruned_engine_parity"] = Metric(engine_parity)
    metrics["pruned_recall_at_10"] = Metric(
        recall_total / recall_count if recall_count else 1.0
    )
    metrics["wall_seconds"] = Metric(
        time.perf_counter() - start, kind="info"
    )
    return metrics


def _bench_shared_arena(harness: ExperimentHarness) -> dict[str, Metric]:
    """Shared-memory arena round trip: bit-parity of the rebuilt engine.

    Exercises the multi-worker publication path without forking: export
    the CSR engine's arrays, pack them into a
    :class:`~repro.serving.shared.SharedModelArena`, rebuild an engine
    over zero-copy views, and gate that the rebuilt engine's rankings
    checksum identically to the direct engine's — the same contract the
    subprocess parity suite (``tests/test_multiworker.py``) states over
    HTTP.  The arena byte size is machine-shaped (dtype widths), so only
    the array *count* and the checksums gate.
    """
    from repro.core.vectorized import BatchRecommender
    from repro.serving.shared import SharedModelArena

    direct = GoalRecommender(harness.model, use_csr=True)
    activities = [user.observed for user in harness.split]
    start = time.perf_counter()
    engine = direct.csr_engine()
    assert engine is not None, "smoke harness always has SciPy + rows"
    arena = SharedModelArena(engine.export_arrays())
    metrics: dict[str, Metric] = {
        "packed_arrays": Metric(float(len(arena.keys()))),
        "arena_bytes": Metric(float(arena.size_bytes), kind="info"),
    }
    rebuilt = BatchRecommender.from_arrays(harness.model, arena.views())
    view = CachedModelView(
        harness.model,
        cache=LRUCache(256, name="bench_arena"),
        engine_factory=lambda: rebuilt,
    )
    shared = GoalRecommender(view)
    parity = 1.0
    for strategy in ("best_match", "breadth"):
        digest, nonempty = _ranking_checksum(shared, activities, strategy)
        reference, _ = _ranking_checksum(direct, activities, strategy)
        if digest != reference:
            parity = 0.0
        metrics[f"{strategy}_shared_checksum"] = Metric(float(digest))
        metrics[f"{strategy}_shared_nonempty"] = Metric(float(nonempty))
    metrics["shared_direct_parity"] = Metric(parity)
    metrics["wall_seconds"] = Metric(
        time.perf_counter() - start, kind="info"
    )
    # Release every view before unmapping, or close() raises BufferError.
    del shared, view, rebuilt
    arena.close()
    return metrics


_SMOKE_SUITE: tuple[BenchmarkSpec, ...] = (
    BenchmarkSpec(
        "recommend_strategies",
        "CRC32-checksummed top-k output of the four paper strategies",
        _bench_recommend_strategies,
    ),
    BenchmarkSpec(
        "single_request",
        "CSR hot-path parity checksums and pruned-tier recall",
        _bench_single_request,
    ),
    BenchmarkSpec(
        "shared_arena",
        "shared-memory arena round trip: rebuilt-engine bit-parity",
        _bench_shared_arena,
    ),
    BenchmarkSpec(
        "association_spaces",
        "summed |IS|/|GS|/|AS| over the split activities",
        _bench_association_spaces,
    ),
    BenchmarkSpec(
        "evaluation_protocol",
        "average TPR of breadth and focus_cmp under the paper protocol",
        _bench_evaluation_protocol,
    ),
    BenchmarkSpec(
        "space_cache",
        "implementation-space memo hits/misses over a repeated pass",
        _bench_space_cache,
    ),
    BenchmarkSpec(
        "obs_overhead",
        "metrics+tracing+exemplars enabled/disabled latency ratio",
        _bench_obs_overhead,
    ),
    BenchmarkSpec(
        "quality_telemetry",
        "quality monitor + sampled flight recorder cost and determinism",
        _bench_quality_telemetry,
    ),
    BenchmarkSpec(
        "metrics_history",
        "fake-clock metrics-history capture: exact rates and retention",
        _bench_metrics_history,
    ),
    BenchmarkSpec(
        "lock_sanitizer",
        "instrumented-lock overhead ratio and zero order violations",
        _bench_lock_sanitizer,
    ),
)

_SUITES: dict[str, tuple[BenchmarkSpec, ...]] = {"smoke": _SMOKE_SUITE}


def suite_names() -> tuple[str, ...]:
    """The declared suite names."""
    return tuple(sorted(_SUITES))


def get_suite(name: str) -> tuple[BenchmarkSpec, ...]:
    """The specs of suite ``name``; raises ``KeyError`` on unknown names."""
    return _SUITES[name]
