"""The ``repro-bench`` entry point.

Runs a declared suite (:mod:`repro.bench.suite`), writes a schema-valid
``BENCH_PERF.json`` report and compares it against the committed baseline
with per-metric tolerance bands.  Exit codes: ``0`` clean, ``1`` regression
(or invalid report under ``--check``), ``2`` usage/environment problems.

The *baseline* is a full report produced by ``--update-baseline`` and
committed to the repository; the comparator reads the gating policy
(``kind``/``tolerance``) from the baseline, so loosening or tightening a
band is a reviewed change to ``benchmarks/baseline.json``.
"""

from __future__ import annotations

import argparse
import json
import platform
import subprocess
import sys
from collections.abc import Sequence
from pathlib import Path
from typing import Any

from repro._version import __version__
from repro.bench.schema import SCHEMA_VERSION, validate_report
from repro.bench.suite import build_smoke_harness, get_suite, suite_names

_DEFAULT_OUTPUT = Path("benchmarks/results/BENCH_PERF.json")
_DEFAULT_BASELINE = Path("benchmarks/baseline.json")


def _git_sha() -> str:
    """The current commit, or ``"unknown"`` outside a git checkout."""
    try:
        completed = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=10, check=False,
        )
    except OSError:
        return "unknown"
    sha = completed.stdout.strip()
    return sha if completed.returncode == 0 and sha else "unknown"


def _environment() -> dict[str, str]:
    return {
        "python": platform.python_version(),
        "platform": platform.platform(),
        "implementation": platform.python_implementation(),
    }


def build_report(suite_name: str) -> dict[str, Any]:
    """Run every benchmark of ``suite_name`` and assemble the report."""
    specs = get_suite(suite_name)
    harness = build_smoke_harness()
    benchmarks: list[dict[str, Any]] = []
    for spec in specs:
        print(f"running {suite_name}:{spec.name} ...", file=sys.stderr)
        metrics = spec.run(harness)
        benchmarks.append(
            {
                "name": spec.name,
                "description": spec.description,
                "metrics": {
                    name: metric.to_dict()
                    for name, metric in sorted(metrics.items())
                },
            }
        )
    return {
        "schema_version": SCHEMA_VERSION,
        "suite": suite_name,
        "version": __version__,
        "git_sha": _git_sha(),
        "environment": _environment(),
        "benchmarks": benchmarks,
    }


def compare_reports(
    report: dict[str, Any], baseline: dict[str, Any]
) -> list[str]:
    """Every regression of ``report`` against ``baseline`` (empty = clean).

    The baseline's ``kind``/``tolerance`` govern each metric; ``info``
    metrics and benchmarks added since the baseline are never gated.
    """
    regressions: list[str] = []
    if report.get("suite") != baseline.get("suite"):
        return [
            f"suite mismatch: report ran {report.get('suite')!r}, "
            f"baseline is {baseline.get('suite')!r}"
        ]
    current = {
        bench["name"]: bench["metrics"] for bench in report["benchmarks"]
    }
    for bench in baseline["benchmarks"]:
        name = bench["name"]
        measured = current.get(name)
        if measured is None:
            regressions.append(f"{name}: benchmark missing from report")
            continue
        for metric_name, base in bench["metrics"].items():
            kind = base["kind"]
            if kind == "info":
                continue
            got = measured.get(metric_name)
            if got is None:
                regressions.append(f"{name}.{metric_name}: metric missing")
                continue
            expected = float(base["value"])
            value = float(got["value"])
            if kind == "exact":
                if value != expected:
                    regressions.append(
                        f"{name}.{metric_name}: expected exactly "
                        f"{expected!r}, got {value!r}"
                    )
            else:  # relative
                tolerance = float(base["tolerance"])
                scale = max(abs(expected), 1e-12)
                drift = abs(value - expected) / scale
                if drift > tolerance:
                    regressions.append(
                        f"{name}.{metric_name}: {value!r} drifted "
                        f"{drift:.4f} from baseline {expected!r} "
                        f"(tolerance {tolerance})"
                    )
    return regressions


def _load_json(path: Path) -> dict[str, Any] | None:
    try:
        loaded = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        print(f"error: cannot read {path}: {exc}", file=sys.stderr)
        return None
    if not isinstance(loaded, dict):
        print(f"error: {path} is not a JSON object", file=sys.stderr)
        return None
    return loaded


def _write_json(path: Path, payload: dict[str, Any]) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=False) + "\n",
        encoding="utf-8",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Run the declared benchmark suites and gate on the "
                    "committed baseline.",
    )
    parser.add_argument("--suite", default="smoke", choices=suite_names())
    parser.add_argument(
        "--output", type=Path, default=_DEFAULT_OUTPUT,
        help=f"where to write the report (default {_DEFAULT_OUTPUT})",
    )
    parser.add_argument(
        "--baseline", type=Path, default=_DEFAULT_BASELINE,
        help=f"baseline to gate against (default {_DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="write the fresh report to --baseline instead of gating",
    )
    parser.add_argument(
        "--check", type=Path, default=None, metavar="REPORT",
        help="validate and gate an existing report instead of running",
    )
    parser.add_argument(
        "--no-compare", action="store_true",
        help="run and write the report but skip the baseline gate",
    )
    parser.add_argument(
        "--list", action="store_true",
        help="list the declared suites and their benchmarks, then exit",
    )
    return parser


def _gate(report: dict[str, Any], baseline_path: Path) -> int:
    if not baseline_path.exists():
        print(
            f"note: no baseline at {baseline_path}; skipping the gate "
            "(create one with --update-baseline)",
            file=sys.stderr,
        )
        return 0
    baseline = _load_json(baseline_path)
    if baseline is None:
        return 2
    problems = validate_report(baseline)
    if problems:
        for problem in problems:
            print(f"baseline invalid: {problem}", file=sys.stderr)
        return 2
    regressions = compare_reports(report, baseline)
    if regressions:
        print(f"REGRESSION: {len(regressions)} gate(s) failed:")
        for regression in regressions:
            print(f"  - {regression}")
        return 1
    print(f"baseline gate passed ({baseline_path})")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """``repro-bench`` entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)

    if args.list:
        for suite_name in suite_names():
            print(f"{suite_name}:")
            for spec in get_suite(suite_name):
                print(f"  {spec.name}: {spec.description}")
        return 0

    if args.check is not None:
        report = _load_json(args.check)
        if report is None:
            return 2
        problems = validate_report(report)
        if problems:
            for problem in problems:
                print(f"report invalid: {problem}", file=sys.stderr)
            return 1
        return _gate(report, args.baseline)

    report = build_report(args.suite)
    problems = validate_report(report)
    if problems:  # a suite bug, not a regression — fail loudly
        for problem in problems:
            print(f"internal error, report invalid: {problem}", file=sys.stderr)
        return 2

    if args.update_baseline:
        _write_json(args.baseline, report)
        print(f"wrote baseline -> {args.baseline}")
        return 0

    _write_json(args.output, report)
    print(f"wrote report -> {args.output}")
    if args.no_compare:
        return 0
    return _gate(report, args.baseline)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
