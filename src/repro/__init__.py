"""Goal/action association recommendations.

A from-scratch, laptop-scale reproduction of *"Modeling and Exploiting Goal
and Action Associations for Recommendations"* (Papadimitriou, Velegrakis,
Koutrika — EDBT 2018).

The package ships:

- :mod:`repro.core` — the association-based goal model and the four
  goal-based ranking strategies (Focus_cmp, Focus_cl, Breadth, Best Match);
- :mod:`repro.baselines` — the comparison recommenders the paper evaluates
  against (CF-KNN with Tanimoto similarity, ALS-WR matrix factorization,
  content-based filtering) plus association rules and popularity;
- :mod:`repro.data` — synthetic generators matching the paper's two dataset
  profiles (FoodMart-style grocery/recipes and 43Things-style life goals);
- :mod:`repro.text` — rule-based extraction of goal implementations from
  plain-text descriptions;
- :mod:`repro.storage` — JSON and SQLite persistence for libraries;
- :mod:`repro.eval` — the 30%-observed evaluation protocol, every metric of
  the paper's Section 6 and the experiment harness the benchmarks drive;
- :mod:`repro.obs` — observability: a Prometheus-style metrics registry,
  tracing spans and structured JSON logging threaded through the recommend
  path and the HTTP service (see ``docs/observability.md``).

Quickstart::

    from repro import AssociationGoalModel, GoalRecommender

    model = AssociationGoalModel.from_pairs([
        ("olivier salad", {"potatoes", "carrots", "pickles"}),
        ("mashed potatoes", {"potatoes", "nutmeg", "butter"}),
    ])
    print(GoalRecommender(model).recommend({"potatoes", "carrots"}).actions())
"""

from repro._version import __version__
from repro.core import (
    AssociationGoalModel,
    BestMatchStrategy,
    BreadthStrategy,
    FocusStrategy,
    GoalImplementation,
    GoalRecommender,
    ImplementationLibrary,
    LibraryStats,
    PAPER_STRATEGIES,
    RecommendationList,
    ScoredAction,
    UserActivity,
    create_strategy,
)
from repro.exceptions import (
    DataError,
    EvaluationError,
    ModelError,
    RecommendationError,
    ReproError,
    StorageError,
)

__all__ = [
    "AssociationGoalModel",
    "GoalRecommender",
    "GoalImplementation",
    "ImplementationLibrary",
    "LibraryStats",
    "UserActivity",
    "ScoredAction",
    "RecommendationList",
    "FocusStrategy",
    "BreadthStrategy",
    "BestMatchStrategy",
    "create_strategy",
    "PAPER_STRATEGIES",
    "ReproError",
    "ModelError",
    "RecommendationError",
    "DataError",
    "StorageError",
    "EvaluationError",
    "__version__",
]
