"""Deterministic random-number helpers.

All stochastic components of the library (dataset generators, the evaluation
split, the ALS initialization) accept either an integer seed or an already
constructed :class:`numpy.random.Generator`.  Funnelling every call through
:func:`make_rng` keeps experiment runs reproducible and lets callers share a
single generator across components when they want correlated draws.
"""

from __future__ import annotations

import numpy as np

SeedLike = int | np.random.Generator | None


def make_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``seed`` may be ``None`` (fresh OS entropy), an ``int`` (reproducible
    stream) or an existing generator (returned unchanged so state is shared).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: SeedLike, count: int) -> list[np.random.Generator]:
    """Split ``seed`` into ``count`` independent child generators.

    Child streams are statistically independent, so parallel components
    seeded from the same experiment seed do not produce correlated draws.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    # Generator.spawn (numpy >= 1.25) is the typed spelling of the older
    # ``bit_generator.seed_seq.spawn`` dance and yields the same streams.
    return make_rng(seed).spawn(count)
