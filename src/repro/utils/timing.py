"""Lightweight wall-clock measurement used by the scalability experiments.

The paper's Figure 7 reports per-request execution times of the four
strategies as the implementation library grows.  :class:`Stopwatch`
accumulates named timings across repeated calls, and :func:`timed` measures a
single callable.  ``time.perf_counter`` is used throughout: it is monotonic
and has the highest available resolution.

:class:`Stopwatch` is thread-safe: the HTTP service's handler threads (and
any other concurrent caller) may record into one shared instance.  Both
classes are re-exported from :mod:`repro.obs`, the observability entry
point.
"""

from __future__ import annotations

import statistics
import threading
import time
from collections import defaultdict
from collections.abc import Callable, Iterator
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, TypeVar

T = TypeVar("T")

#: Lock discipline, machine-checked by ``repro-lint`` (rule RL001, see
#: docs/static-analysis.md).
_GUARDED_BY = {
    "Stopwatch._samples": "_lock",
}


@dataclass(frozen=True)
class TimingSummary:
    """Aggregate statistics for one named timer, in seconds."""

    name: str
    count: int
    total: float
    mean: float
    median: float
    minimum: float
    maximum: float

    def __str__(self) -> str:
        return (
            f"{self.name}: n={self.count} mean={self.mean * 1e3:.3f}ms "
            f"median={self.median * 1e3:.3f}ms min={self.minimum * 1e3:.3f}ms "
            f"max={self.maximum * 1e3:.3f}ms"
        )


def quantile(samples: list[float], q: float) -> float:
    """The ``q``-quantile (0..1) of ``samples``, linearly interpolated.

    Raises :class:`ValueError` for an empty sample list or a quantile
    outside ``[0, 1]``.  This is the shared implementation behind
    :meth:`Stopwatch.percentile` and the stage profiler's p50/p95/p99.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    if not samples:
        raise ValueError("quantile of an empty sample list")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    position = q * (len(ordered) - 1)
    low = int(position)
    high = min(low + 1, len(ordered) - 1)
    fraction = position - low
    return ordered[low] * (1.0 - fraction) + ordered[high] * fraction


class Stopwatch:
    """Accumulates wall-clock samples under named labels.

    Usage::

        watch = Stopwatch()
        with watch.measure("breadth"):
            recommender.recommend(activity, k=10)
        print(watch.summary("breadth").mean)
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._samples: dict[str, list[float]] = defaultdict(list)

    @contextmanager
    def measure(self, name: str) -> Iterator[None]:
        """Context manager recording one elapsed-time sample under ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.record(name, time.perf_counter() - start)

    def record(self, name: str, seconds: float) -> None:
        """Record an externally measured sample."""
        with self._lock:
            self._samples[name].append(seconds)

    def samples(self, name: str) -> list[float]:
        """Return a copy of the raw samples recorded under ``name``."""
        with self._lock:
            return list(self._samples[name])

    def names(self) -> list[str]:
        """Return the labels that have at least one sample, sorted."""
        with self._lock:
            return sorted(self._samples)

    def summary(self, name: str) -> TimingSummary:
        """Return aggregate statistics for ``name``.

        Raises :class:`KeyError` when no samples were recorded for ``name``.
        """
        with self._lock:
            samples = list(self._samples.get(name) or ())
        if not samples:
            raise KeyError(f"no samples recorded for {name!r}")
        return TimingSummary(
            name=name,
            count=len(samples),
            total=sum(samples),
            mean=statistics.fmean(samples),
            median=statistics.median(samples),
            minimum=min(samples),
            maximum=max(samples),
        )

    def percentile(self, name: str, q: float) -> float:
        """The ``q``-quantile (0..1) of the samples under ``name``.

        Latency reporting convention: ``percentile("op", 0.95)`` is the p95.
        Raises :class:`KeyError` for unknown names and :class:`ValueError`
        for quantiles outside ``[0, 1]``.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            samples = list(self._samples.get(name) or ())
        if not samples:
            raise KeyError(f"no samples recorded for {name!r}")
        return quantile(samples, q)

    def summaries(self) -> list[TimingSummary]:
        """Return summaries for every label, sorted by label."""
        return [self.summary(name) for name in self.names()]


def timed(func: Callable[..., T], *args: Any, **kwargs: Any) -> tuple[T, float]:
    """Call ``func`` and return ``(result, elapsed_seconds)``."""
    start = time.perf_counter()
    result = func(*args, **kwargs)
    return result, time.perf_counter() - start
