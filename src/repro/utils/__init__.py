"""Shared utilities: deterministic RNG helpers, validation, timing."""

from repro.utils.rng import make_rng, spawn_rngs
from repro.utils.timing import Stopwatch, timed
from repro.utils.validation import (
    require_non_empty,
    require_positive,
    require_probability,
)

__all__ = [
    "make_rng",
    "spawn_rngs",
    "Stopwatch",
    "timed",
    "require_non_empty",
    "require_positive",
    "require_probability",
]
