"""Concurrency primitives and the runtime lock sanitizer.

The standard library ships locks and conditions but no readers-writer lock.
The hot-reload serving path needs one: many handler threads read the model
artifacts concurrently, while a mutation (``PUT``/``DELETE`` on
``/model/implementations``) must exclude *every* reader for the duration of
the index update and snapshot swap, so no thread ever observes a
half-updated index.

:class:`RWLock` is a writer-preferring readers-writer lock: once a writer is
waiting, new readers queue behind it, so a steady stream of read traffic
cannot starve reloads.  Both sides are exposed as context managers::

    lock = RWLock()
    with lock.read_locked():
        ...  # shared with other readers
    with lock.write_locked():
        ...  # exclusive

The lock is not reentrant and not upgradable — a thread holding the read
lock must release it before acquiring the write lock (an upgrade attempt
deadlocks, as with every non-upgradable RW lock).

Lock sanitizer
--------------

The second half of this module is the runtime side of the repo's
concurrency-correctness gate (the static side is ``repro-lint`` RL006/RL007,
see ``docs/static-analysis.md``).  The serving layer constructs its locks
through the factories here —

    self._lock = make_lock("LRUCache._lock")
    self._cond = make_condition("AdmissionController._cond")
    self._lock = RWLock(site="ModelManager._lock")

— which return the plain :mod:`threading` primitives until
:func:`enable_lock_sanitizer` is called (``repro serve --lock-sanitizer`` /
``REPRO_LOCK_SANITIZER=1``).  With the sanitizer on, the factories return
instrumented proxies that keep a per-thread stack of held sites and check
every acquisition against the committed ``locks.toml`` ordering manifest:

- acquiring a lock while holding one with no declared order over it is an
  **order** violation (the runtime twin of RL007, and — when the opposite
  nesting is also ever observed — of an RL006 inversion);
- re-acquiring a site the thread already holds is a **reentrant** violation
  (an upgrade/reentrancy bug in waiting: :class:`RWLock` deadlocks on it
  as soon as a writer queues);
- ``Condition.wait`` while holding any *other* instrumented lock is a
  **wait-held** violation (the wait releases only its own lock; everything
  else stays held across an unbounded block);
- holding any site longer than the configured outlier budget is a
  **hold-outlier** violation.

Each release feeds ``repro_lock_hold_seconds{site}``; every acquisition
that had to block feeds ``repro_lock_contention_total{site}`` (metrics are
recorded only when :mod:`repro.obs` metrics are enabled).  The collected
violations and per-site statistics are served by ``GET /debug/locks``.

The sanitizer state itself uses one plain, uninstrumented lock — it must
never recurse into its own bookkeeping.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Callable, Iterator
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from types import TracebackType
from typing import Any, Protocol

from repro.utils.lockmanifest import (
    LockManifest,
    find_manifest,
    load_manifest,
)

#: Lock discipline, machine-checked by ``repro-lint`` (rule RL001, see
#: docs/static-analysis.md): the reader/writer bookkeeping only changes
#: under the condition variable that readers and writers wait on, and the
#: sanitizer's aggregates only change under its own (plain) lock.
_GUARDED_BY = {
    "RWLock._readers": "_cond",
    "RWLock._writer_active": "_cond",
    "RWLock._writers_waiting": "_cond",
    "_SanitizerState._violations": "_lock",
    "_SanitizerState._occurrences": "_lock",
    "_SanitizerState._thread_stats": "_lock",
}


class LockLike(Protocol):
    """What a :func:`make_lock`/:func:`make_rlock` result supports."""

    def acquire(self, blocking: bool = ..., timeout: float = ...) -> bool: ...

    def release(self) -> None: ...

    def __enter__(self) -> bool: ...

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc_val: BaseException | None,
        exc_tb: TracebackType | None,
    ) -> None: ...


class ConditionLike(Protocol):
    """What a :func:`make_condition` result supports."""

    def acquire(self, blocking: bool = ..., timeout: float = ...) -> bool: ...

    def release(self) -> None: ...

    def __enter__(self) -> bool: ...

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc_val: BaseException | None,
        exc_tb: TracebackType | None,
    ) -> None: ...

    def wait(self, timeout: float | None = ...) -> bool: ...

    def wait_for(
        self, predicate: Callable[[], bool], timeout: float | None = ...
    ) -> bool: ...

    def notify(self, n: int = ...) -> None: ...

    def notify_all(self) -> None: ...


# ----------------------------------------------------------------------
# Sanitizer state
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class LockViolation:
    """One detected violation, deduplicated by ``(kind, site, other)``."""

    kind: str  # "order" | "reentrant" | "wait-held" | "hold-outlier"
    site: str  # the lock being acquired / waited on / released
    other: str  # the already-held lock ("" when not applicable)
    thread: str
    detail: str

    def to_dict(self) -> dict[str, str]:
        return {
            "kind": self.kind,
            "site": self.site,
            "other": self.other,
            "thread": self.thread,
            "detail": self.detail,
        }


class _SanitizerState:
    """Shared aggregates: allowed edges, violations, per-site statistics."""

    def __init__(
        self, manifest: LockManifest, hold_outlier_seconds: float
    ) -> None:
        # Deliberately a plain threading.Lock, never a make_lock proxy:
        # the sanitizer must not instrument (and recurse into) itself.
        self._lock = threading.Lock()
        self.allowed = manifest.allowed()
        self.manifest_path = manifest.path
        self.hold_outlier_seconds = hold_outlier_seconds
        self._violations: list[LockViolation] = []
        self._occurrences: dict[tuple[str, str, str], int] = {}
        # Per-thread ``{site: [acquisitions, contentions, max_hold]}``
        # accumulators.  Threads write their own dict with no shared lock
        # (the registration below is the only synchronized step), which
        # keeps the per-acquisition cost flat; ``snapshot`` merges.
        self._thread_stats: list[dict[str, list[float]]] = []

    def record(self, violation: LockViolation) -> None:
        key = (violation.kind, violation.site, violation.other)
        with self._lock:
            count = self._occurrences.get(key, 0)
            self._occurrences[key] = count + 1
            if count == 0:
                self._violations.append(violation)

    def register_thread_stats(self) -> dict[str, list[float]]:
        """A fresh per-thread accumulator, kept for later merging."""
        stats: dict[str, list[float]] = {}
        with self._lock:
            self._thread_stats.append(stats)
        return stats

    def violations(self) -> tuple[LockViolation, ...]:
        with self._lock:
            return tuple(self._violations)

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            merged: dict[str, dict[str, float]] = {}
            # list() the items: the owning threads keep appending sites
            # while we merge, and a snapshot is allowed to be a moment
            # stale but not to crash on a resized dict.
            for per_thread in self._thread_stats:
                for site, entry in list(per_thread.items()):
                    acquisitions, contentions, max_hold = entry
                    stats = merged.setdefault(
                        site,
                        {"acquisitions": 0.0, "contentions": 0.0,
                         "max_hold_seconds": 0.0},
                    )
                    stats["acquisitions"] += acquisitions
                    stats["contentions"] += contentions
                    if max_hold > stats["max_hold_seconds"]:
                        stats["max_hold_seconds"] = max_hold
            sites = {site: merged[site] for site in sorted(merged)}
            violations = [v.to_dict() for v in self._violations]
            total = sum(self._occurrences.values())
        return {
            "manifest": str(self.manifest_path) if self.manifest_path else None,
            "declared_edges": len(self.allowed),
            "hold_outlier_seconds": self.hold_outlier_seconds,
            "sites": sites,
            "violations": violations,
            "violation_occurrences": total,
        }


_sanitizer_enabled: bool = False
_state: _SanitizerState | None = None
_tls = threading.local()


def _active_state() -> _SanitizerState | None:
    """The shared state, or ``None`` when the sanitizer is off."""
    return _state if _sanitizer_enabled else None


class _ThreadCtx:
    """Per-thread sanitizer context: held-site stack plus stat entries.

    One object per thread, fetched with a single thread-local lookup on
    the instrumented hot path (repeated ``getattr(_tls, ...)`` round
    trips were a measurable share of the per-acquisition cost).
    """

    __slots__ = ("stack", "stats", "stats_owner")

    def __init__(self) -> None:
        #: Stack of ``[site, acquired_at]`` for the locks this thread holds.
        self.stack: list[list[Any]] = []
        #: This thread's ``{site: [acquisitions, contentions, max_hold]}``.
        self.stats: dict[str, list[float]] = {}
        #: The state ``stats`` is registered with (re-registered per enable).
        self.stats_owner: _SanitizerState | None = None


def _ctx() -> _ThreadCtx:
    ctx = getattr(_tls, "ctx", None)
    if ctx is None:
        ctx = _ThreadCtx()
        _tls.ctx = ctx
    return ctx  # type: ignore[no-any-return]


def _held_stack() -> list[list[Any]]:
    """This thread's stack of ``[site, acquired_at]`` entries."""
    return _ctx().stack


def enable_lock_sanitizer(
    manifest: LockManifest | None = None,
    *,
    manifest_path: str | Path | None = None,
    hold_outlier_seconds: float = 1.0,
) -> None:
    """Turn the sanitizer on for locks constructed *from here on*.

    Call before building the object graph under test — the factories
    decide plain-vs-instrumented at construction time, which is what keeps
    the disabled mode at true zero overhead.  The ordering manifest is the
    one passed in, loaded from ``manifest_path``, or discovered like the
    lint CLI discovers ``locks.toml`` (cwd ancestors, then the repo layout
    relative to the installed package); with no manifest at all every
    nesting is an order violation.
    """
    global _sanitizer_enabled, _state
    if manifest is None:
        found = (
            Path(manifest_path)
            if manifest_path is not None
            else find_manifest()
        )
        manifest = (
            load_manifest(found)
            if found is not None and found.is_file()
            else LockManifest(edges=frozenset())
        )
    _state = _SanitizerState(manifest, hold_outlier_seconds)
    _sanitizer_enabled = True


def disable_lock_sanitizer() -> None:
    """Stop checking; collected violations stay inspectable."""
    global _sanitizer_enabled
    _sanitizer_enabled = False


def reset_lock_sanitizer() -> None:
    """Drop the sanitizer state entirely (test isolation helper)."""
    global _sanitizer_enabled, _state
    _sanitizer_enabled = False
    _state = None
    _tls.ctx = _ThreadCtx()


def lock_sanitizer_enabled() -> bool:
    """``True`` while acquisitions are being checked."""
    return _sanitizer_enabled


def lock_sanitizer_violations() -> tuple[LockViolation, ...]:
    """Every violation detected since the last enable/reset."""
    state = _state
    return state.violations() if state is not None else ()


def lock_sanitizer_snapshot() -> dict[str, Any]:
    """The ``GET /debug/locks`` payload."""
    state = _state
    if state is None:
        return {"enabled": False, "sites": {}, "violations": []}
    payload = state.snapshot()
    payload["enabled"] = _sanitizer_enabled
    return payload


def _current_thread_name() -> str:
    return threading.current_thread().name


def _check_order(
    state: _SanitizerState, site: str, stack: list[list[Any]]
) -> None:
    """Flag this acquisition against every site the thread already holds."""
    for held_site, _acquired_at in stack:
        if held_site == site:
            if (site, site) not in state.allowed:
                state.record(
                    LockViolation(
                        kind="reentrant",
                        site=site,
                        other=site,
                        thread=_current_thread_name(),
                        detail=(
                            f"{site} acquired again by the thread already "
                            "holding it (non-reentrant primitive: deadlocks "
                            "as soon as a writer or another owner queues)"
                        ),
                    )
                )
        elif (held_site, site) not in state.allowed:
            state.record(
                LockViolation(
                    kind="order",
                    site=site,
                    other=held_site,
                    thread=_current_thread_name(),
                    detail=(
                        f"acquired {site} while holding {held_site} with no "
                        f"declared order; declare '{held_site}' -> '{site}' "
                        "in locks.toml or restructure"
                    ),
                )
            )


def _site_stats(ctx: _ThreadCtx, state: _SanitizerState, site: str) -> list[float]:
    """``ctx``'s ``[acquisitions, contentions, max_hold]`` entry for ``site``.

    The accumulator is registered with the state once per thread and then
    written lock-free — the sanitizer's own bookkeeping must stay off the
    instrumented locks' hot path (``benchmarks/bench_lock_sanitizer.py``
    gates the enabled-mode overhead).
    """
    if ctx.stats_owner is not state:
        ctx.stats = state.register_thread_stats()
        ctx.stats_owner = state
    stats = ctx.stats
    entry = stats.get(site)
    if entry is None:
        entry = stats[site] = [0.0, 0.0, 0.0]
    return entry


def _note_acquired(site: str, contended: bool) -> None:
    """Push ``site`` on the thread's stack and record the acquisition."""
    state = _active_state()
    if state is None:
        return
    ctx = _ctx()
    entry = _site_stats(ctx, state, site)
    entry[0] += 1.0
    if contended:
        entry[1] += 1.0
        _record_contention_metric(site)
    ctx.stack.append([site, time.perf_counter()])


def _note_released(site: str) -> None:
    """Pop ``site`` (latest matching entry) and record the hold time."""
    state = _state
    if state is None:
        return
    ctx = _ctx()
    stack = ctx.stack
    if stack and stack[-1][0] == site:  # LIFO release: the common case
        acquired_at = stack.pop()[1]
    else:
        for index in range(len(stack) - 1, -1, -1):
            if stack[index][0] == site:
                acquired_at = stack.pop(index)[1]
                break
        else:
            return
    held = time.perf_counter() - acquired_at
    entry = _site_stats(ctx, state, site)
    if held > entry[2]:
        entry[2] = held
    if held > state.hold_outlier_seconds:
        state.record(
            LockViolation(
                kind="hold-outlier",
                site=site,
                other="",
                thread=_current_thread_name(),
                detail=(
                    f"{site} held for {held:.3f}s, over the "
                    f"{state.hold_outlier_seconds:.3f}s outlier budget"
                ),
            )
        )
    _record_hold_metric(site, held)


#: Lazily-bound :mod:`repro.obs` — imported on the first metric record and
#: cached, so the per-release hook pays one global read, not a module
#: import lookup (repro.obs must stay importable without this module being
#: initialized first, and vice versa).
_obs: Any = None


def _obs_module() -> Any:
    global _obs
    if _obs is None:
        from repro import obs

        _obs = obs
    return _obs


def _record_hold_metric(site: str, seconds: float) -> None:
    obs = _obs_module()
    if obs.metrics_enabled():
        obs.get_registry().histogram(
            "repro_lock_hold_seconds",
            "Lock hold time per instrumented acquisition, by site "
            "(recorded only under the lock sanitizer).",
            site=site,
        ).observe(seconds)


def _record_contention_metric(site: str) -> None:
    obs = _obs_module()
    if obs.metrics_enabled():
        obs.get_registry().counter(
            "repro_lock_contention_total",
            "Acquisitions that had to block, by site (recorded only under "
            "the lock sanitizer).",
            site=site,
        ).inc()


# ----------------------------------------------------------------------
# Instrumented proxies and factories
# ----------------------------------------------------------------------


class _InstrumentedLock:
    """A ``threading.Lock`` recording order, contention and hold time."""

    __slots__ = ("_site", "_inner")

    def __init__(self, site: str) -> None:
        self._site = site
        self._inner = threading.Lock()

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        # The checks are inlined (rather than routed through the
        # `_note_acquired` helper the condition and RWLock share): this
        # proxy guards the serving hot path, where every spared thread-
        # local lookup and Python call shows up in the overhead bench.
        state = _state if _sanitizer_enabled else None
        if state is None:
            return self._inner.acquire(blocking, timeout)
        site = self._site
        ctx = _ctx()
        if ctx.stack:
            _check_order(state, site, ctx.stack)
        if self._inner.acquire(False):
            contended = False
        elif not blocking:
            return False
        elif self._inner.acquire(True, timeout):
            contended = True
        else:
            return False
        entry = _site_stats(ctx, state, site)
        entry[0] += 1.0
        if contended:
            entry[1] += 1.0
            _record_contention_metric(site)
        ctx.stack.append([site, time.perf_counter()])
        return True

    def release(self) -> None:
        self._inner.release()  # raises RuntimeError when not held
        _note_released(self._site)

    def locked(self) -> bool:
        return self._inner.locked()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc_val: BaseException | None,
        exc_tb: TracebackType | None,
    ) -> None:
        self.release()


class _InstrumentedRLock:
    """A ``threading.RLock``; same-object reentry is legal and unrecorded."""

    __slots__ = ("_site", "_inner", "_owner", "_depth")

    def __init__(self, site: str) -> None:
        self._site = site
        self._inner = threading.RLock()
        # Only read/written by the owning thread (or before ownership is
        # taken, where a stale value can only send a non-owner down the
        # slow path) — the inner RLock is the real synchronization.
        self._owner: int | None = None
        self._depth = 0

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        me = threading.get_ident()
        if self._owner == me:
            self._inner.acquire()
            self._depth += 1
            return True
        state = _active_state()
        if state is not None:
            _check_order(state, self._site, _held_stack())
        if self._inner.acquire(False):
            contended = False
        elif not blocking:
            return False
        elif self._inner.acquire(True, timeout):
            contended = True
        else:
            return False
        self._owner = me
        self._depth = 1
        _note_acquired(self._site, contended=contended)
        return True

    def release(self) -> None:
        if self._owner != threading.get_ident():
            # Matches RLock's own error for a foreign/unmatched release.
            raise RuntimeError("cannot release un-acquired lock")
        if self._depth > 1:
            self._depth -= 1
            self._inner.release()
            return
        self._owner = None
        self._depth = 0
        self._inner.release()
        _note_released(self._site)

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc_val: BaseException | None,
        exc_tb: TracebackType | None,
    ) -> None:
        self.release()


class _InstrumentedCondition:
    """A ``threading.Condition`` that also checks its blocking waits."""

    __slots__ = ("_site", "_inner")

    def __init__(self, site: str) -> None:
        self._site = site
        self._inner = threading.Condition()

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        state = _active_state()
        if state is not None:
            _check_order(state, self._site, _held_stack())
        if self._inner.acquire(False):
            _note_acquired(self._site, contended=False)
            return True
        if not blocking:
            return False
        if not self._inner.acquire(True, timeout):
            return False
        _note_acquired(self._site, contended=True)
        return True

    def release(self) -> None:
        self._inner.release()
        _note_released(self._site)

    def wait(self, timeout: float | None = None) -> bool:
        state = _active_state()
        if state is not None:
            others = sorted(
                {held for held, _t in _held_stack() if held != self._site}
            )
            if others:
                state.record(
                    LockViolation(
                        kind="wait-held",
                        site=self._site,
                        other=",".join(others),
                        thread=_current_thread_name(),
                        detail=(
                            f"Condition.wait on {self._site} while still "
                            f"holding {', '.join(others)}; the wait only "
                            "releases its own lock"
                        ),
                    )
                )
        # The wait releases and reacquires the condition's lock: account
        # it as one hold ending here and a fresh one starting on wakeup.
        _note_released(self._site)
        try:
            return self._inner.wait(timeout)
        finally:
            _note_acquired(self._site, contended=False)

    def wait_for(
        self, predicate: Callable[[], bool], timeout: float | None = None
    ) -> bool:
        # Reimplemented over self.wait so the wait-held check applies to
        # every blocking iteration (stdlib wait_for would bypass it).
        end: float | None = None
        if timeout is not None:
            end = time.monotonic() + timeout
        result = predicate()
        while not result:
            remaining: float | None = None
            if end is not None:
                remaining = end - time.monotonic()
                if remaining <= 0:
                    break
            self.wait(remaining)
            result = predicate()
        return result

    def notify(self, n: int = 1) -> None:
        self._inner.notify(n)

    def notify_all(self) -> None:
        self._inner.notify_all()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc_val: BaseException | None,
        exc_tb: TracebackType | None,
    ) -> None:
        self.release()


def make_lock(site: str) -> LockLike:
    """A mutex for ``site``: plain, or instrumented under the sanitizer."""
    if _sanitizer_enabled:
        return _InstrumentedLock(site)
    return threading.Lock()


def make_rlock(site: str) -> LockLike:
    """A reentrant mutex for ``site`` (see :func:`make_lock`)."""
    if _sanitizer_enabled:
        return _InstrumentedRLock(site)
    return threading.RLock()


def make_condition(site: str) -> ConditionLike:
    """A condition variable for ``site`` (see :func:`make_lock`)."""
    if _sanitizer_enabled:
        return _InstrumentedCondition(site)
    return threading.Condition()


# ----------------------------------------------------------------------
# Readers-writer lock
# ----------------------------------------------------------------------


class RWLock:
    """A writer-preferring readers-writer lock.

    ``site`` names the lock for the sanitizer (``"ModelManager._lock"``);
    when the sanitizer is enabled at construction time, every reader and
    writer acquisition is order-checked and hold-timed as that one site —
    the internal condition variable is an implementation detail and is
    never reported on its own.
    """

    def __init__(self, site: str | None = None) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer_active = False
        self._writers_waiting = 0
        # Pinned at construction like the factories: a lock created while
        # the sanitizer is off stays uninstrumented for its lifetime.
        self._site = site if site is not None and _sanitizer_enabled else None

    # ------------------------------------------------------------------
    # Reader side
    # ------------------------------------------------------------------

    def acquire_read(self) -> None:
        """Block until no writer is active or waiting, then share the lock."""
        site = self._site
        if site is not None:
            state = _active_state()
            if state is not None:
                _check_order(state, site, _held_stack())
        contended = False
        with self._cond:
            while self._writer_active or self._writers_waiting:
                contended = True
                self._cond.wait()
            self._readers += 1
        if site is not None:
            _note_acquired(site, contended)

    def release_read(self) -> None:
        """Release one reader hold."""
        with self._cond:
            if self._readers <= 0:
                raise RuntimeError("release_read without a matching acquire")
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()
        if self._site is not None:
            _note_released(self._site)

    @contextmanager
    def read_locked(self) -> Iterator[None]:
        """Context manager around :meth:`acquire_read`/:meth:`release_read`."""
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    # ------------------------------------------------------------------
    # Writer side
    # ------------------------------------------------------------------

    def acquire_write(self) -> None:
        """Block until the lock is exclusively held by this thread."""
        site = self._site
        if site is not None:
            state = _active_state()
            if state is not None:
                _check_order(state, site, _held_stack())
        contended = False
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer_active or self._readers:
                    contended = True
                    self._cond.wait()
                self._writer_active = True
            finally:
                self._writers_waiting -= 1
        if site is not None:
            _note_acquired(site, contended)

    def release_write(self) -> None:
        """Release the exclusive hold."""
        with self._cond:
            if not self._writer_active:
                raise RuntimeError("release_write without a matching acquire")
            self._writer_active = False
            self._cond.notify_all()
        if self._site is not None:
            _note_released(self._site)

    @contextmanager
    def write_locked(self) -> Iterator[None]:
        """Context manager around :meth:`acquire_write`/:meth:`release_write`."""
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()
