"""Concurrency primitives for the serving layer.

The standard library ships locks and conditions but no readers-writer lock.
The hot-reload serving path needs one: many handler threads read the model
artifacts concurrently, while a mutation (``PUT``/``DELETE`` on
``/model/implementations``) must exclude *every* reader for the duration of
the index update and snapshot swap, so no thread ever observes a
half-updated index.

:class:`RWLock` is a writer-preferring readers-writer lock: once a writer is
waiting, new readers queue behind it, so a steady stream of read traffic
cannot starve reloads.  Both sides are exposed as context managers::

    lock = RWLock()
    with lock.read_locked():
        ...  # shared with other readers
    with lock.write_locked():
        ...  # exclusive

The lock is not reentrant and not upgradable — a thread holding the read
lock must release it before acquiring the write lock (an upgrade attempt
deadlocks, as with every non-upgradable RW lock).
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from collections.abc import Iterator

#: Lock discipline, machine-checked by ``repro-lint`` (rule RL001, see
#: docs/static-analysis.md): the reader/writer bookkeeping only changes
#: under the condition variable that readers and writers wait on.
_GUARDED_BY = {
    "RWLock._readers": "_cond",
    "RWLock._writer_active": "_cond",
    "RWLock._writers_waiting": "_cond",
}


class RWLock:
    """A writer-preferring readers-writer lock."""

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer_active = False
        self._writers_waiting = 0

    # ------------------------------------------------------------------
    # Reader side
    # ------------------------------------------------------------------

    def acquire_read(self) -> None:
        """Block until no writer is active or waiting, then share the lock."""
        with self._cond:
            while self._writer_active or self._writers_waiting:
                self._cond.wait()
            self._readers += 1

    def release_read(self) -> None:
        """Release one reader hold."""
        with self._cond:
            if self._readers <= 0:
                raise RuntimeError("release_read without a matching acquire")
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    @contextmanager
    def read_locked(self) -> Iterator[None]:
        """Context manager around :meth:`acquire_read`/:meth:`release_read`."""
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    # ------------------------------------------------------------------
    # Writer side
    # ------------------------------------------------------------------

    def acquire_write(self) -> None:
        """Block until the lock is exclusively held by this thread."""
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer_active or self._readers:
                    self._cond.wait()
                self._writer_active = True
            finally:
                self._writers_waiting -= 1

    def release_write(self) -> None:
        """Release the exclusive hold."""
        with self._cond:
            if not self._writer_active:
                raise RuntimeError("release_write without a matching acquire")
            self._writer_active = False
            self._cond.notify_all()

    @contextmanager
    def write_locked(self) -> Iterator[None]:
        """Context manager around :meth:`acquire_write`/:meth:`release_write`."""
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()
