"""Small argument-validation helpers used across the library.

These raise :class:`ValueError` with uniform, descriptive messages so that
call sites stay one-liners and error text is consistent everywhere.
"""

from __future__ import annotations

from collections.abc import Sized


def require_positive(value: int | float, name: str) -> None:
    """Raise :class:`ValueError` unless ``value`` is strictly positive."""
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")


def require_non_negative(value: int | float, name: str) -> None:
    """Raise :class:`ValueError` unless ``value`` is zero or positive."""
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value}")


def require_probability(value: float, name: str) -> None:
    """Raise :class:`ValueError` unless ``value`` lies in ``[0, 1]``."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value}")


def require_non_empty(value: Sized, name: str) -> None:
    """Raise :class:`ValueError` if ``value`` has zero length."""
    if len(value) == 0:
        raise ValueError(f"{name} must not be empty")


def require_in(value: str, allowed: tuple[str, ...], name: str) -> None:
    """Raise :class:`ValueError` unless ``value`` is one of ``allowed``."""
    if value not in allowed:
        raise ValueError(
            f"{name} must be one of {', '.join(allowed)}; got {value!r}"
        )
