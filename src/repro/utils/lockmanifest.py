"""The committed lock-ordering manifest (``locks.toml``).

The repo declares its legal lock nestings in one TOML file at the repo
root.  Two consumers read it:

- the static pass (:mod:`repro.analysis.lockorder`, rules RL006/RL007)
  checks every nested acquisition the AST can prove against the declared
  edges, so an undeclared nesting fails ``repro-lint`` before it can ship;
- the runtime lock sanitizer (:mod:`repro.utils.concurrency`) checks the
  acquisitions that actually happen, per thread, against the same edges,
  so an inversion that only static analysis missed (reflection, callbacks,
  data-dependent paths) still surfaces under the schedule-stress gate.

Format::

    schema = 1

    [order]
    # outer lock -> inner locks that may be acquired while it is held
    "ModelManager._lock" = ["LRUCache._lock"]

Sites are named ``ClassName.attr`` — the same identity the static pass
derives from ``_GUARDED_BY`` maps and ``self.<attr>`` acquisition
patterns, and the label the serving layer passes when constructing its
locks.  Declared edges are directional and must form a DAG; the closure
(``A`` over ``B`` and ``B`` over ``C`` implies ``A`` over ``C``) is
computed here so callers compare against one flat allowed set.
"""

from __future__ import annotations

import re
import tomllib
from dataclasses import dataclass
from pathlib import Path

#: Name of the manifest file, discovered by walking up from the cwd (and
#: falling back to the repo layout relative to the installed package).
MANIFEST_NAME = "locks.toml"

#: Shape of a lock-site name: ``ClassName.attr``.
SITE_PATTERN = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*\.[A-Za-z_][A-Za-z0-9_]*$")


class ManifestError(ValueError):
    """A malformed ``locks.toml`` (bad TOML, bad shape, bad site name)."""


@dataclass(frozen=True)
class LockManifest:
    """The parsed manifest: declared outer -> inner acquisition edges."""

    edges: frozenset[tuple[str, str]]
    path: Path | None = None

    def allowed(self) -> frozenset[tuple[str, str]]:
        """The transitive closure of the declared edges.

        Declaring ``A`` over ``B`` and ``B`` over ``C`` permits acquiring
        ``C`` while holding ``A`` — the total order the manifest describes
        is what matters, not which hop the code takes.
        """
        adjacency: dict[str, set[str]] = {}
        for outer, inner in self.edges:
            adjacency.setdefault(outer, set()).add(inner)
        closed: set[tuple[str, str]] = set()
        for start in adjacency:
            seen: set[str] = set()
            frontier = list(adjacency[start])
            while frontier:
                node = frontier.pop()
                if node in seen:
                    continue
                seen.add(node)
                closed.add((start, node))
                frontier.extend(adjacency.get(node, ()))
        # Declared self-edges (deliberate same-site nesting, e.g. two
        # sibling cache instances) survive the closure untouched.
        closed.update(edge for edge in self.edges if edge[0] == edge[1])
        return frozenset(closed)

    def cycle(self) -> list[str] | None:
        """A declared-order cycle as ``[a, b, ..., a]``, or ``None``.

        The manifest must be a DAG (self-edges excepted: a declared
        same-site nesting is an explicit, deliberate exemption) — a cycle
        would make the "ordering" vacuous.  Detection is deterministic:
        nodes are visited in sorted order.
        """
        adjacency: dict[str, list[str]] = {}
        for outer, inner in sorted(self.edges):
            if outer != inner:
                adjacency.setdefault(outer, []).append(inner)
        visiting: list[str] = []
        done: set[str] = set()

        def visit(node: str) -> list[str] | None:
            if node in visiting:
                return visiting[visiting.index(node):] + [node]
            if node in done:
                return None
            visiting.append(node)
            for nxt in adjacency.get(node, ()):
                found = visit(nxt)
                if found is not None:
                    return found
            visiting.pop()
            done.add(node)
            return None

        for start in sorted(adjacency):
            found = visit(start)
            if found is not None:
                return found
        return None


def parse_manifest(text: str, path: Path | None = None) -> LockManifest:
    """Parse manifest ``text``; raises :class:`ManifestError` when bad."""
    try:
        data = tomllib.loads(text)
    except tomllib.TOMLDecodeError as exc:
        raise ManifestError(f"invalid TOML: {exc}") from exc
    order = data.get("order", {})
    if not isinstance(order, dict):
        raise ManifestError("[order] must be a table of outer -> [inner...]")
    edges: set[tuple[str, str]] = set()
    for outer, inners in order.items():
        if not SITE_PATTERN.match(outer):
            raise ManifestError(
                f"bad lock site {outer!r}: sites are named 'ClassName.attr'"
            )
        if not isinstance(inners, list) or not all(
            isinstance(inner, str) for inner in inners
        ):
            raise ManifestError(
                f"order[{outer!r}] must be a list of lock-site strings"
            )
        for inner in inners:
            if not SITE_PATTERN.match(inner):
                raise ManifestError(
                    f"bad lock site {inner!r} under {outer!r}: sites are "
                    "named 'ClassName.attr'"
                )
            edges.add((outer, inner))
    return LockManifest(edges=frozenset(edges), path=path)


def load_manifest(path: Path | str) -> LockManifest:
    """Read and parse the manifest at ``path``."""
    resolved = Path(path)
    return parse_manifest(resolved.read_text(encoding="utf-8"), resolved)


def find_manifest(explicit: str | Path | None = None) -> Path | None:
    """Locate ``locks.toml``: explicit path, cwd ancestors, repo layout."""
    if explicit is not None:
        candidate = Path(explicit)
        return candidate if candidate.is_file() else None
    for base in (Path.cwd(), *Path.cwd().parents):
        candidate = base / MANIFEST_NAME
        if candidate.is_file():
            return candidate
    # src/repro/utils/lockmanifest.py -> repo root, mirroring how the
    # lint CLI discovers its documentation files.
    candidate = Path(__file__).resolve().parents[3] / MANIFEST_NAME
    return candidate if candidate.is_file() else None
