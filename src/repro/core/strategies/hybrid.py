"""Hybrid goal + content strategy (the paper's stated future work).

The conclusion of the paper: *"As part of our future work, we have been
examining methodologies that enhance the goal-based mechanisms by
considering the user preferences on certain domain-specific characteristics,
i.e., hybrid goal-based and content-based approaches."*

This strategy implements the natural reading of that sentence: candidates
are generated and scored by a goal-based *base strategy* (Breadth by
default), then their scores are blended with a content score — the cosine
similarity between the candidate's domain features and the feature profile
of the user's activity:

``score(a) = (1 − alpha) · goal_norm(a) + alpha · content(a)``

where ``goal_norm`` min-max normalizes the base strategy's scores into
``[0, 1]`` per request (the two signals live on incomparable scales).
``alpha = 0`` reduces exactly to the base goal strategy; ``alpha = 1`` ranks
the goal-based *candidate set* purely by content — still goal-grounded,
because only actions from ``AS(H) − H`` are ever considered.
"""

from __future__ import annotations

import math
from collections import defaultdict
from collections.abc import Iterable, Mapping

from repro.core.entities import ActionLabel
from repro.core.protocols import ModelView
from repro.core.strategies.base import (
    RankingStrategy,
    rank_scored_ids,
    register_strategy,
)
from repro.core.strategies.breadth import BreadthStrategy
from repro.exceptions import RecommendationError
from repro.utils.validation import require_probability


@register_strategy("hybrid")
class HybridStrategy(RankingStrategy):
    """Blend a goal-based ranking with content similarity.

    Args:
        item_features: mapping from action label to its feature strings;
            actions absent from the map have content score 0.
        alpha: content weight in ``[0, 1]``; 0 = pure goal-based.
        base: the goal-based strategy supplying candidates and goal scores
            (default: a canonical :class:`BreadthStrategy`).
    """

    name = "hybrid"

    def __init__(
        self,
        item_features: Mapping[ActionLabel, Iterable[str]] | None = None,
        alpha: float = 0.5,
        base: RankingStrategy | None = None,
    ) -> None:
        if item_features is None:
            raise RecommendationError(
                "hybrid: item_features is required (pass the dataset's "
                "domain features)"
            )
        require_probability(alpha, "alpha")
        self.alpha = alpha
        self.base = base or BreadthStrategy()
        self._features = {
            action: frozenset(features)
            for action, features in item_features.items()
        }
        self.name = f"hybrid_{self.base.name}_a{alpha:g}"

    # ------------------------------------------------------------------
    # Content side
    # ------------------------------------------------------------------

    def _profile(self, activity_labels: Iterable[ActionLabel]) -> dict[str, float]:
        """Feature-count profile of the activity (content-based style)."""
        counts: dict[str, float] = defaultdict(float)
        for action in activity_labels:
            for feature in self._features.get(action, frozenset()):
                counts[feature] += 1.0
        return dict(counts)

    def content_score(
        self, action: ActionLabel, profile: dict[str, float]
    ) -> float:
        """Cosine similarity between an action's features and the profile."""
        features = self._features.get(action)
        if not features or not profile:
            return 0.0
        dot = sum(profile.get(feature, 0.0) for feature in features)
        if dot == 0.0:
            return 0.0
        profile_norm = math.sqrt(sum(v * v for v in profile.values()))
        return dot / (profile_norm * math.sqrt(len(features)))

    # ------------------------------------------------------------------
    # Blending
    # ------------------------------------------------------------------

    def rank(
        self,
        model: ModelView,
        activity: frozenset[int],
        k: int,
    ) -> list[tuple[int, float]]:
        """Blend normalized goal scores with content scores; top-``k``."""
        goal_ranked = self.base.rank(model, activity, k=model.num_actions)
        if not goal_ranked:
            return []
        scores = dict(goal_ranked)
        low = min(scores.values())
        high = max(scores.values())
        span = high - low
        activity_labels = [model.action_label(aid) for aid in activity]
        profile = self._profile(activity_labels)
        blended: dict[int, float] = {}
        for aid, goal_score in scores.items():
            goal_norm = 1.0 if span == 0.0 else (goal_score - low) / span
            content = self.content_score(model.action_label(aid), profile)
            blended[aid] = (1.0 - self.alpha) * goal_norm + self.alpha * content
        return rank_scored_ids(blended, k)
