"""Strategy protocol and registry.

A :class:`RankingStrategy` turns ``(model, activity, k)`` into a ranked
recommendation list of action ids.  Strategies work entirely at the integer
id level; label translation happens in the
:class:`~repro.core.recommender.GoalRecommender` facade.

Determinism contract
--------------------
Every strategy breaks score ties by ascending action id.  This makes output
independent of set-iteration order, which is essential both for the unit
tests and for the paper's list-overlap experiments (Tables 2 and 6), where a
nondeterministic tail of a top-10 list would add noise to overlap figures.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from time import perf_counter
from typing import Any, Callable

from repro import obs
from repro.core.entities import RecommendationList, ScoredAction
from repro.core.protocols import ModelView
from repro.core.topk import top_k_pairs
from repro.exceptions import RecommendationError, StrategyNotFoundError


def require_request_count(value: int, name: str = "k") -> None:
    """Reject non-integers, bools and non-positives with a library error.

    ``isinstance(True, int)`` holds, so a plain ``value <= 0`` check lets
    ``k=True`` slip through as 1 — the HTTP layer already 400s it, but the
    library must refuse it too so embedded callers get the same contract.
    """
    if isinstance(value, bool) or not isinstance(value, int):
        raise RecommendationError(
            f"{name} must be a positive integer, got {value!r}"
        )
    if value <= 0:
        raise RecommendationError(f"{name} must be positive, got {value}")


def rank_scored_ids(scores: dict[int, float], k: int) -> list[tuple[int, float]]:
    """Select the top-``k`` ranking of a ``{action_id: score}`` map.

    Higher scores come first; ties break by ascending action id.  Partial
    selection (:mod:`repro.core.topk`) replaces the historical full sort;
    the output is element-wise identical.
    """
    return top_k_pairs(scores, k)


class RankingStrategy(ABC):
    """Base class for all goal-based ranking strategies."""

    #: Registry name; subclasses set this to a unique identifier.
    name: str = "abstract"

    @abstractmethod
    def rank(
        self,
        model: ModelView,
        activity: frozenset[int],
        k: int,
    ) -> list[tuple[int, float]]:
        """Return up to ``k`` ``(action_id, score)`` pairs, best first.

        ``activity`` is the id-encoded user activity ``H``.  Implementations
        must never return actions already in ``activity`` and must follow
        the determinism contract documented in the module docstring.
        """

    def recommend(
        self,
        model: ModelView,
        activity: frozenset[int],
        k: int,
    ) -> RecommendationList:
        """Validate the request, rank, and decode to a label-level list."""
        require_request_count(k, "k")
        if not obs.is_enabled():
            ranked = self.rank(model, activity, k)
        else:
            with obs.trace_span("rank", strategy=self.name) as span:
                start = perf_counter()
                ranked = self.rank(model, activity, k)
                elapsed = perf_counter() - start
                if obs.metrics_enabled():
                    obs.get_registry().histogram(
                        "repro_strategy_rank_seconds",
                        "Strategy rank() latency (scoring only), by strategy.",
                        strategy=self.name,
                    ).observe(elapsed)
                span.set_attrs(k=k, returned=len(ranked))
        items = tuple(
            ScoredAction(action=model.action_label(aid), score=score)
            for aid, score in ranked
        )
        labels = frozenset(model.action_label(aid) for aid in activity)
        return RecommendationList(strategy=self.name, items=items, activity=labels)


#: Factories keyed by public strategy name.  ``focus_cmp``/``focus_cl`` are
#: the two Focus variants the paper evaluates; extra keyword arguments are
#: forwarded to the strategy constructor.
STRATEGY_REGISTRY: dict[str, Callable[..., RankingStrategy]] = {}


def register_strategy(name: str) -> Callable[[Callable[..., RankingStrategy]], Callable[..., RankingStrategy]]:
    """Class decorator adding a strategy factory under ``name``."""

    def decorator(factory: Callable[..., RankingStrategy]) -> Callable[..., RankingStrategy]:
        STRATEGY_REGISTRY[name] = factory
        return factory

    return decorator


def create_strategy(name: str, **options: Any) -> RankingStrategy:
    """Instantiate a registered strategy by name.

    Raises :class:`StrategyNotFoundError` for unregistered names.
    """
    factory = STRATEGY_REGISTRY.get(name)
    if factory is None:
        raise StrategyNotFoundError(name, tuple(sorted(STRATEGY_REGISTRY)))
    return factory(**options)
