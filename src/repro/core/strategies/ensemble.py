"""Rank-fusion ensemble over goal-based strategies.

Tables 4 and 6 show the strategies behave differently per dataset regime
(Focus_cmp wins sparse 43Things, Breadth/Best Match win the dense grocery
set) while overlapping substantially.  When the regime is unknown, fusing
their rankings hedges: this strategy runs several member strategies and
combines their rankings with one of the two standard rank-aggregation
rules:

- **Reciprocal rank fusion** (``method="rrf"``, default):
  ``score(a) = Σ_members 1 / (rrf_k + rank_member(a))`` — robust to
  incomparable score scales (Cormack et al., SIGIR 2009);
- **Borda count** (``method="borda"``):
  ``score(a) = Σ_members (pool_size − rank_member(a))``.

Members contribute through their *rankings* only, so any registered
strategy (including another ensemble) can participate.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Sequence

from repro.core.protocols import ModelView
from repro.core.strategies.base import (
    RankingStrategy,
    create_strategy,
    rank_scored_ids,
    register_strategy,
)
from repro.exceptions import RecommendationError
from repro.utils.validation import require_in, require_positive

_METHODS = ("rrf", "borda")
_DEFAULT_MEMBERS = ("focus_cmp", "breadth", "best_match")


@register_strategy("ensemble")
class EnsembleStrategy(RankingStrategy):
    """Fuse the rankings of several member strategies.

    Args:
        members: registry names of the member strategies (at least two).
        method: ``"rrf"`` or ``"borda"``.
        pool_size: how deep each member ranks before fusion; deeper pools
            let a candidate missed by one member still win on the others.
        rrf_k: the RRF dampening constant (60 per the original paper).
    """

    name = "ensemble"

    def __init__(
        self,
        members: Sequence[str] = _DEFAULT_MEMBERS,
        method: str = "rrf",
        pool_size: int = 50,
        rrf_k: int = 60,
    ) -> None:
        require_in(method, _METHODS, "method")
        require_positive(pool_size, "pool_size")
        require_positive(rrf_k, "rrf_k")
        if len(members) < 2:
            raise RecommendationError(
                "ensemble needs at least two member strategies"
            )
        self.members = tuple(members)
        self.method = method
        self.pool_size = pool_size
        self.rrf_k = rrf_k
        self._strategies = [create_strategy(name) for name in members]
        self.name = f"ensemble_{method}_" + "+".join(self.members)

    def rank(
        self,
        model: ModelView,
        activity: frozenset[int],
        k: int,
    ) -> list[tuple[int, float]]:
        """Fuse the members' top-``pool_size`` rankings; return top-``k``."""
        fused: dict[int, float] = defaultdict(float)
        for strategy in self._strategies:
            ranking = strategy.rank(model, activity, self.pool_size)
            for rank, (aid, _) in enumerate(ranking, start=1):
                if self.method == "rrf":
                    fused[aid] += 1.0 / (self.rrf_k + rank)
                else:
                    fused[aid] += float(self.pool_size - rank + 1)
        return rank_scored_ids(dict(fused), k)
