"""The Breadth strategy (paper Section 5.2, Algorithm 2).

Breadth serves users who want to *advance as many goals as possible* at
once.  It walks over every implementation in the user's implementation space
``IS(H)`` and accumulates, for each candidate action appearing in the
implementation, a contribution reflecting how strongly that implementation is
already tied to the user's activity.  Actions that appear in many
well-connected implementations therefore float to the top.

Score variants
--------------
The paper is internally inconsistent about the per-implementation
contribution: Equation 6 prints ``|A ∪ H|``, while Algorithm 2's ``comm``
variable and the surrounding prose ("actions that belong in as many sets as
possible together with as many as possible actions from the user activity")
describe the *overlap* ``|A ∩ H|``.  We treat the overlap as canonical and
expose all three readings for the ablation benchmark:

- ``"intersection"`` (default): ``comm = |A_p ∩ H|``;
- ``"union"``: ``comm = |A_p ∪ H|`` (Equation 6 as printed);
- ``"count"``: ``comm = 1`` — plain number of shared implementations, i.e.
  the utility ``u(a) = |IS(a) ∩ IS(H)|`` of Equation 5 alone.
"""

from __future__ import annotations

from collections import defaultdict

from repro.core.protocols import ModelView
from repro.core.strategies.base import (
    RankingStrategy,
    rank_scored_ids,
    register_strategy,
)
from repro.utils.validation import require_in

_VARIANTS = ("intersection", "union", "count")


@register_strategy("breadth")
class BreadthStrategy(RankingStrategy):
    """Rank actions by their accumulated association with ``IS(H)``.

    Args:
        variant: per-implementation contribution; one of ``"intersection"``
            (canonical), ``"union"`` (Equation 6 verbatim) or ``"count"``.
    """

    name = "breadth"

    def __init__(self, variant: str = "intersection") -> None:
        require_in(variant, _VARIANTS, "variant")
        self.variant = variant
        if variant != "intersection":
            self.name = f"breadth_{variant}"

    def _contribution(
        self, impl_actions: frozenset[int], activity: frozenset[int]
    ) -> int:
        if self.variant == "intersection":
            return len(impl_actions & activity)
        if self.variant == "union":
            return len(impl_actions | activity)
        return 1

    def scores(
        self, model: ModelView, activity: frozenset[int]
    ) -> dict[int, float]:
        """Full ``{candidate_action_id: score}`` map for the activity.

        Follows Algorithm 2: one pass over ``IS(H)``, updating every
        candidate action of each implementation, so the cost is proportional
        to ``|IS(H)| x avg implementation length`` rather than
        ``|AS(H)| x connectivity``.
        """
        accumulated: dict[int, float] = defaultdict(float)
        for pid in model.implementation_space(activity):
            impl_actions = model.implementation_actions(pid)
            comm = self._contribution(impl_actions, activity)
            for aid in impl_actions:
                if aid not in activity:
                    accumulated[aid] += comm
        return dict(accumulated)

    def rank(
        self,
        model: ModelView,
        activity: frozenset[int],
        k: int,
    ) -> list[tuple[int, float]]:
        """Top-``k`` candidates by accumulated contribution."""
        return rank_scored_ids(self.scores(model, activity), k)
