"""Goal-based ranking strategies (paper Section 5).

Four strategies are shipped, each implementing a different user policy:

- :class:`FocusStrategy` with ``measure="completeness"`` (``Focus_cmp``) or
  ``measure="closeness"`` (``Focus_cl``) — finish one goal first;
- :class:`BreadthStrategy` — advance many goals at once;
- :class:`BestMatchStrategy` — match the user's per-goal effort profile.

Strategies are registered by name in :data:`STRATEGY_REGISTRY` so the
:class:`~repro.core.recommender.GoalRecommender` facade (and the evaluation
harness) can construct them from configuration strings.
"""

from repro.core.strategies.base import RankingStrategy, STRATEGY_REGISTRY, create_strategy
from repro.core.strategies.best_match import BestMatchStrategy
from repro.core.strategies.breadth import BreadthStrategy
from repro.core.strategies.focus import FocusStrategy
from repro.core.strategies.ensemble import EnsembleStrategy
from repro.core.strategies.hybrid import HybridStrategy

__all__ = [
    "RankingStrategy",
    "FocusStrategy",
    "BreadthStrategy",
    "BestMatchStrategy",
    "HybridStrategy",
    "EnsembleStrategy",
    "STRATEGY_REGISTRY",
    "create_strategy",
]
