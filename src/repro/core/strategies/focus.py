"""The Focus strategy (paper Section 5.1, Algorithm 1).

Focus serves users who want to *finish at least one goal* through the current
recommendation list.  It examines every implementation in the user's
implementation space ``IS(H)``, scores it with one of two measures, and then
fills the recommendation list with the missing actions of the best
implementations, moving to the next implementation once the current one's
remaining actions are exhausted (the paper: "after popping out all the
actions of the goal implementation on which they have selected to focus,
they move on to another goal implementation").

Measures (Equations 3 and 4):

``completeness(g, A, H) = |A ∩ H| / |A|``
    ``Focus_cmp`` — prefer the implementation with the largest *fraction*
    already done.
``closeness(g, A, H) = 1 / |A − H|``
    ``Focus_cl`` — prefer the implementation needing the fewest *additional*
    actions, regardless of its size.

Implementations already fully contained in ``H`` have no remaining actions
to recommend; they are skipped (for ``closeness`` this also avoids the
``1/0`` singularity).
"""

from __future__ import annotations

from repro.core.protocols import ModelView
from repro.core.strategies.base import RankingStrategy, register_strategy
from repro.utils.validation import require_in

_MEASURES = ("completeness", "closeness")


def completeness(impl_actions: frozenset[int], activity: frozenset[int]) -> float:
    """Fraction of the implementation already performed (Equation 3)."""
    return len(impl_actions & activity) / len(impl_actions)


def closeness(impl_actions: frozenset[int], activity: frozenset[int]) -> float:
    """Inverse of the number of missing actions (Equation 4).

    Defined only for implementations with at least one missing action;
    callers must skip fully performed implementations.
    """
    remaining = len(impl_actions - activity)
    return 1.0 / remaining


class FocusStrategy(RankingStrategy):
    """Rank actions by the best implementation they complete.

    Args:
        measure: ``"completeness"`` (``Focus_cmp``) or ``"closeness"``
            (``Focus_cl``).
    """

    def __init__(self, measure: str = "completeness") -> None:
        require_in(measure, _MEASURES, "measure")
        self.measure = measure
        self.name = f"focus_{'cmp' if measure == 'completeness' else 'cl'}"

    def score_implementation(
        self, impl_actions: frozenset[int], activity: frozenset[int]
    ) -> float:
        """Apply the configured measure to one implementation."""
        if self.measure == "completeness":
            return completeness(impl_actions, activity)
        return closeness(impl_actions, activity)

    def ranked_implementations(
        self, model: ModelView, activity: frozenset[int]
    ) -> list[tuple[int, float]]:
        """Score and order the recommendable implementations of ``IS(H)``.

        Returns ``(implementation_id, score)`` pairs, best first, ties broken
        by ascending implementation id.  Implementations with no remaining
        actions are excluded.
        """
        scored: list[tuple[int, float]] = []
        for pid in model.implementation_space(activity):
            impl_actions = model.implementation_actions(pid)
            if impl_actions <= activity:
                continue  # nothing left to recommend for this goal
            scored.append((pid, self.score_implementation(impl_actions, activity)))
        scored.sort(key=lambda item: (-item[1], item[0]))
        return scored

    def rank(
        self,
        model: ModelView,
        activity: frozenset[int],
        k: int,
    ) -> list[tuple[int, float]]:
        """Fill the list from the top implementations' missing actions.

        Each recommended action carries the score of the best implementation
        through which it entered the list.  Within one implementation the
        missing actions are emitted in ascending id order.
        """
        result: list[tuple[int, float]] = []
        seen: set[int] = set()
        for pid, score in self.ranked_implementations(model, activity):
            remaining = sorted(model.implementation_actions(pid) - activity)
            for aid in remaining:
                if aid in seen:
                    continue
                seen.add(aid)
                result.append((aid, score))
                if len(result) == k:
                    return result
        return result


@register_strategy("focus_cmp")
def _focus_cmp(**options: object) -> FocusStrategy:
    """Factory for ``Focus_cmp`` (completeness measure)."""
    return FocusStrategy(measure="completeness", **options)  # type: ignore[arg-type]


@register_strategy("focus_cl")
def _focus_cl(**options: object) -> FocusStrategy:
    """Factory for ``Focus_cl`` (closeness measure)."""
    return FocusStrategy(measure="closeness", **options)  # type: ignore[arg-type]
