"""The Best Match strategy (paper Section 5.3, Algorithms 3-4).

Best Match serves users who want recommendations proportional to the *effort
they have already invested per goal*.  Unlike Breadth, which evaluates each
candidate only against the goals that candidate contributes to, Best Match
considers the whole goal space ``GS(H)``:

1. Build the goal-based user profile ``H⃗`` (Algorithm 3, Equation 9): one
   coordinate per goal in ``GS(H)``, counting how many ``(action ∈ H,
   implementation of that goal containing the action)`` pairs exist.
2. Represent each candidate action ``a`` in the same space (Equation 8):
   coordinate ``g`` counts the implementations of ``g`` containing ``a``.
   Equation 7's boolean variant (does ``a`` contribute to ``g`` at all?) is
   available via ``vector_mode="boolean"`` for the ablation study.
3. Rank candidates by increasing ``dist(H⃗, a⃗)`` (Equation 10).

Scores in the returned ranking are *negated distances* so that the library's
uniform "higher score ranks first" convention holds.
"""

from __future__ import annotations

from collections import defaultdict

from repro.core.distances import DistanceFunc, get_distance
from repro.core.protocols import ModelView
from repro.core.strategies.base import (
    RankingStrategy,
    rank_scored_ids,
    register_strategy,
)
from repro.utils.validation import require_in

_VECTOR_MODES = ("count", "boolean")


@register_strategy("best_match")
class BestMatchStrategy(RankingStrategy):
    """Rank actions by distance to the goal-based user profile.

    Args:
        distance: name of a metric from :mod:`repro.core.distances`
            (``"cosine"`` by default).
        vector_mode: ``"count"`` (Equation 8, canonical) or ``"boolean"``
            (Equation 7).
    """

    name = "best_match"

    def __init__(self, distance: str = "cosine", vector_mode: str = "count") -> None:
        require_in(vector_mode, _VECTOR_MODES, "vector_mode")
        self.distance_name = distance
        self._distance: DistanceFunc = get_distance(distance)
        self.vector_mode = vector_mode
        if distance != "cosine" or vector_mode != "count":
            self.name = f"best_match_{distance}_{vector_mode}"

    # ------------------------------------------------------------------
    # Vector construction
    # ------------------------------------------------------------------

    def goal_axis(
        self, model: ModelView, activity: frozenset[int]
    ) -> list[int]:
        """The ordered goal ids spanning the feature space ``F_GS(H)``.

        Ascending goal-id order makes every vector in one request comparable
        and the output deterministic.
        """
        return sorted(model.goal_space(activity))

    def profile(
        self,
        model: ModelView,
        activity: frozenset[int],
        axis: list[int] | None = None,
    ) -> list[float]:
        """Goal-based user profile ``H⃗`` (Algorithm 3 / Equation 9).

        Coordinate ``i`` counts the pairs ``(a ∈ H, p)`` where ``p`` is an
        implementation of goal ``axis[i]`` containing ``a`` — i.e. the effort
        the user has put toward that goal, weighted by how many alternative
        implementations each performed action serves.
        """
        if axis is None:
            axis = self.goal_axis(model, activity)
        counts: dict[int, int] = defaultdict(int)
        for aid in activity:
            for pid in model.implementations_of_action(aid):
                counts[model.implementation_goal(pid)] += 1
        return [float(counts.get(gid, 0)) for gid in axis]

    def action_vector(
        self,
        model: ModelView,
        aid: int,
        axis: list[int],
        axis_set: set[int] | None = None,
    ) -> list[float]:
        """Goal-based representation ``a⃗`` of one action (Equations 7-8)."""
        if axis_set is None:
            axis_set = set(axis)
        counts: dict[int, int] = defaultdict(int)
        for pid in model.implementations_of_action(aid):
            gid = model.implementation_goal(pid)
            if gid in axis_set:
                counts[gid] += 1
        if self.vector_mode == "boolean":
            return [1.0 if counts.get(gid, 0) else 0.0 for gid in axis]
        return [float(counts.get(gid, 0)) for gid in axis]

    # ------------------------------------------------------------------
    # Ranking (Algorithm 4)
    # ------------------------------------------------------------------

    def distances(
        self, model: ModelView, activity: frozenset[int]
    ) -> dict[int, float]:
        """``{candidate_action_id: dist(H⃗, a⃗)}`` for every candidate."""
        axis = self.goal_axis(model, activity)
        axis_set = set(axis)
        user_vector = self.profile(model, activity, axis)
        result: dict[int, float] = {}
        for aid in model.candidate_actions(activity):
            vector = self.action_vector(model, aid, axis, axis_set)
            result[aid] = self._distance(user_vector, vector)
        return result

    def rank(
        self,
        model: ModelView,
        activity: frozenset[int],
        k: int,
    ) -> list[tuple[int, float]]:
        """Top-``k`` candidates by ascending distance (score = −distance)."""
        scores = {
            aid: -distance
            for aid, distance in self.distances(model, activity).items()
        }
        return rank_scored_ids(scores, k)
