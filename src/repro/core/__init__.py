"""The paper's primary contribution: the goal model and ranking strategies."""

from repro.core.approximate import (
    PrunedBreadthStrategy,
    SampledBreadthStrategy,
    recall_at_k,
)
from repro.core.entities import (
    GoalImplementation,
    RecommendationList,
    ScoredAction,
    UserActivity,
)
from repro.core.caching import (
    CachedModelView,
    CacheStats,
    CachingRecommender,
    LRUCache,
)
from repro.core.explain import Explanation, explain_action, render_explanation
from repro.core.goal_inference import GoalInferencer
from repro.core.incremental import IncrementalGoalModel
from repro.core.library import ImplementationLibrary, LibraryStats
from repro.core.model import AssociationGoalModel
from repro.core.protocols import ModelView, Strategy
from repro.core.recommender import GoalRecommender, PAPER_STRATEGIES
from repro.core.related import implementation_similarity, related_actions
from repro.core.session import GoalCompleted, RecommendationSession
from repro.core.strategies import (
    BestMatchStrategy,
    BreadthStrategy,
    FocusStrategy,
    HybridStrategy,
    create_strategy,
)

__all__ = [
    "GoalImplementation",
    "UserActivity",
    "ScoredAction",
    "RecommendationList",
    "ImplementationLibrary",
    "LibraryStats",
    "AssociationGoalModel",
    "IncrementalGoalModel",
    "ModelView",
    "Strategy",
    "LRUCache",
    "CacheStats",
    "CachedModelView",
    "CachingRecommender",
    "GoalInferencer",
    "Explanation",
    "explain_action",
    "render_explanation",
    "related_actions",
    "implementation_similarity",
    "RecommendationSession",
    "GoalCompleted",
    "GoalRecommender",
    "PAPER_STRATEGIES",
    "FocusStrategy",
    "BreadthStrategy",
    "BestMatchStrategy",
    "HybridStrategy",
    "PrunedBreadthStrategy",
    "SampledBreadthStrategy",
    "recall_at_k",
    "create_strategy",
]
