"""Related actions: similarity in implementation space.

Two actions are related when they co-serve goals — i.e. their ``A-GI-idx``
entries overlap.  :func:`related_actions` ranks, for one action, the others
by Tanimoto similarity of their implementation sets; it powers
"people working toward the same things also did …" surfaces and is the
goal-space analogue of item-item similarity (but derived from the library,
not from user behaviour, so it carries no popularity bias).
"""

from __future__ import annotations

from repro.core.entities import ActionLabel
from repro.core.model import AssociationGoalModel
from repro.utils.validation import require_positive


def implementation_similarity(
    model: AssociationGoalModel, a: ActionLabel, b: ActionLabel
) -> float:
    """Tanimoto similarity of two actions' implementation sets.

    1.0 when the actions appear in exactly the same implementations, 0.0
    when they never co-occur.
    """
    impls_a = model.implementations_of_action(model.action_id(a))
    impls_b = model.implementations_of_action(model.action_id(b))
    if not impls_a or not impls_b:
        return 0.0
    intersection = len(impls_a & impls_b)
    if intersection == 0:
        return 0.0
    return intersection / (len(impls_a) + len(impls_b) - intersection)


def related_actions(
    model: AssociationGoalModel,
    action: ActionLabel,
    k: int = 10,
) -> list[tuple[ActionLabel, float]]:
    """The ``k`` actions most related to ``action``, best first.

    Only actions sharing at least one implementation appear (similarity is
    otherwise zero); ties break by label.  Raises
    :class:`~repro.exceptions.UnknownActionError` for unindexed actions.
    """
    require_positive(k, "k")
    aid = model.action_id(action)
    impls = model.implementations_of_action(aid)
    candidates: set[int] = set()
    for pid in impls:
        candidates |= model.implementation_actions(pid)
    candidates.discard(aid)
    scored: list[tuple[ActionLabel, float]] = []
    for other in candidates:
        other_impls = model.implementations_of_action(other)
        intersection = len(impls & other_impls)
        similarity = intersection / (
            len(impls) + len(other_impls) - intersection
        )
        scored.append((model.action_label(other), similarity))
    scored.sort(key=lambda pair: (-pair[1], str(pair[0])))
    return scored[:k]
