"""Partial top-k selection under the library's determinism contract.

Every ranking in the codebase orders candidates by ``(-score, action_id)``
— higher scores first, ties split by ascending id (see
``repro.core.strategies.base``).  The historical implementations sorted the
*entire* candidate set (``sorted(...)[:k]`` over dicts, a full
``np.lexsort`` over arrays) even though only ``k`` winners survive; at
paper scale that is tens of thousands of comparisons for a top-10 answer.

This module centralizes the partial-selection replacements:

- :func:`top_k_positions` — NumPy ``argpartition``-based selection over
  parallel ``(ids, scores)`` arrays; only the boundary tie group is ever
  fully ordered, then a final lexsort runs over at most ``k`` winners.
- :func:`top_k_pairs` — the ``{id: score}`` mapping front end used by the
  scalar strategies; small inputs go through ``heapq.nsmallest`` (an
  ``O(n log k)`` drop-in for ``sorted(...)[:k]``), large ones through the
  array path.

Both are *element-wise identical* to the full sorts they replace: the
``(-score, id)`` key is unique per candidate, so neither partitioning nor
the heap can reorder anything the full sort would have ordered differently.
The property-based suite (``tests/test_topk.py``) pins this equivalence
under heavy tie groups, ``k >= n``, ``k = 1`` and integer-valued float
scores.
"""

from __future__ import annotations

import heapq
from collections.abc import Mapping

try:  # pragma: no cover - exercised indirectly; numpy is a hard dependency
    import numpy as np
except ImportError:  # pragma: no cover - the heap path needs nothing
    np = None  # type: ignore[assignment]

#: Below this many candidates the heap path wins — converting a small dict
#: into NumPy arrays costs more than it saves.
_ARRAY_CUTOVER = 1024


def top_k_positions(
    ids: "np.ndarray", scores: "np.ndarray", k: int
) -> "np.ndarray":
    """Positions of the top-``k`` entries of ``(ids, scores)``, ranked.

    The returned index array selects (and orders) the winners by
    ``(-score, id)``.  ``ids`` must not contain duplicates; ``k`` must be
    positive.  Selection runs in three steps:

    1. ``argpartition`` on the negated scores finds the ``k``-th best score
       (the *boundary*) without ordering anything;
    2. every strictly better candidate is kept; the remaining slots are
       filled with the boundary-tied candidates of smallest id (again via
       ``argpartition``, over the tie group only);
    3. a final ``lexsort`` orders the at-most-``k`` winners.

    Equality on step 2 is float equality — exactly the comparison the full
    lexsort performs — so the selected set matches the full sort's prefix
    bit for bit.
    """
    if np is None:  # pragma: no cover - numpy is installed in CI
        raise RuntimeError("top_k_positions requires numpy")
    n = int(ids.size)
    if n == 0:
        return np.empty(0, dtype=np.int64)
    if k < n:
        neg = -scores
        partitioned = np.argpartition(neg, k - 1)
        boundary = neg[partitioned[k - 1]]
        strict = np.flatnonzero(neg < boundary)
        need = k - strict.size
        tied = np.flatnonzero(neg == boundary)
        if need < tied.size:
            # Among the boundary tie group the contract keeps the smallest
            # ids; ``need >= 1`` because the boundary element itself is one
            # of the k best.
            take = np.argpartition(ids[tied], need - 1)[:need]
            tied = tied[take]
        selected = np.concatenate([strict, tied])
    else:
        selected = np.arange(n)
    order = np.lexsort((ids[selected], -scores[selected]))
    result: np.ndarray = selected[order]
    return result


def top_k_pairs(
    scores: Mapping[int, float], k: int
) -> list[tuple[int, float]]:
    """Top-``k`` ``(id, score)`` pairs of a score map, best first.

    Bit-identical to ``sorted(scores.items(), key=(-score, id))[:k]``:
    the sort key is unique per entry (ids are unique), so the heap and the
    partition select exactly the prefix the full sort would produce.
    """
    n = len(scores)
    if n == 0 or k <= 0:
        return []
    if np is None or n <= _ARRAY_CUTOVER or k >= n:
        return heapq.nsmallest(
            k, scores.items(), key=lambda item: (-item[1], item[0])
        )
    ids = np.fromiter(scores.keys(), dtype=np.int64, count=n)
    values = np.fromiter(scores.values(), dtype=np.float64, count=n)
    ranked = top_k_positions(ids, values, k)
    return [(int(ids[i]), float(values[i])) for i in ranked]
