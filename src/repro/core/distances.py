"""Distance functions for the Best Match strategy (paper Equation 10).

Best Match represents the user profile and every candidate action as vectors
in the feature space ``F_GS(H)`` (one coordinate per goal in the user's goal
space) and ranks candidates by increasing distance to the profile.  The paper
leaves ``dist`` open ("a standard metric"); cosine distance is our default
because the profile's magnitude grows with activity size while only the
*direction* (relative effort per goal) matters.  Euclidean and Manhattan are
provided for the ablation study.

All functions accept plain Python sequences or NumPy arrays of equal length
and return a float; they are exact on integer-valued inputs.
"""

from __future__ import annotations

import math
from collections.abc import Callable, Sequence

Vector = Sequence[float]
DistanceFunc = Callable[[Vector, Vector], float]


def cosine_distance(u: Vector, v: Vector) -> float:
    """``1 - cos(u, v)``; distance of a zero vector to anything is 1."""
    dot = 0.0
    norm_u = 0.0
    norm_v = 0.0
    for a, b in zip(u, v, strict=True):
        dot += a * b
        norm_u += a * a
        norm_v += b * b
    if norm_u == 0.0 or norm_v == 0.0:
        return 1.0
    return 1.0 - dot / math.sqrt(norm_u * norm_v)


def euclidean_distance(u: Vector, v: Vector) -> float:
    """Standard L2 distance."""
    return math.sqrt(
        sum((a - b) * (a - b) for a, b in zip(u, v, strict=True))
    )


def manhattan_distance(u: Vector, v: Vector) -> float:
    """Standard L1 distance."""
    return sum(abs(a - b) for a, b in zip(u, v, strict=True))


DISTANCES: dict[str, DistanceFunc] = {
    "cosine": cosine_distance,
    "euclidean": euclidean_distance,
    "manhattan": manhattan_distance,
}


def get_distance(name: str) -> DistanceFunc:
    """Look up a distance function by name.

    Raises :class:`ValueError` for unknown names, listing the valid choices.
    """
    try:
        return DISTANCES[name]
    except KeyError:
        raise ValueError(
            f"unknown distance {name!r}; available: {', '.join(sorted(DISTANCES))}"
        ) from None
