"""Goal inference: rank the *goals* a user appears to pursue.

The paper's strategies rank actions; its related work (§2) is largely about
recognizing the goal itself.  This module closes that loop over the same
association model: given an activity, score every goal in ``GS(H)``.  The
output is directly useful for explanation UIs ("you seem to be working on
…") and for the 43Things evaluation, where each user's true goals are known
and inference quality is measurable.

Scorers (all normalized to be comparable across goals):

- ``evidence`` — fraction of the activity contributing to the goal:
  ``|H ∩ ∪_p A_p| / |H|`` over the goal's implementations;
- ``completeness`` — the goal's best implementation completeness
  (Equation 3), i.e. how *far along* the goal is;
- ``coverage`` — best over implementations of
  ``|A_p ∩ H| / |A_p| × |A_p ∩ H| / |H|`` (an F-measure-like blend: the
  implementation should be well covered *and* explain much of the
  activity — large sprawling implementations score lower than tight ones).
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.core.entities import ActionLabel, GoalLabel
from repro.core.model import AssociationGoalModel
from repro.exceptions import RecommendationError
from repro.utils.validation import require_in

_SCORERS = ("evidence", "completeness", "coverage")


class GoalInferencer:
    """Rank goals by how strongly an activity points at them.

    Args:
        model: the indexed goal model (frozen or incremental — only the
            shared query surface is used).
        scorer: one of ``"evidence"``, ``"completeness"``, ``"coverage"``.
    """

    def __init__(
        self, model: AssociationGoalModel, scorer: str = "coverage"
    ) -> None:
        require_in(scorer, _SCORERS, "scorer")
        self.model = model
        self.scorer = scorer

    # ------------------------------------------------------------------
    # Per-goal scoring
    # ------------------------------------------------------------------

    def _score_goal(self, gid: int, activity: frozenset[int]) -> float:
        model = self.model
        pids = model.implementations_of_goal(gid)
        if self.scorer == "evidence":
            touched: set[int] = set()
            for pid in pids:
                touched |= model.implementation_actions(pid) & activity
            return len(touched) / len(activity)
        best = 0.0
        for pid in pids:
            impl_actions = model.implementation_actions(pid)
            overlap = len(impl_actions & activity)
            if overlap == 0:
                continue
            if self.scorer == "completeness":
                value = overlap / len(impl_actions)
            else:  # coverage
                value = (overlap / len(impl_actions)) * (overlap / len(activity))
            if value > best:
                best = value
        return best

    def infer(
        self, activity: Iterable[ActionLabel], top: int | None = None
    ) -> list[tuple[GoalLabel, float]]:
        """Score every goal in ``GS(H)``; best first.

        Ties break by goal label.  ``top`` truncates the result; ``None``
        returns the whole scored goal space.  An activity with no known
        actions returns an empty list.
        """
        if top is not None and top <= 0:
            raise RecommendationError(f"top must be positive, got {top}")
        encoded = self.model.encode_activity(activity)
        if not encoded:
            return []
        scored = [
            (self.model.goal_label(gid), self._score_goal(gid, encoded))
            for gid in self.model.goal_space(encoded)
        ]
        scored.sort(key=lambda item: (-item[1], str(item[0])))
        return scored[:top] if top is not None else scored

    def hit_rate_at(
        self,
        k: int,
        activities: Iterable[Iterable[ActionLabel]],
        true_goals: Iterable[Iterable[GoalLabel]],
    ) -> float:
        """Fraction of users with at least one true goal in the top-``k``.

        The standard goal-recognition accuracy measure; ``activities`` and
        ``true_goals`` must be aligned per user.
        """
        if k <= 0:
            raise RecommendationError(f"k must be positive, got {k}")
        activities = list(activities)
        true_goals = [set(goals) for goals in true_goals]
        if len(activities) != len(true_goals):
            raise RecommendationError(
                f"mismatched inputs: {len(activities)} activities vs "
                f"{len(true_goals)} goal sets"
            )
        if not activities:
            raise RecommendationError("no users to evaluate")
        hits = 0
        for activity, goals in zip(activities, true_goals):
            inferred = {goal for goal, _ in self.infer(activity, top=k)}
            if inferred & goals:
                hits += 1
        return hits / len(activities)
