"""Incrementally maintainable goal model.

:class:`AssociationGoalModel` is immutable — ideal for evaluation, wrong for
a live deployment where new goal implementations stream in (new recipes get
published, users post new success stories) and stale ones are retired.
:class:`IncrementalGoalModel` maintains the same five index structures under
``add_implementation`` / ``remove_implementation`` with O(implementation
length) maintenance cost, and answers the exact same query interface, so
every ranking strategy runs against it unchanged.

Differences from the frozen model:

- implementation ids are never reused after removal (monotonic counter), so
  external references stay unambiguous;
- actions and goals are never garbage-collected — an action whose last
  implementation was removed keeps its id and simply has an empty
  ``A-GI-idx`` entry (queries return empty spaces for it);
- :meth:`freeze` compacts everything into an
  :class:`AssociationGoalModel` for read-heavy serving.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.core.entities import ActionLabel, GoalImplementation, GoalLabel
from repro.core.library import ImplementationLibrary, LibraryStats
from repro.core.model import AssociationGoalModel
from repro.exceptions import ModelError, UnknownActionError, UnknownGoalError

#: Lock discipline, machine-checked by ``repro-lint`` (rule RL001, see
#: docs/static-analysis.md).  The incremental model carries no lock of its
#: own: the serving layer's ``ModelManager`` wraps every mutation and every
#: consistent read in its writer-preferring RWLock.  ``<caller>`` marks the
#: index dicts as externally synchronized — only this class's own methods
#: may touch them, so synchronization stays the manager's job.
_GUARDED_BY = {
    "IncrementalGoalModel._impl_actions": "<caller>",
    "IncrementalGoalModel._impl_goal": "<caller>",
    "IncrementalGoalModel._action_impls": "<caller>",
    "IncrementalGoalModel._goal_impls": "<caller>",
    "IncrementalGoalModel._dedup": "<caller>",
}


class IncrementalGoalModel:
    """A goal model supporting live insertion and removal of implementations.

    Query methods mirror :class:`AssociationGoalModel`; ranking strategies
    accept either (they only use the shared query surface).
    """

    def __init__(self) -> None:
        self._actions: list[ActionLabel] = []
        self._action_to_id: dict[ActionLabel, int] = {}
        self._goals: list[GoalLabel] = []
        self._goal_to_id: dict[GoalLabel, int] = {}
        self._impl_actions: dict[int, frozenset[int]] = {}  # GI-A-idx
        self._impl_goal: dict[int, int] = {}  # GI-G-idx
        self._action_impls: dict[int, set[int]] = {}  # A-GI-idx
        self._goal_impls: dict[int, set[int]] = {}  # G-GI-idx
        self._dedup: dict[tuple[int, frozenset[int]], int] = {}
        self._next_impl_id = 0

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_library(cls, library: ImplementationLibrary) -> "IncrementalGoalModel":
        """Seed an incremental model from an existing library."""
        model = cls()
        for impl in library:
            model.add_implementation(impl.goal, impl.actions)
        return model

    def _intern_action(self, label: ActionLabel) -> int:
        aid = self._action_to_id.get(label)
        if aid is None:
            aid = len(self._actions)
            self._action_to_id[label] = aid
            self._actions.append(label)
            self._action_impls[aid] = set()
        return aid

    def _intern_goal(self, label: GoalLabel) -> int:
        gid = self._goal_to_id.get(label)
        if gid is None:
            gid = len(self._goals)
            self._goal_to_id[label] = gid
            self._goals.append(label)
            self._goal_impls[gid] = set()
        return gid

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def add_implementation(
        self, goal: GoalLabel, actions: Iterable[ActionLabel]
    ) -> int:
        """Index a new ``(goal, actions)`` implementation; return its id.

        Duplicates of a live implementation return the existing id.  Raises
        :class:`ModelError` on an empty action set.
        """
        encoded = frozenset(
            self._intern_action(label) for label in sorted(set(actions), key=str)
        )
        if not encoded:
            raise ModelError(f"implementation of {goal!r} has no actions")
        gid = self._intern_goal(goal)
        key = (gid, encoded)
        existing = self._dedup.get(key)
        if existing is not None:
            return existing
        pid = self._next_impl_id
        self._next_impl_id += 1
        self._impl_actions[pid] = encoded
        self._impl_goal[pid] = gid
        self._goal_impls[gid].add(pid)
        for aid in encoded:
            self._action_impls[aid].add(pid)
        self._dedup[key] = pid
        return pid

    def remove_implementation(self, pid: int) -> None:
        """Remove implementation ``pid`` from every index.

        Raises :class:`ModelError` when ``pid`` is not live.
        """
        encoded = self._impl_actions.pop(pid, None)
        if encoded is None:
            raise ModelError(f"no live implementation with id {pid}")
        gid = self._impl_goal.pop(pid)
        self._goal_impls[gid].discard(pid)
        for aid in encoded:
            self._action_impls[aid].discard(pid)
        del self._dedup[(gid, encoded)]

    # ------------------------------------------------------------------
    # Sizes and label translation (query surface shared with the frozen model)
    # ------------------------------------------------------------------

    @property
    def num_actions(self) -> int:
        """Number of interned actions (including orphaned ones)."""
        return len(self._actions)

    @property
    def num_goals(self) -> int:
        """Number of interned goals (including goals with no live impl)."""
        return len(self._goals)

    @property
    def num_implementations(self) -> int:
        """Number of *live* implementations."""
        return len(self._impl_actions)

    def action_id(self, label: ActionLabel) -> int:
        """Id of an action label; raises :class:`UnknownActionError`."""
        try:
            return self._action_to_id[label]
        except KeyError:
            raise UnknownActionError(label) from None

    def goal_id(self, label: GoalLabel) -> int:
        """Id of a goal label; raises :class:`UnknownGoalError`."""
        try:
            return self._goal_to_id[label]
        except KeyError:
            raise UnknownGoalError(label) from None

    def action_label(self, aid: int) -> ActionLabel:
        """Label of an action id."""
        return self._actions[aid]

    def goal_label(self, gid: int) -> GoalLabel:
        """Label of a goal id."""
        return self._goals[gid]

    def has_action(self, label: ActionLabel) -> bool:
        """``True`` when ``label`` was ever interned."""
        return label in self._action_to_id

    def has_goal(self, label: GoalLabel) -> bool:
        """``True`` when ``label`` was ever interned."""
        return label in self._goal_to_id

    def encode_activity(
        self, activity: Iterable[ActionLabel], strict: bool = False
    ) -> frozenset[int]:
        """Translate labels to ids, dropping unknowns unless ``strict``."""
        encoded: set[int] = set()
        for label in activity:
            aid = self._action_to_id.get(label)
            if aid is None:
                if strict:
                    raise UnknownActionError(label)
                continue
            encoded.add(aid)
        return frozenset(encoded)

    # ------------------------------------------------------------------
    # Index access
    # ------------------------------------------------------------------

    def implementation_actions(self, pid: int) -> frozenset[int]:
        """``GI-A-idx[pid]``; raises :class:`ModelError` if not live."""
        try:
            return self._impl_actions[pid]
        except KeyError:
            raise ModelError(f"no live implementation with id {pid}") from None

    def implementation_goal(self, pid: int) -> int:
        """``GI-G-idx[pid]``; raises :class:`ModelError` if not live."""
        try:
            return self._impl_goal[pid]
        except KeyError:
            raise ModelError(f"no live implementation with id {pid}") from None

    def implementations_of_action(self, aid: int) -> frozenset[int]:
        """``A-GI-idx[aid]`` over live implementations."""
        return frozenset(self._action_impls.get(aid, ()))

    def implementations_of_goal(self, gid: int) -> frozenset[int]:
        """``G-GI-idx[gid]`` over live implementations."""
        return frozenset(self._goal_impls.get(gid, ()))

    def implementation(self, pid: int) -> GoalImplementation:
        """Reconstruct a live implementation at the label level."""
        return GoalImplementation(
            goal=self._goals[self.implementation_goal(pid)],
            actions=frozenset(
                self._actions[a] for a in self.implementation_actions(pid)
            ),
            impl_id=pid,
        )

    # ------------------------------------------------------------------
    # Space queries
    # ------------------------------------------------------------------

    def implementation_space(self, activity: frozenset[int]) -> set[int]:
        """``IS(H)`` over live implementations."""
        space: set[int] = set()
        for aid in activity:
            space |= self._action_impls.get(aid, set())
        return space

    def goal_space(self, activity: frozenset[int]) -> set[int]:
        """``GS(H)`` over live implementations."""
        return {
            self._impl_goal[pid] for pid in self.implementation_space(activity)
        }

    def action_space(self, activity: frozenset[int]) -> set[int]:
        """``AS(H)`` over live implementations."""
        space: set[int] = set()
        for pid in self.implementation_space(activity):
            space |= self._impl_actions[pid]
        return space

    def candidate_actions(self, activity: frozenset[int]) -> set[int]:
        """``AS(H) − H``."""
        return self.action_space(activity) - activity

    def goal_completeness(self, gid: int, activity: frozenset[int]) -> float:
        """Best completeness of goal ``gid`` over its live implementations."""
        best = 0.0
        for pid in self._goal_impls.get(gid, ()):
            impl_actions = self._impl_actions[pid]
            value = len(impl_actions & activity) / len(impl_actions)
            if value > best:
                best = value
        return best

    def goal_space_labels(self, activity: Iterable[ActionLabel]) -> set[GoalLabel]:
        """Label-level ``GS(H)``."""
        encoded = self.encode_activity(activity)
        return {self._goals[gid] for gid in self.goal_space(encoded)}

    # ------------------------------------------------------------------
    # Derived statistics (defined for every model state, including empty)
    # ------------------------------------------------------------------

    def live_implementation_ids(self) -> list[int]:
        """Ids of the live implementations, ascending."""
        return sorted(self._impl_actions)

    def connectivity(self) -> float:
        """Average live implementations per action *with* live implementations.

        Orphaned actions (interned, but every implementation containing them
        was removed) are excluded from the denominator, matching what a
        freeze-and-recount would measure.  A model with no live
        implementations has connectivity 0.0 — not a :class:`ZeroDivisionError`.
        """
        live_counts = [len(s) for s in self._action_impls.values() if s]
        if not live_counts:
            return 0.0
        return sum(live_counts) / len(live_counts)

    def stats(self) -> LibraryStats:
        """Library statistics over the *live* implementations.

        Counts goals and actions that currently participate in at least one
        live implementation, so the numbers agree with :meth:`freeze` (which
        drops orphans).  With zero live implementations every field is a
        well-defined zero — the incremental model intentionally outlives the
        remove-the-last-implementation edge that the frozen model rejects.
        """
        lengths = [len(actions) for actions in self._impl_actions.values()]
        live_goals = sum(1 for pids in self._goal_impls.values() if pids)
        live_actions = sum(1 for pids in self._action_impls.values() if pids)
        return LibraryStats(
            num_implementations=len(lengths),
            num_goals=live_goals,
            num_actions=live_actions,
            connectivity=self.connectivity(),
            avg_implementation_length=(
                sum(lengths) / len(lengths) if lengths else 0.0
            ),
            max_implementation_length=max(lengths, default=0),
            avg_implementations_per_goal=(
                len(lengths) / live_goals if live_goals else 0.0
            ),
        )

    def action_space_labels(self, activity: Iterable[ActionLabel]) -> set[ActionLabel]:
        """Label-level ``AS(H)``."""
        encoded = self.encode_activity(activity)
        return {self._actions[aid] for aid in self.action_space(encoded)}

    # ------------------------------------------------------------------
    # Compaction
    # ------------------------------------------------------------------

    def to_library(self) -> ImplementationLibrary:
        """Export the live implementations, in ascending id order."""
        library = ImplementationLibrary()
        for pid in sorted(self._impl_actions):
            library.add(self.implementation(pid))
        return library

    def freeze(self) -> AssociationGoalModel:
        """Compact into an immutable model for read-heavy serving.

        Orphaned actions/goals are dropped; ids are re-densified, so frozen
        ids are *not* comparable with incremental ids.  Raises
        :class:`ModelError` when no implementation is live.
        """
        if not self._impl_actions:
            raise ModelError("cannot freeze a model with no live implementations")
        return AssociationGoalModel.from_library(self.to_library())
