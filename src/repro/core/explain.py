"""Structured, renderable explanations for goal-based recommendations.

:meth:`GoalRecommender.explain` returns raw evidence (goal -> grounding
implementations).  User-facing surfaces want more: *why this action, how far
along each goal is, and what performing the action changes*.  This module
computes that as data (:class:`Explanation` / :class:`GoalEvidence`) and
renders it as text — the structure an API or UI would serialize.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from repro.core.entities import ActionLabel, GoalLabel
from repro.core.model import AssociationGoalModel
from repro.exceptions import UnknownActionError


@dataclass(frozen=True, slots=True)
class GoalEvidence:
    """One goal's case for recommending the action.

    Attributes:
        goal: the goal label.
        completeness_before: the goal's best implementation completeness
            given the activity alone (Equation 3).
        completeness_after: the same after additionally performing the
            recommended action.
        best_missing: the remaining actions (after performing the
            recommended one) of the goal's most-complete implementation
            through which the action contributes.
        num_implementations: how many of the goal's implementations both
            contain the action and intersect the activity.
    """

    goal: GoalLabel
    completeness_before: float
    completeness_after: float
    best_missing: frozenset[ActionLabel]
    num_implementations: int

    @property
    def gain(self) -> float:
        """Completeness gained by performing the action."""
        return self.completeness_after - self.completeness_before

    def fulfills(self) -> bool:
        """``True`` when the action completes the goal outright."""
        return self.completeness_after >= 1.0


@dataclass(frozen=True, slots=True)
class Explanation:
    """The full structured explanation of one recommended action."""

    action: ActionLabel
    activity: frozenset[ActionLabel]
    evidence: tuple[GoalEvidence, ...]

    def goals(self) -> list[GoalLabel]:
        """The goals the action advances, strongest gain first."""
        return [entry.goal for entry in self.evidence]

    def total_gain(self) -> float:
        """Sum of completeness gains across all advanced goals."""
        return sum(entry.gain for entry in self.evidence)


def explain_action(
    model: AssociationGoalModel,
    activity: Iterable[ActionLabel],
    action: ActionLabel,
) -> Explanation:
    """Build the structured explanation of ``action`` for ``activity``.

    Only goals reachable from the activity *through implementations
    containing the action* appear; evidence is sorted by completeness gain
    (descending), then goal label.  Raises
    :class:`~repro.exceptions.UnknownActionError` for unindexed actions.
    """
    if not model.has_action(action):
        raise UnknownActionError(action)
    encoded = model.encode_activity(activity)
    aid = model.action_id(action)
    augmented = encoded | {aid}
    reachable = model.implementation_space(encoded)
    by_goal: dict[int, list[int]] = {}
    for pid in model.implementations_of_action(aid) & reachable:
        by_goal.setdefault(model.implementation_goal(pid), []).append(pid)
    evidence: list[GoalEvidence] = []
    for gid, pids in by_goal.items():
        before = model.goal_completeness(gid, encoded)
        after = model.goal_completeness(gid, augmented)
        # Most complete implementation (after the action) among those the
        # action contributes through; its leftover is what's still missing.
        best_pid = max(
            pids,
            key=lambda pid: (
                len(model.implementation_actions(pid) & augmented)
                / len(model.implementation_actions(pid)),
                -pid,
            ),
        )
        missing = model.implementation_actions(best_pid) - augmented
        evidence.append(
            GoalEvidence(
                goal=model.goal_label(gid),
                completeness_before=before,
                completeness_after=after,
                best_missing=frozenset(
                    model.action_label(a) for a in missing
                ),
                num_implementations=len(pids),
            )
        )
    evidence.sort(key=lambda entry: (-entry.gain, str(entry.goal)))
    return Explanation(
        action=action,
        activity=frozenset(activity),
        evidence=tuple(evidence),
    )


def render_explanation(explanation: Explanation) -> str:
    """Render an explanation as human-readable text.

    One line per goal: completeness transition, fulfilment marker, and what
    would still be missing afterwards.
    """
    lines = [f"why {explanation.action!r}:"]
    if not explanation.evidence:
        lines.append("  (no goal in the activity's goal space needs it)")
        return "\n".join(lines)
    for entry in explanation.evidence:
        arrow = (
            f"{entry.completeness_before:.0%} -> {entry.completeness_after:.0%}"
        )
        if entry.fulfills():
            tail = "COMPLETES the goal"
        elif entry.best_missing:
            missing = ", ".join(sorted(map(str, entry.best_missing))[:4])
            tail = f"still missing: {missing}"
        else:
            tail = ""
        via = (
            f" (via {entry.num_implementations} implementations)"
            if entry.num_implementations > 1
            else ""
        )
        lines.append(f"  {entry.goal}: {arrow}{via}; {tail}".rstrip("; "))
    return "\n".join(lines)
