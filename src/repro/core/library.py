"""The goal implementation library ``L``.

:class:`ImplementationLibrary` is the mutable container a dataset is loaded
into before an :class:`~repro.core.model.AssociationGoalModel` is built from
it.  It deduplicates implementations, assigns stable integer identifiers and
exposes the summary statistics the paper reports for its two datasets
(number of goals/actions/implementations, *connectivity* — the average number
of implementations an action participates in — and average implementation
length).
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Iterable, Iterator
from dataclasses import dataclass

from repro.core.entities import ActionLabel, GoalImplementation, GoalLabel
from repro.exceptions import DataError


@dataclass(frozen=True, slots=True)
class LibraryStats:
    """Summary statistics of an implementation library.

    Mirrors the dataset descriptions in the paper's Section 6: ``connectivity``
    is the average number of implementations each action participates in
    (1.2K for the grocery dataset, 3.84 for 43Things).
    """

    num_implementations: int
    num_goals: int
    num_actions: int
    connectivity: float
    avg_implementation_length: float
    max_implementation_length: int
    avg_implementations_per_goal: float

    def __str__(self) -> str:
        return (
            f"{self.num_implementations} implementations, {self.num_goals} goals, "
            f"{self.num_actions} actions, connectivity={self.connectivity:.2f}, "
            f"avg length={self.avg_implementation_length:.2f}"
        )


class ImplementationLibrary:
    """An ordered, deduplicated collection of goal implementations.

    Implementations are identified by dense integer ids in insertion order.
    Adding an exact duplicate ``(goal, actions)`` pair is a no-op returning
    the existing id, so repeatedly ingesting the same source is idempotent.
    """

    def __init__(self, implementations: Iterable[GoalImplementation] = ()) -> None:
        self._implementations: list[GoalImplementation] = []
        self._dedup: dict[tuple[GoalLabel, frozenset[ActionLabel]], int] = {}
        for impl in implementations:
            self.add(impl)

    def add(self, implementation: GoalImplementation) -> int:
        """Add one implementation; return its (possibly pre-existing) id."""
        key = (implementation.goal, implementation.actions)
        existing = self._dedup.get(key)
        if existing is not None:
            return existing
        impl_id = len(self._implementations)
        stored = GoalImplementation(
            goal=implementation.goal,
            actions=implementation.actions,
            impl_id=impl_id,
        )
        self._implementations.append(stored)
        self._dedup[key] = impl_id
        return impl_id

    def add_pair(self, goal: GoalLabel, actions: Iterable[ActionLabel]) -> int:
        """Convenience: add a raw ``(goal, actions)`` pair."""
        return self.add(GoalImplementation(goal=goal, actions=frozenset(actions)))

    def extend(self, implementations: Iterable[GoalImplementation]) -> list[int]:
        """Add many implementations; return their ids in input order."""
        return [self.add(impl) for impl in implementations]

    def __len__(self) -> int:
        return len(self._implementations)

    def __iter__(self) -> Iterator[GoalImplementation]:
        return iter(self._implementations)

    def __getitem__(self, impl_id: int) -> GoalImplementation:
        try:
            return self._implementations[impl_id]
        except IndexError:
            raise KeyError(f"no implementation with id {impl_id}") from None

    def goals(self) -> set[GoalLabel]:
        """The distinct goals appearing in the library."""
        return {impl.goal for impl in self._implementations}

    def actions(self) -> set[ActionLabel]:
        """The distinct actions appearing in any implementation."""
        result: set[ActionLabel] = set()
        for impl in self._implementations:
            result |= impl.actions
        return result

    def implementations_of(self, goal: GoalLabel) -> list[GoalImplementation]:
        """All implementations of ``goal`` (possibly empty)."""
        return [impl for impl in self._implementations if impl.goal == goal]

    def stats(self) -> LibraryStats:
        """Compute the summary statistics of the library.

        Raises :class:`~repro.exceptions.DataError` on an empty library —
        the statistics (and any model built from it) would be meaningless.
        """
        if not self._implementations:
            raise DataError("cannot compute statistics of an empty library")
        per_action: dict[ActionLabel, int] = defaultdict(int)
        per_goal: dict[GoalLabel, int] = defaultdict(int)
        lengths: list[int] = []
        for impl in self._implementations:
            lengths.append(len(impl.actions))
            per_goal[impl.goal] += 1
            for action in impl.actions:
                per_action[action] += 1
        return LibraryStats(
            num_implementations=len(self._implementations),
            num_goals=len(per_goal),
            num_actions=len(per_action),
            connectivity=sum(per_action.values()) / len(per_action),
            avg_implementation_length=sum(lengths) / len(lengths),
            max_implementation_length=max(lengths),
            avg_implementations_per_goal=(
                len(self._implementations) / len(per_goal)
            ),
        )
