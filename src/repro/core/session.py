"""Interactive recommendation sessions.

Applications rarely hold a static activity: the user performs an action,
the list refreshes, a goal completes.  :class:`RecommendationSession` wraps
a model with that loop — record actions one by one, get the current
recommendations, and receive *events* when goals become newly complete
(the moment a UI would celebrate).

The session is deliberately storage-free: it owns only the evolving action
set, so persisting a session is persisting that set.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from repro.core.entities import ActionLabel, GoalLabel, RecommendationList
from repro.core.model import AssociationGoalModel
from repro.core.recommender import GoalRecommender
from repro.exceptions import RecommendationError


@dataclass(frozen=True, slots=True)
class GoalCompleted:
    """Event: performing ``action`` completed ``goal``."""

    goal: GoalLabel
    action: ActionLabel


class RecommendationSession:
    """Track one user's evolving activity against a goal model.

    Args:
        model: the goal model to recommend from.
        initial_activity: actions already performed when the session opens.
        strategy: default strategy for :meth:`recommendations`.
    """

    def __init__(
        self,
        model: AssociationGoalModel,
        initial_activity: Iterable[ActionLabel] = (),
        strategy: str = "breadth",
    ) -> None:
        self.model = model
        self.recommender = GoalRecommender(model, default_strategy=strategy)
        self._activity: set[ActionLabel] = set(initial_activity)
        self._history: list[ActionLabel] = sorted(self._activity, key=str)

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------

    @property
    def activity(self) -> frozenset[ActionLabel]:
        """The actions performed so far."""
        return frozenset(self._activity)

    @property
    def history(self) -> tuple[ActionLabel, ...]:
        """Actions in the order they were recorded."""
        return tuple(self._history)

    def completed_goals(self) -> set[GoalLabel]:
        """Goals with at least one fully performed implementation."""
        encoded = self.model.encode_activity(self._activity)
        return {
            self.model.goal_label(gid)
            for gid in self.model.goal_space(encoded)
            if self.model.goal_completeness(gid, encoded) >= 1.0
        }

    def goal_progress(self) -> dict[GoalLabel, float]:
        """Best completeness per goal in the current goal space."""
        encoded = self.model.encode_activity(self._activity)
        return {
            self.model.goal_label(gid): self.model.goal_completeness(
                gid, encoded
            )
            for gid in self.model.goal_space(encoded)
        }

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    def perform(self, action: ActionLabel) -> list[GoalCompleted]:
        """Record one performed action; return newly completed goals.

        Recording an already performed action is a no-op returning no
        events.  Unknown actions (no implementation) are recorded — they
        may become meaningful if the model is later swapped — but trigger
        no events.
        """
        if action in self._activity:
            return []
        before = self.completed_goals()
        self._activity.add(action)
        self._history.append(action)
        events = [
            GoalCompleted(goal=goal, action=action)
            for goal in sorted(self.completed_goals() - before, key=str)
        ]
        return events

    def perform_all(
        self, actions: Iterable[ActionLabel]
    ) -> list[GoalCompleted]:
        """Record several actions in order; return all events raised."""
        events: list[GoalCompleted] = []
        for action in actions:
            events.extend(self.perform(action))
        return events

    def undo(self) -> ActionLabel:
        """Remove and return the most recently recorded action.

        Raises :class:`RecommendationError` on an empty history (there is
        nothing the session itself recorded to undo).
        """
        if not self._history:
            raise RecommendationError("nothing to undo in this session")
        action = self._history.pop()
        self._activity.discard(action)
        return action

    # ------------------------------------------------------------------
    # Recommendations
    # ------------------------------------------------------------------

    def recommendations(
        self, k: int = 10, strategy: str | None = None
    ) -> RecommendationList:
        """The current top-``k`` for the session's activity."""
        return self.recommender.recommend(
            self._activity, k=k, strategy=strategy
        )

    def next_action(self, strategy: str | None = None) -> ActionLabel | None:
        """The single best next action, or ``None`` with no evidence."""
        result = self.recommendations(k=1, strategy=strategy)
        actions = result.actions()
        return actions[0] if actions else None
