"""Vectorized batch scoring over the goal model (NumPy/SciPy CSR).

The reference strategies in :mod:`repro.core.strategies` are pure-Python and
score one activity at a time — clear, and exactly what the paper's
pseudocode describes.  Serving 20K carts (the paper's workload) benefits
from a bulk path.  This module lowers the model into two sparse matrices

- ``M`` (implementations × actions): ``M[p, a] = 1`` iff ``a ∈ A_p``
  (the ``GI-A-idx`` as a matrix; its transpose is the ``A-GI-idx``),
- ``G`` (implementations × goals): ``G[p, g] = 1`` iff implementation ``p``
  fulfills ``g`` (the ``GI-G-idx``),

after which the paper's scores become sparse linear algebra.  With ``h``
the 0/1 activity vector of a user:

- per-implementation overlaps: ``o = M h``  (``|A_p ∩ H|`` for every p);
- **Breadth** (Eq. 5-6, intersection reading): ``s = Mᵀ o`` — every
  candidate accumulates the overlap of every implementation containing it;
- **Focus completeness/closeness**: ``o / |A_p|`` and ``1 / (|A_p| − o)``
  elementwise over implementations with ``0 < o`` and ``o < |A_p|``;
- **Best Match** profile: ``Gᵀ o`` restricted to the goal space; candidate
  vectors are rows of the precomputed ``C = Mᵀ G`` (action × goal counts).

Results are bit-identical to the reference strategies (asserted in the test
suite), including the deterministic tie-breaking.
"""

from __future__ import annotations

import math
from collections.abc import Callable

import numpy as np
from scipy import sparse

from repro.core.entities import ActionLabel, RecommendationList, ScoredAction
from repro.core.model import AssociationGoalModel
from repro.exceptions import RecommendationError
from repro.utils.validation import require_in

_STRATEGIES = ("breadth", "focus_cmp", "focus_cl", "best_match")


class BatchRecommender:
    """Bulk scorer over a frozen goal model.

    Build once per model; every ``recommend_*`` call is a few sparse
    matrix-vector products.  Use the reference
    :class:`~repro.core.recommender.GoalRecommender` for one-off requests
    and explanations; use this for throughput.
    """

    def __init__(self, model: AssociationGoalModel) -> None:
        self.model = model
        rows: list[int] = []
        cols: list[int] = []
        for pid in range(model.num_implementations):
            for aid in model.implementation_actions(pid):
                rows.append(pid)
                cols.append(aid)
        data = np.ones(len(rows), dtype=np.float64)
        self._m = sparse.csr_matrix(
            (data, (rows, cols)),
            shape=(model.num_implementations, model.num_actions),
        )
        self._mt = self._m.T.tocsr()
        goal_rows = np.arange(model.num_implementations)
        goal_cols = np.fromiter(
            (
                model.implementation_goal(pid)
                for pid in range(model.num_implementations)
            ),
            dtype=np.int64,
            count=model.num_implementations,
        )
        self._g = sparse.csr_matrix(
            (
                np.ones(model.num_implementations),
                (goal_rows, goal_cols),
            ),
            shape=(model.num_implementations, model.num_goals),
        )
        # C[a, g]: number of implementations of goal g containing action a
        # (Equation 8's counts for every action at once).
        self._c = (self._mt @ self._g).tocsr()
        self._impl_lengths = np.asarray(self._m.sum(axis=1)).ravel()

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    def _activity_vector(self, activity: frozenset[int]) -> np.ndarray:
        h = np.zeros(self.model.num_actions)
        for aid in activity:
            h[aid] = 1.0
        return h

    def _overlaps(self, h: np.ndarray) -> np.ndarray:
        """``|A_p ∩ H|`` for every implementation."""
        return self._m @ h

    @staticmethod
    def _top_k(scores: np.ndarray, mask: np.ndarray, k: int) -> list[tuple[int, float]]:
        """Top-``k`` (id, score) with the library's tie-break (id asc)."""
        candidates = np.flatnonzero(mask)
        if candidates.size == 0:
            return []
        # Sort by (-score, id): lexsort's last key is primary.
        order = np.lexsort((candidates, -scores[candidates]))
        picked = candidates[order[:k]]
        return [(int(aid), float(scores[aid])) for aid in picked]

    def _candidate_mask(self, h: np.ndarray, overlaps: np.ndarray) -> np.ndarray:
        """Boolean mask of ``AS(H) − H`` derived from the overlaps."""
        touched = overlaps > 0
        reach = self._mt @ touched.astype(np.float64)
        return (reach > 0) & (h == 0)

    # ------------------------------------------------------------------
    # Strategy scorers (id level)
    # ------------------------------------------------------------------

    def breadth_scores(self, activity: frozenset[int]) -> np.ndarray:
        """Breadth intersection scores for every action (0 for non-candidates)."""
        h = self._activity_vector(activity)
        return self._mt @ self._overlaps(h)

    def focus_rank(
        self, activity: frozenset[int], k: int, measure: str
    ) -> list[tuple[int, float]]:
        """Focus ranking via vectorized implementation scoring.

        Implementation scores are computed in bulk; the list-filling walk
        over ranked implementations matches the reference algorithm.
        """
        h = self._activity_vector(activity)
        overlaps = self._overlaps(h)
        lengths = self._impl_lengths
        recommendable = (overlaps > 0) & (overlaps < lengths)
        pids = np.flatnonzero(recommendable)
        if pids.size == 0:
            return []
        if measure == "completeness":
            scores = overlaps[pids] / lengths[pids]
        else:
            scores = 1.0 / (lengths[pids] - overlaps[pids])
        order = np.lexsort((pids, -scores))
        result: list[tuple[int, float]] = []
        seen: set[int] = set()
        for index in order:
            pid = int(pids[index])
            score = float(scores[index])
            remaining = sorted(
                self.model.implementation_actions(pid) - activity
            )
            for aid in remaining:
                if aid in seen:
                    continue
                seen.add(aid)
                result.append((aid, score))
                if len(result) == k:
                    return result
        return result

    def best_match_distances(self, activity: frozenset[int]) -> dict[int, float]:
        """Cosine distances of every candidate to the goal-space profile."""
        h = self._activity_vector(activity)
        overlaps = self._overlaps(h)
        mask = self._candidate_mask(h, overlaps)
        touched_goals = np.flatnonzero(
            self._g.T @ (overlaps > 0).astype(np.float64)
        )
        if touched_goals.size == 0:
            return {}
        # Profile over the goal axis: Gᵀ (M h) restricted to GS(H).
        profile = (self._g.T @ overlaps)[touched_goals]
        profile_norm_sq = float(profile @ profile)
        candidate_ids = np.flatnonzero(mask)
        vectors = self._c[candidate_ids][:, touched_goals].toarray()
        dots = vectors @ profile
        norms_sq = (vectors * vectors).sum(axis=1)
        distances: dict[int, float] = {}
        for row, aid in enumerate(candidate_ids):
            norm_sq = float(norms_sq[row])
            if norm_sq == 0.0 or profile_norm_sq == 0.0:
                distances[int(aid)] = 1.0
            else:
                # One sqrt of the product, exactly like the reference
                # ``cosine_distance`` — ``sqrt(a) * sqrt(b)`` differs from
                # ``sqrt(a * b)`` by 1 ulp on some inputs, which is enough
                # to split a tie group and reorder the ranking relative to
                # the scalar strategy (all accumulations here are
                # integer-valued, hence exact in float64).
                distances[int(aid)] = 1.0 - float(dots[row]) / math.sqrt(
                    norm_sq * profile_norm_sq
                )
        return distances

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def rank(
        self, activity: frozenset[int], k: int, strategy: str
    ) -> list[tuple[int, float]]:
        """Top-``k`` ``(action_id, score)`` under ``strategy``."""
        require_in(strategy, _STRATEGIES, "strategy")
        if strategy == "breadth":
            h = self._activity_vector(activity)
            overlaps = self._overlaps(h)
            scores = self._mt @ overlaps
            mask = self._candidate_mask(h, overlaps) & (scores > 0)
            return self._top_k(scores, mask, k)
        if strategy in ("focus_cmp", "focus_cl"):
            measure = "completeness" if strategy == "focus_cmp" else "closeness"
            return self.focus_rank(activity, k, measure)
        distances = self.best_match_distances(activity)
        scored = sorted(
            ((aid, -distance) for aid, distance in distances.items()),
            key=lambda item: (-item[1], item[0]),
        )
        return scored[:k]

    def recommend(
        self,
        activity: frozenset[ActionLabel] | set[ActionLabel],
        k: int = 10,
        strategy: str = "breadth",
    ) -> RecommendationList:
        """Label-level single-request entry point."""
        if k <= 0:
            raise RecommendationError(f"k must be positive, got {k}")
        encoded = self.model.encode_activity(activity)
        ranked = self.rank(encoded, k, strategy)
        return RecommendationList(
            strategy=strategy,
            items=tuple(
                ScoredAction(self.model.action_label(aid), score)
                for aid, score in ranked
            ),
            activity=frozenset(activity),
        )

    def rank_many_breadth(
        self, encoded: list[frozenset[int]], k: int
    ) -> list[list[tuple[int, float]]]:
        """Breadth rankings for a block of activities via one spmm pipeline.

        Stacks the activities into a sparse ``H`` (activities × actions) and
        computes every overlap, score and candidate mask with three sparse
        matrix-matrix products instead of per-activity matvecs.  All values
        are small integer counts (exact in float64), so the results are
        bit-identical to :meth:`rank` row by row.
        """
        n = len(encoded)
        if n == 0:
            return []
        rows: list[int] = []
        cols: list[int] = []
        for i, activity in enumerate(encoded):
            for aid in activity:
                rows.append(i)
                cols.append(aid)
        h = sparse.csr_matrix(
            (np.ones(len(rows)), (rows, cols)),
            shape=(n, self.model.num_actions),
        )
        overlaps = h @ self._mt  # (n × implementations): |A_p ∩ H_i|
        scores = (overlaps @ self._m).toarray()
        touched = overlaps.copy()
        touched.data = (touched.data > 0).astype(np.float64)
        reach = (touched @ self._m).toarray()
        h_dense = h.toarray()
        mask = (reach > 0) & (h_dense == 0) & (scores > 0)
        return [
            self._top_k(scores[i], mask[i], k) for i in range(n)
        ]

    def recommend_many(
        self,
        activities: list[frozenset[ActionLabel]],
        k: int = 10,
        strategy: str = "breadth",
        chunk_size: int = 1024,
        checkpoint: Callable[[int], None] | None = None,
    ) -> list[RecommendationList]:
        """Bulk entry point: one list per activity, in input order.

        ``breadth`` requests are scored in chunks of ``chunk_size``
        activities through :meth:`rank_many_breadth` (dense intermediates
        stay bounded at ``chunk_size × num_actions``); the other strategies
        reuse the per-activity vectorized path, which already amortizes the
        CSR build across the batch.

        ``checkpoint``, when given, is invoked with the index of the first
        activity of each chunk before the chunk is scored.  The serving
        layer uses it to abandon a batch whose deadline has expired (the
        callback raises) instead of scoring the remaining chunks; any
        exception it raises propagates unchanged.
        """
        if k <= 0:
            raise RecommendationError(f"k must be positive, got {k}")
        require_in(strategy, _STRATEGIES, "strategy")
        if chunk_size <= 0:
            raise RecommendationError(
                f"chunk_size must be positive, got {chunk_size}"
            )
        activities = list(activities)
        if strategy != "breadth":
            results_scalar: list[RecommendationList] = []
            for i, activity in enumerate(activities):
                if checkpoint is not None and i % chunk_size == 0:
                    checkpoint(i)
                results_scalar.append(
                    self.recommend(activity, k=k, strategy=strategy)
                )
            return results_scalar
        encoded = [
            self.model.encode_activity(activity) for activity in activities
        ]
        results: list[RecommendationList] = []
        for start in range(0, len(activities), chunk_size):
            if checkpoint is not None:
                checkpoint(start)
            block = encoded[start:start + chunk_size]
            for offset, ranked in enumerate(self.rank_many_breadth(block, k)):
                results.append(
                    RecommendationList(
                        strategy=strategy,
                        items=tuple(
                            ScoredAction(self.model.action_label(aid), score)
                            for aid, score in ranked
                        ),
                        activity=frozenset(activities[start + offset]),
                    )
                )
        return results
