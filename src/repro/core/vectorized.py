"""Vectorized scoring over the goal model (NumPy/SciPy CSR).

The reference strategies in :mod:`repro.core.strategies` are pure-Python and
score one activity at a time — clear, and exactly what the paper's
pseudocode describes.  Serving 20K carts (the paper's workload) benefits
from a bulk path, and a single ``/recommend`` at paper-scale connectivity
benefits from not walking Python sets at all.  This module lowers the model
into two sparse matrices

- ``M`` (implementations × actions): ``M[p, a] = 1`` iff ``a ∈ A_p``
  (the ``GI-A-idx`` as a matrix; its transpose is the ``A-GI-idx``),
- ``G`` (implementations × goals): ``G[p, g] = 1`` iff implementation ``p``
  fulfills ``g`` (the ``GI-G-idx``),

after which the paper's scores become sparse linear algebra.  With ``h``
the 0/1 activity vector of a user:

- per-implementation overlaps: ``o = M h``  (``|A_p ∩ H|`` for every p);
- **Breadth** (Eq. 5-6, intersection reading): ``s = Mᵀ o`` — every
  candidate accumulates the overlap of every implementation containing it.
  Expanding, ``s = (Mᵀ M) h``: the *action co-occurrence matrix*
  ``S = Mᵀ M`` turns one request into a sum of ``|H|`` precomputed rows;
- **Focus completeness/closeness**: ``o / |A_p|`` and ``1 / (|A_p| − o)``
  elementwise over implementations with ``0 < o`` and ``o < |A_p|``;
- **Best Match** profile: ``Gᵀ o`` restricted to the goal space; candidate
  vectors are rows of the precomputed ``C = Mᵀ G`` (action × goal counts).

The single-request :meth:`rank` never materializes full matrix-vector
products: it gathers only the CSR rows the activity touches (posting
lists), so per-request cost tracks ``|IS(H)|`` — the same asymptotics as
the reference strategies, minus the Python interpreter.  Top-``k``
selection is partial (:mod:`repro.core.topk`), not a full sort.

Results are bit-identical to the reference strategies (asserted in the test
suite), including the deterministic tie-breaking: every accumulated value is
an integer count (exact in float64 regardless of summation order), and the
single ``sqrt`` in the cosine distance matches the reference formula.
"""

from __future__ import annotations

import threading
from collections.abc import Callable

import numpy as np
from scipy import sparse

from repro import obs
from repro.core.entities import ActionLabel, RecommendationList, ScoredAction
from repro.core.model import AssociationGoalModel
from repro.core.strategies.base import RankingStrategy, require_request_count
from repro.core.topk import top_k_positions
from repro.utils.validation import require_in

_STRATEGIES = ("breadth", "focus_cmp", "focus_cl", "best_match")

#: Above this many candidates, ranked selection goes through the
#: ``argpartition`` path of :mod:`repro.core.topk`; below it a single
#: stable ``argsort`` over the (id-ascending) candidates is cheaper than
#: the partition's extra array passes.
_PARTITION_CUTOVER = 4096

#: Lock discipline, machine-checked by ``repro-lint`` (rule RL001).  All
#: other ``BatchRecommender`` state is bound in ``__init__`` and read-only.
_GUARDED_BY = {
    "BatchRecommender._cooc": "_cooc_lock",
}


def _gather_positions(
    indptr: np.ndarray, rows: np.ndarray, cap: int | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Flat positions of the CSR entries of ``rows`` (optionally capped).

    Returns ``(positions, lengths)`` where ``positions`` indexes the CSR
    ``indices``/``data`` arrays for every entry of every requested row,
    concatenated in row order, and ``lengths`` is the per-row entry count.
    ``cap`` truncates each row to its first ``cap`` entries — with rows
    pre-sorted by descending weight this is the budgeted posting-list
    traversal of the approximate tier.  Pure index arithmetic; no Python
    loop and no scipy fancy indexing (which would copy through an extractor
    matrix).
    """
    starts = indptr[rows]
    lengths = indptr[rows + 1] - starts
    if cap is not None:
        lengths = np.minimum(lengths, cap)
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64), lengths
    offsets = np.zeros(rows.size, dtype=np.int64)
    np.cumsum(lengths[:-1], out=offsets[1:])
    positions = (
        np.arange(total, dtype=np.int64)
        - np.repeat(offsets, lengths)
        + np.repeat(starts, lengths)
    )
    return positions, lengths


class BatchRecommender:
    """Vectorized scorer over a frozen goal model.

    Build once per model generation; single requests are a few gathered
    CSR rows, bulk requests a few sparse matrix products.  The serving
    layer keys one instance per generation (``ModelSnapshot.batch`` /
    ``CachedModelView.csr_engine``) and routes both the batch endpoint and
    single-activity ``rank()`` through it.
    """

    def __init__(self, model: AssociationGoalModel) -> None:
        self.model = model
        rows: list[int] = []
        cols: list[int] = []
        for pid in range(model.num_implementations):
            for aid in model.implementation_actions(pid):
                rows.append(pid)
                cols.append(aid)
        data = np.ones(len(rows), dtype=np.float64)
        self._m = sparse.csr_matrix(
            (data, (rows, cols)),
            shape=(model.num_implementations, model.num_actions),
        )
        self._mt = self._m.T.tocsr()
        goal_rows = np.arange(model.num_implementations)
        goal_cols = np.fromiter(
            (
                model.implementation_goal(pid)
                for pid in range(model.num_implementations)
            ),
            dtype=np.int64,
            count=model.num_implementations,
        )
        self._g = sparse.csr_matrix(
            (
                np.ones(model.num_implementations),
                (goal_rows, goal_cols),
            ),
            shape=(model.num_implementations, model.num_goals),
        )
        # C[a, g]: number of implementations of goal g containing action a
        # (Equation 8's counts for every action at once).
        self._c = (self._mt @ self._g).tocsr()
        self._impl_lengths = np.asarray(self._m.sum(axis=1)).ravel()
        # int64 copies of the CSR structure for gather arithmetic (scipy
        # defaults to int32, which _gather_positions' cumulative offsets
        # would overflow on very large models).
        self._m_indptr = self._m.indptr.astype(np.int64)
        self._m_indices = self._m.indices.astype(np.int64)
        self._post_indptr = self._mt.indptr.astype(np.int64)
        self._post_indices = self._mt.indices.astype(np.int64)
        self._c_indptr = self._c.indptr.astype(np.int64)
        self._c_indices = self._c.indices.astype(np.int64)
        self._goal_of_impl = goal_cols
        # Per-action posting-list views (rows of the A-GI index) and the
        # per-implementation action lists pre-sorted by id: the
        # single-request rankers concatenate/walk these directly, which
        # replaces the index arithmetic of ``_gather_positions`` with one
        # ``np.concatenate`` of a handful of views per request.
        self._post_rows: list[np.ndarray] = np.split(
            self._post_indices, self._post_indptr[1:-1]
        )
        self._impl_sorted: list[list[int]] = [
            sorted(model.implementation_actions(pid))
            for pid in range(model.num_implementations)
        ]
        self._labels = model.action_labels()
        # Action co-occurrence index S = MᵀM, built on the first breadth
        # rank (exact or pruned) — see _cooccurrence().
        self._cooc: tuple[list[np.ndarray], list[np.ndarray]] | None = None
        self._cooc_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Array export / zero-copy reconstruction (multi-worker serving)
    # ------------------------------------------------------------------

    def export_arrays(self) -> dict[str, np.ndarray]:
        """Every derived array, keyed for shared-memory publication.

        The multi-worker parent builds the engine once, exports this dict
        into a :class:`~repro.serving.shared.SharedModelArena`, and each
        forked worker rebuilds an identical engine with
        :meth:`from_arrays` over zero-copy views of the same physical
        pages.  The co-occurrence index is warmed first so children never
        build (and privately allocate) it themselves.
        """
        col_rows, val_rows = self._cooccurrence()
        cooc_indptr = np.zeros(len(col_rows) + 1, dtype=np.int64)
        np.cumsum([row.size for row in col_rows], out=cooc_indptr[1:])
        impl_sorted_indptr = np.zeros(len(self._impl_sorted) + 1, dtype=np.int64)
        np.cumsum(
            [len(row) for row in self._impl_sorted], out=impl_sorted_indptr[1:]
        )
        impl_sorted_flat = np.fromiter(
            (aid for row in self._impl_sorted for aid in row),
            dtype=np.int64,
            count=int(impl_sorted_indptr[-1]),
        )
        return {
            "m_data": self._m.data,
            "m_indices": self._m.indices,
            "m_indptr": self._m.indptr,
            "mt_data": self._mt.data,
            "mt_indices": self._mt.indices,
            "mt_indptr": self._mt.indptr,
            "g_data": self._g.data,
            "g_indices": self._g.indices,
            "g_indptr": self._g.indptr,
            "c_data": self._c.data,
            "c_indices": self._c.indices,
            "c_indptr": self._c.indptr,
            "impl_lengths": self._impl_lengths,
            "m_indptr64": self._m_indptr,
            "m_indices64": self._m_indices,
            "post_indptr64": self._post_indptr,
            "post_indices64": self._post_indices,
            "c_indptr64": self._c_indptr,
            "c_indices64": self._c_indices,
            "goal_of_impl": self._goal_of_impl,
            "impl_sorted_flat": impl_sorted_flat,
            "impl_sorted_indptr": impl_sorted_indptr,
            "cooc_cols": np.concatenate(col_rows) if col_rows else np.empty(0, dtype=np.int64),
            "cooc_vals": np.concatenate(val_rows) if val_rows else np.empty(0),
            "cooc_indptr": cooc_indptr,
        }

    @classmethod
    def from_arrays(
        cls, model: AssociationGoalModel, arrays: dict[str, np.ndarray]
    ) -> "BatchRecommender":
        """Rebuild an engine from an :meth:`export_arrays` snapshot.

        ``arrays`` values may be views over shared memory; every CSR
        matrix is wrapped with ``copy=False`` so the rebuilt engine reads
        the exporter's pages directly.  Results are bit-identical to an
        engine built from ``model`` (asserted in the test suite) because
        *every* derived structure — including the frequency-ordered
        co-occurrence index with its tie-breaking order — is taken from
        the snapshot, never recomputed.
        """
        self = cls.__new__(cls)
        self.model = model
        n_impl = model.num_implementations
        n_actions = model.num_actions
        n_goals = model.num_goals
        self._m = sparse.csr_matrix(
            (arrays["m_data"], arrays["m_indices"], arrays["m_indptr"]),
            shape=(n_impl, n_actions),
            copy=False,
        )
        self._mt = sparse.csr_matrix(
            (arrays["mt_data"], arrays["mt_indices"], arrays["mt_indptr"]),
            shape=(n_actions, n_impl),
            copy=False,
        )
        self._g = sparse.csr_matrix(
            (arrays["g_data"], arrays["g_indices"], arrays["g_indptr"]),
            shape=(n_impl, n_goals),
            copy=False,
        )
        self._c = sparse.csr_matrix(
            (arrays["c_data"], arrays["c_indices"], arrays["c_indptr"]),
            shape=(n_actions, n_goals),
            copy=False,
        )
        self._impl_lengths = arrays["impl_lengths"]
        self._m_indptr = arrays["m_indptr64"]
        self._m_indices = arrays["m_indices64"]
        self._post_indptr = arrays["post_indptr64"]
        self._post_indices = arrays["post_indices64"]
        self._c_indptr = arrays["c_indptr64"]
        self._c_indices = arrays["c_indices64"]
        self._goal_of_impl = arrays["goal_of_impl"]
        self._post_rows = np.split(self._post_indices, self._post_indptr[1:-1])
        self._impl_sorted = [
            row.tolist()
            for row in np.split(
                arrays["impl_sorted_flat"], arrays["impl_sorted_indptr"][1:-1]
            )
        ]
        self._labels = model.action_labels()
        boundaries = arrays["cooc_indptr"][1:-1]
        self._cooc_lock = threading.Lock()
        with self._cooc_lock:  # single-threaded here; satisfies RL001
            self._cooc = (
                np.split(arrays["cooc_cols"], boundaries),
                np.split(arrays["cooc_vals"], boundaries),
            )
        return self

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    def _activity_array(self, activity: frozenset[int]) -> np.ndarray:
        return np.fromiter(activity, dtype=np.int64, count=len(activity))

    def _activity_vector(self, activity: frozenset[int]) -> np.ndarray:
        h = np.zeros(self.model.num_actions)
        for aid in activity:
            h[aid] = 1.0
        return h

    def _overlaps(self, h: np.ndarray) -> np.ndarray:
        """``|A_p ∩ H|`` for every implementation."""
        return self._m @ h

    def _overlap_counts(
        self, activity: frozenset[int]
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(activity_ids, touched_pids, overlaps)`` via posting lists.

        Gathers the ``A-GI`` posting list of every activity action and
        counts multiplicities: an implementation appearing ``c`` times
        shares exactly ``c`` actions with ``H``.  Cost is proportional to
        the posting mass of the activity, not to the model size.
        """
        act = self._activity_array(activity)
        if not activity:
            return act, np.empty(0, dtype=np.int64), np.empty(0)
        touched = np.concatenate([self._post_rows[a] for a in activity])
        if touched.size == 0:
            return act, np.empty(0, dtype=np.int64), np.empty(0)
        pids, counts = np.unique(touched, return_counts=True)
        return act, pids, counts.astype(np.float64)

    def _cooccurrence(self) -> tuple[list[np.ndarray], list[np.ndarray]]:
        """The frequency-ordered co-occurrence index, built lazily.

        ``S = MᵀM`` with every row sorted by ``(-count, action_id)``:
        ``S[b, c]`` counts the implementations containing both ``b`` and
        ``c``, so summing the rows of the activity's actions *is* the
        Breadth ranking, and truncating each row to its heaviest entries is
        the approximate tier's budgeted traversal.  The index is kept as
        per-row ``(columns, counts)`` views so a request is one
        ``np.concatenate`` of ``|H|`` views.  Building S costs one spmm
        (milliseconds at paper scale); the lock keeps concurrent first
        requests from racing the build.
        """
        with self._cooc_lock:
            cooc = self._cooc
            if cooc is None:
                s = (self._mt @ self._m).tocsr()
                indptr = s.indptr.astype(np.int64)
                row_of = np.repeat(
                    np.arange(self.model.num_actions), np.diff(indptr)
                )
                order = np.lexsort((s.indices, -s.data, row_of))
                cols_sorted = s.indices.astype(np.int64)[order]
                vals_sorted = s.data[order]
                boundaries = indptr[1:-1]
                cooc = (
                    np.split(cols_sorted, boundaries),
                    np.split(vals_sorted, boundaries),
                )
                self._cooc = cooc
            return cooc

    @staticmethod
    def _ranked_pairs(
        ids: np.ndarray, scores: np.ndarray, k: int
    ) -> list[tuple[int, float]]:
        """Top-``k`` ``(id, score)`` pairs; ``ids`` must be ascending.

        Every engine call site passes ids straight out of ``np.unique`` /
        ``np.flatnonzero``, so within a tie group the input order already
        *is* the contract's ascending-id order — a single stable argsort on
        the negated scores reproduces the full ``(-score, id)`` lexsort.
        Large candidate sets go through the partial-selection path instead.
        """
        if ids.size > _PARTITION_CUTOVER:
            ranked = top_k_positions(ids, scores, k)
        else:
            ranked = np.argsort(-scores, kind="stable")[:k]
        return list(zip(ids[ranked].tolist(), scores[ranked].tolist()))

    @staticmethod
    def _top_k(scores: np.ndarray, mask: np.ndarray, k: int) -> list[tuple[int, float]]:
        """Top-``k`` (id, score) with the library's tie-break (id asc)."""
        candidates = np.flatnonzero(mask)
        if candidates.size == 0:
            return []
        return BatchRecommender._ranked_pairs(
            candidates, scores[candidates], k
        )

    def _candidate_mask(self, h: np.ndarray, overlaps: np.ndarray) -> np.ndarray:
        """Boolean mask of ``AS(H) − H`` derived from the overlaps."""
        touched = overlaps > 0
        reach = self._mt @ touched.astype(np.float64)
        return (reach > 0) & (h == 0)

    # ------------------------------------------------------------------
    # Strategy scorers (id level)
    # ------------------------------------------------------------------

    def breadth_scores(self, activity: frozenset[int]) -> np.ndarray:
        """Breadth intersection scores for every action (0 for non-candidates)."""
        h = self._activity_vector(activity)
        return self._mt @ self._overlaps(h)

    def _breadth_rank(
        self, activity: frozenset[int], k: int, budget: int | None = None
    ) -> list[tuple[int, float]]:
        """Breadth top-``k`` as a sum of co-occurrence rows.

        ``budget`` caps the traversal of each action's (frequency-ordered)
        co-occurrence posting list — ``None`` walks them fully and is
        exact.  A capped request whose rows all fit the budget is exact
        too, which is what bounds the approximate tier's recall loss to
        high-connectivity actions.
        """
        if not activity:
            return []
        col_rows, val_rows = self._cooccurrence()
        if budget is None:
            col_parts = [col_rows[a] for a in activity]
            val_parts = [val_rows[a] for a in activity]
        else:
            col_parts = [col_rows[a][:budget] for a in activity]
            val_parts = [val_rows[a][:budget] for a in activity]
        sub_cols = np.concatenate(col_parts)
        if sub_cols.size == 0:
            return []
        scores = np.bincount(
            sub_cols,
            weights=np.concatenate(val_parts),
            minlength=self.model.num_actions,
        )
        # Candidates are AS(H) − H: every reached action has a positive
        # co-occurrence count, so zeroing H and keeping the positive
        # touched columns is the candidate mask.
        scores[list(activity)] = 0.0
        candidates = np.unique(sub_cols)
        cand_scores = scores[candidates]
        keep = cand_scores > 0.0
        candidates = candidates[keep]
        if candidates.size == 0:
            return []
        return self._ranked_pairs(candidates, cand_scores[keep], k)

    def pruned_breadth_rank(
        self, activity: frozenset[int], k: int, budget: int
    ) -> list[tuple[int, float]]:
        """Breadth over budget-capped, frequency-ordered posting lists.

        The engine half of
        :class:`~repro.core.approximate.PrunedBreadthStrategy`: identical
        to :meth:`rank` with ``strategy="breadth"`` except that each
        activity action contributes at most its ``budget`` heaviest
        co-occurrence entries (ties on the count break by ascending action
        id, matching the scalar fallback).
        """
        require_request_count(budget, "budget")
        return self._breadth_rank(activity, k, budget=budget)

    def focus_rank(
        self, activity: frozenset[int], k: int, measure: str
    ) -> list[tuple[int, float]]:
        """Focus ranking via vectorized implementation scoring.

        Implementation scores are computed over the gathered posting lists
        (cost tracks ``|IS(H)|``); the list-filling walk over ranked
        implementations matches the reference algorithm.
        """
        if not activity:
            return []
        touched = np.concatenate([self._post_rows[a] for a in activity])
        size = touched.size
        if size == 0:
            return []
        # Inlined ``np.unique(touched, return_counts=True)``: the
        # concatenation is a fresh array, so the sort runs in place, and
        # run boundaries give both the unique pids and their overlap
        # counts with fewer temporary passes.
        touched.sort()
        boundary = np.empty(size, dtype=bool)
        boundary[0] = True
        np.not_equal(touched[1:], touched[:-1], out=boundary[1:])
        starts = np.flatnonzero(boundary)
        pids = touched[starts]
        counts = np.diff(starts, append=size)
        lengths = self._impl_lengths[pids]
        # Every touched implementation has overlap >= 1; the ones with
        # *full* overlap (not recommendable) score exactly 1.0 under
        # completeness and +inf under closeness — both sort to the front
        # of the walk, where a sentinel comparison skips them without
        # materializing the filtered arrays.
        if measure == "completeness":
            scores = counts / lengths
            full = 1.0
        else:
            # Clamping the zero denominators (full overlap) to 0.5 maps
            # the sentinels to 2.0 — still strictly above every real
            # closeness score (<= 1.0) so they keep sorting to the front,
            # without the per-call ``np.errstate`` context that silencing
            # a division warning would cost.  Real scores are untouched.
            scores = 1.0 / np.maximum(lengths - counts, 0.5)
            full = 2.0
        # ``pids`` is ascending, so a stable sort on the negated scores
        # equals the reference's ``(-score, pid)`` lexsort.
        order = np.argsort(-scores, kind="stable")
        # The walk usually consumes a couple dozen implementations before
        # filling ``k``, so it materializes the ranked prefix chunk by
        # chunk — pure-Python iteration over small lists beats per-element
        # NumPy scalar access on the actual consumption pattern.
        impl_sorted = self._impl_sorted
        result: list[tuple[int, float]] = []
        seen: set[int] = set()
        chunk = max(2 * k, 16)
        for start in range(0, order.size, chunk):
            window = order[start:start + chunk]
            for pid, score in zip(
                pids[window].tolist(), scores[window].tolist()
            ):
                if score >= full:
                    continue
                for aid in impl_sorted[pid]:
                    if aid in activity or aid in seen:
                        continue
                    seen.add(aid)
                    result.append((aid, score))
                    if len(result) == k:
                        return result
        return result

    def _best_match_scores(
        self, activity: frozenset[int]
    ) -> tuple[np.ndarray, np.ndarray]:
        """``(candidate_ids, -distance)`` arrays for the Best Match ranking.

        Works entirely on gathered CSR rows: the goal profile is a bincount
        over the touched implementations' goals, and each candidate's dot
        product / squared norm over the goal space comes from its row of
        ``C`` — the profile vector is zero outside ``GS(H)``, which
        restricts the dot product exactly like the reference's axis
        projection.  All accumulations are integer-valued (exact in
        float64) and the distance applies the reference's single
        ``sqrt(norm_u * norm_v)``, so scores are bit-identical to
        :class:`~repro.core.strategies.best_match.BestMatchStrategy`.
        """
        act, pids, overlaps = self._overlap_counts(activity)
        empty = np.empty(0, dtype=np.int64), np.empty(0)
        if pids.size == 0:
            return empty
        positions, _ = _gather_positions(self._m_indptr, pids)
        reach = np.unique(self._m_indices[positions])
        candidates = reach[~np.isin(reach, act)]
        if candidates.size == 0:
            return empty
        touched_goals = self._goal_of_impl[pids]
        profile = np.bincount(
            touched_goals, weights=overlaps, minlength=self.model.num_goals
        )
        profile_norm_sq = float(profile @ profile)
        gs_indicator = np.zeros(self.model.num_goals)
        gs_indicator[touched_goals] = 1.0
        c_positions, c_lengths = _gather_positions(self._c_indptr, candidates)
        c_goals = self._c_indices[c_positions]
        c_counts = self._c.data[c_positions]
        row_ids = np.repeat(np.arange(candidates.size), c_lengths)
        dots = np.bincount(
            row_ids,
            weights=c_counts * profile[c_goals],
            minlength=candidates.size,
        )
        norms_sq = np.bincount(
            row_ids,
            weights=(c_counts * c_counts) * gs_indicator[c_goals],
            minlength=candidates.size,
        )
        with np.errstate(divide="ignore", invalid="ignore"):
            # One sqrt of the product, exactly like the reference
            # ``cosine_distance`` — ``sqrt(a) * sqrt(b)`` differs from
            # ``sqrt(a * b)`` by 1 ulp on some inputs, which is enough to
            # split a tie group relative to the scalar strategy.
            scores = -(1.0 - dots / np.sqrt(norms_sq * profile_norm_sq))
        degenerate = (norms_sq == 0.0) | (profile_norm_sq == 0.0)
        if degenerate.any():
            scores[degenerate] = -1.0
        return candidates, scores

    def best_match_distances(self, activity: frozenset[int]) -> dict[int, float]:
        """Cosine distances of every candidate to the goal-space profile."""
        candidates, scores = self._best_match_scores(activity)
        return {
            int(aid): -float(score) for aid, score in zip(candidates, scores)
        }

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def rank(
        self, activity: frozenset[int], k: int, strategy: str
    ) -> list[tuple[int, float]]:
        """Top-``k`` ``(action_id, score)`` under ``strategy``."""
        require_in(strategy, _STRATEGIES, "strategy")
        if strategy == "breadth":
            return self._breadth_rank(activity, k)
        if strategy in ("focus_cmp", "focus_cl"):
            measure = "completeness" if strategy == "focus_cmp" else "closeness"
            return self.focus_rank(activity, k, measure)
        candidates, scores = self._best_match_scores(activity)
        if candidates.size == 0:
            return []
        return self._ranked_pairs(candidates, scores, k)

    def recommend(
        self,
        activity: frozenset[ActionLabel] | set[ActionLabel],
        k: int = 10,
        strategy: str = "breadth",
    ) -> RecommendationList:
        """Label-level single-request entry point."""
        require_request_count(k, "k")
        encoded = self.model.encode_activity(activity)
        ranked = self.rank(encoded, k, strategy)
        labels = self._labels
        return RecommendationList(
            strategy=strategy,
            items=tuple(
                ScoredAction(labels[aid], score) for aid, score in ranked
            ),
            # Decode the *encoded* activity: labels the model has never
            # seen carry no goal evidence and are dropped, exactly like
            # RankingStrategy.recommend — the parity suite compares the
            # activity field across both paths.
            activity=frozenset(labels[aid] for aid in encoded),
        )

    def rank_many_breadth(
        self, encoded: list[frozenset[int]], k: int
    ) -> list[list[tuple[int, float]]]:
        """Breadth rankings for a block of activities via one spmm pipeline.

        Stacks the activities into a sparse ``H`` (activities × actions) and
        computes every overlap, score and candidate mask with three sparse
        matrix-matrix products instead of per-activity matvecs.  All values
        are small integer counts (exact in float64), so the results are
        bit-identical to :meth:`rank` row by row.
        """
        n = len(encoded)
        if n == 0:
            return []
        rows: list[int] = []
        cols: list[int] = []
        for i, activity in enumerate(encoded):
            for aid in activity:
                rows.append(i)
                cols.append(aid)
        h = sparse.csr_matrix(
            (np.ones(len(rows)), (rows, cols)),
            shape=(n, self.model.num_actions),
        )
        overlaps = h @ self._mt  # (n × implementations): |A_p ∩ H_i|
        scores = (overlaps @ self._m).toarray()
        touched = overlaps.copy()
        touched.data = (touched.data > 0).astype(np.float64)
        reach = (touched @ self._m).toarray()
        h_dense = h.toarray()
        mask = (reach > 0) & (h_dense == 0) & (scores > 0)
        return [
            self._top_k(scores[i], mask[i], k) for i in range(n)
        ]

    def recommend_many(
        self,
        activities: list[frozenset[ActionLabel]],
        k: int = 10,
        strategy: str = "breadth",
        chunk_size: int = 1024,
        checkpoint: Callable[[int], None] | None = None,
    ) -> list[RecommendationList]:
        """Bulk entry point: one list per activity, in input order.

        ``breadth`` requests are scored in chunks of ``chunk_size``
        activities through :meth:`rank_many_breadth` (dense intermediates
        stay bounded at ``chunk_size × num_actions``); the other strategies
        reuse the per-activity vectorized path, which already amortizes the
        CSR build across the batch.

        ``checkpoint``, when given, is invoked with the index of the first
        activity of each chunk before the chunk is scored.  The serving
        layer uses it to abandon a batch whose deadline has expired (the
        callback raises) instead of scoring the remaining chunks; any
        exception it raises propagates unchanged.
        """
        require_request_count(k, "k")
        require_in(strategy, _STRATEGIES, "strategy")
        require_request_count(chunk_size, "chunk_size")
        activities = list(activities)
        if strategy != "breadth":
            results_scalar: list[RecommendationList] = []
            for i, activity in enumerate(activities):
                if checkpoint is not None and i % chunk_size == 0:
                    checkpoint(i)
                results_scalar.append(
                    self.recommend(activity, k=k, strategy=strategy)
                )
            return results_scalar
        encoded = [
            self.model.encode_activity(activity) for activity in activities
        ]
        results: list[RecommendationList] = []
        for start in range(0, len(activities), chunk_size):
            if checkpoint is not None:
                checkpoint(start)
            block = encoded[start:start + chunk_size]
            labels = self._labels
            for offset, ranked in enumerate(self.rank_many_breadth(block, k)):
                results.append(
                    RecommendationList(
                        strategy=strategy,
                        items=tuple(
                            ScoredAction(labels[aid], score)
                            for aid, score in ranked
                        ),
                        activity=frozenset(
                            labels[aid] for aid in encoded[start + offset]
                        ),
                    )
                )
        return results


class CsrStrategy(RankingStrategy):
    """Adapter presenting one :class:`BatchRecommender` strategy as a
    :class:`~repro.core.strategies.base.RankingStrategy`.

    The facade swaps this in for the scalar strategy of the same name when
    a CSR engine is available, so the whole instrumented ``recommend``
    machinery (spans, histograms, label decoding) runs unchanged while the
    scoring happens in the engine.  The ``model`` argument of :meth:`rank`
    is ignored — the engine is bound to its own model generation, and the
    facade guarantees both refer to the same frozen model.
    """

    def __init__(self, engine: BatchRecommender, name: str) -> None:
        require_in(name, _STRATEGIES, "strategy")
        self.engine = engine
        self.name = name

    def rank(
        self,
        model: object,
        activity: frozenset[int],
        k: int,
    ) -> list[tuple[int, float]]:
        return self.engine.rank(activity, k, self.name)

    def recommend(
        self,
        model: object,  # type: ignore[override]
        activity: frozenset[int],
        k: int,
    ) -> RecommendationList:
        """Validate, rank and decode — bit-identical to the base method.

        With observability off (the serving hot path) the base method's
        span/histogram plumbing and per-id ``action_label`` calls are pure
        overhead, so this override decodes through the engine's cached
        label table instead.  With observability on it defers to the
        instrumented base implementation unchanged.
        """
        if obs.is_enabled():
            return super().recommend(model, activity, k)  # type: ignore[arg-type]
        require_request_count(k, "k")
        ranked = self.engine.rank(activity, k, self.name)
        labels = self.engine._labels
        # The engine's contract already guarantees ``(id, float)`` pairs,
        # so the items skip the dataclass ``__init__``/``__post_init__``
        # re-validation — equality and hashing are field-based and see
        # objects identical to validated ones.
        new_item = ScoredAction.__new__
        set_field = object.__setattr__
        items: list[ScoredAction] = []
        for aid, score in ranked:
            item = new_item(ScoredAction)
            set_field(item, "action", labels[aid])
            set_field(item, "score", score)
            items.append(item)
        return RecommendationList(
            strategy=self.name,
            items=tuple(items),
            activity=frozenset(labels[aid] for aid in activity),
        )
