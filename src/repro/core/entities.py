"""Core value objects of the association-based goal model.

The paper's universe (Section 3) consists of *actions* (anything a user can
perform: buy a product, read a book), *goals* (targets a user wants to reach:
cook a salad, learn English) and *goal implementations* — pairs ``(g, A)``
stating that performing the action set ``A`` fulfills goal ``g``.

Externally, actions and goals are identified by arbitrary hashable labels
(strings in all the shipped datasets).  Internally the model interns them to
dense integer ids (see :mod:`repro.core.model`); the classes here are the
label-level, immutable public representation.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass, field
from typing import Hashable

ActionLabel = Hashable
GoalLabel = Hashable


@dataclass(frozen=True, slots=True)
class GoalImplementation:
    """A single goal implementation ``(g, A)`` — paper Definition 3.1.

    Attributes:
        goal: label of the goal this implementation fulfills.
        actions: the set of actions whose joint execution fulfills the goal.
        impl_id: optional stable identifier; assigned by
            :class:`ImplementationLibrary` when the implementation is added
            without one.
    """

    goal: GoalLabel
    actions: frozenset[ActionLabel]
    impl_id: int | None = None

    def __post_init__(self) -> None:
        if not isinstance(self.actions, frozenset):
            object.__setattr__(self, "actions", frozenset(self.actions))
        if not self.actions:
            raise ValueError(
                f"implementation of goal {self.goal!r} has an empty action set"
            )

    def __len__(self) -> int:
        return len(self.actions)

    def remaining(self, activity: frozenset[ActionLabel] | set[ActionLabel]) -> frozenset[ActionLabel]:
        """Actions still missing from ``activity`` to fulfill this goal."""
        return self.actions - frozenset(activity)

    def overlap(self, activity: frozenset[ActionLabel] | set[ActionLabel]) -> frozenset[ActionLabel]:
        """Actions of this implementation already present in ``activity``."""
        return self.actions & frozenset(activity)

    def is_fulfilled_by(self, activity: frozenset[ActionLabel] | set[ActionLabel]) -> bool:
        """``True`` when every required action appears in ``activity``."""
        return self.actions <= frozenset(activity)


@dataclass(frozen=True, slots=True)
class UserActivity:
    """The recorded actions of one user — the paper's activity ``H``.

    ``user_id`` is free-form metadata; the recommendation algorithms only
    consume :attr:`actions`.
    """

    actions: frozenset[ActionLabel]
    user_id: str | None = None

    def __post_init__(self) -> None:
        if not isinstance(self.actions, frozenset):
            object.__setattr__(self, "actions", frozenset(self.actions))

    def __len__(self) -> int:
        return len(self.actions)

    def __contains__(self, action: ActionLabel) -> bool:
        return action in self.actions

    def __iter__(self) -> Iterator[ActionLabel]:
        return iter(self.actions)


@dataclass(frozen=True, slots=True)
class ScoredAction:
    """One entry of a recommendation list: an action with its strategy score.

    Higher scores rank earlier for all strategies; distance-based strategies
    (Best Match) negate their distance so this invariant holds uniformly.
    """

    action: ActionLabel
    score: float

    def __post_init__(self) -> None:
        if self.score != self.score:  # NaN guard
            raise ValueError(f"score for {self.action!r} is NaN")


@dataclass(frozen=True, slots=True)
class RecommendationList:
    """An ordered recommendation outcome for one request.

    Attributes:
        strategy: name of the strategy that produced the list.
        items: scored actions, best first.
        activity: the activity the request was made for.
    """

    strategy: str
    items: tuple[ScoredAction, ...]
    activity: frozenset[ActionLabel] = field(default_factory=frozenset)

    def __len__(self) -> int:
        return len(self.items)

    def __iter__(self) -> Iterator[ScoredAction]:
        return iter(self.items)

    def actions(self) -> list[ActionLabel]:
        """The recommended actions in rank order, without scores."""
        return [item.action for item in self.items]

    def action_set(self) -> frozenset[ActionLabel]:
        """The recommended actions as an (unordered) frozen set."""
        return frozenset(item.action for item in self.items)

    def top(self, k: int) -> "RecommendationList":
        """A copy truncated to the first ``k`` entries."""
        return RecommendationList(self.strategy, self.items[:k], self.activity)
