"""Serving-layer caches over the goal model (paper Section 4's indexes, warm).

The reference strategies recompute the implementation space ``IS(H)`` and the
full ranking on every request.  At serving scale (the paper motivates the
index structures with a 20K-cart FoodMart workload) two observations make a
cache pay for itself:

- activities repeat — carts cluster around popular product combinations, so
  a small LRU keyed on ``(generation, strategy, frozen activity, k)``
  answers a large fraction of ``/recommend`` traffic without ranking at
  all;
- distinct activities overlap — different requests share ``IS(H)``
  sub-queries, so memoizing ``implementation_space`` accelerates even cache
  *misses*.

Three pieces live here:

- :class:`LRUCache` — a thread-safe, size-bounded LRU with hit/miss/eviction
  counters and a lookup-latency histogram registered in :mod:`repro.obs`
  (families ``repro_cache_*``, labelled by cache name);
- :class:`CachedModelView` — a read-only proxy over an
  :class:`~repro.core.model.AssociationGoalModel` that memoizes
  ``implementation_space`` (and the ``GS``/``AS`` queries derived from it)
  through an :class:`LRUCache`;
- :class:`CachingRecommender` — a :class:`~repro.core.recommender.GoalRecommender`
  wrapper that consults the recommendation LRU before ranking.

All caches are invalidated wholesale by the serving layer's *generation
counter* when the model mutates (see ``docs/serving.md``); entries never
carry their own TTL, so a cached value is exactly as fresh as its
generation.  The generation is also part of every cache key: a request
that resolved a snapshot before a model swap may ``store()`` *after* the
swap's ``clear()``, and the key prefix makes that late entry unreachable
from the new generation instead of poisoning it with results computed
against retired implementation ids.  Results served from the cache are the same
:class:`~repro.core.entities.RecommendationList` objects the reference path
produced — bit-identical by construction (asserted in the parity suite).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from collections.abc import Iterable
from dataclasses import dataclass
from time import perf_counter
from typing import Any

from repro import obs
from repro.core.entities import ActionLabel, GoalLabel, RecommendationList
from repro.core.model import AssociationGoalModel
from repro.core.recommender import GoalRecommender
from repro.resilience.faults import inject
from repro.utils.concurrency import make_lock

_SENTINEL = object()

#: Lock discipline, machine-checked by ``repro-lint`` (rule RL001, see
#: docs/static-analysis.md).  ``LRUCache`` state lives under its lock;
#: ``CachedModelView`` is an immutable proxy — its fields are bound once
#: in ``__init__`` and never reassigned, which is what makes sharing one
#: view across handler threads safe without any locking.
_GUARDED_BY = {
    "LRUCache._data": "_lock",
    "LRUCache._hits": "_lock",
    "LRUCache._misses": "_lock",
    "LRUCache._evictions": "_lock",
    "LRUCache._invalidations": "_lock",
    "CachedModelView._model": "<final>",
    "CachedModelView._cache": "<final>",
    "CachedModelView._generation": "<final>",
    "CachedModelView._engine": "_engine_lock",
    "CachedModelView._engine_ready": "_engine_lock",
    "CachedModelView._engine_factory": "<final>",
    "LRUCache._lock": "<final>",
    "CachedModelView._engine_lock": "<final>",
}


@dataclass(frozen=True, slots=True)
class CacheStats:
    """A point-in-time view of one cache's counters."""

    name: str
    hits: int
    misses: int
    evictions: int
    invalidations: int
    size: int
    maxsize: int

    @property
    def hit_rate(self) -> float:
        """Hits over lookups, 0.0 before the first lookup."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class LRUCache:
    """A thread-safe, size-bounded LRU cache with metrics.

    Lookups and stores are O(1); the least recently *looked up* entry is
    evicted when the cache is full.  Counters are kept locally (so
    :meth:`stats` works with observability off) and mirrored into the
    process metrics registry when metric recording is enabled:

    - ``repro_cache_hits_total{cache=...}`` / ``repro_cache_misses_total``
    - ``repro_cache_evictions_total`` / ``repro_cache_invalidations_total``
    - ``repro_cache_size`` (gauge)
    - ``repro_cache_lookup_seconds`` (histogram, sub-microsecond buckets)

    A ``maxsize`` of 0 disables the cache: every lookup misses and stores
    are dropped, so call sites need no branching.
    """

    def __init__(self, maxsize: int, name: str = "default") -> None:
        if maxsize < 0:
            raise ValueError(f"maxsize must be >= 0, got {maxsize}")
        self.name = name
        self._maxsize = maxsize
        self._lock = make_lock("LRUCache._lock")
        self._data: OrderedDict[Any, Any] = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._invalidations = 0

    # ------------------------------------------------------------------
    # Metrics plumbing
    # ------------------------------------------------------------------

    def _record_lookup(self, hit: bool, elapsed: float) -> None:
        registry = obs.get_registry()
        if hit:
            registry.counter(
                "repro_cache_hits_total",
                "Cache lookup hits, by cache name.",
                cache=self.name,
            ).inc()
        else:
            registry.counter(
                "repro_cache_misses_total",
                "Cache lookup misses, by cache name.",
                cache=self.name,
            ).inc()
        registry.histogram(
            "repro_cache_lookup_seconds",
            "Cache lookup latency (hit or miss), by cache name.",
            buckets=obs.CACHE_LOOKUP_BUCKETS,
            cache=self.name,
        ).observe(elapsed)

    def _record_gauge(self, size: int) -> None:
        obs.get_registry().gauge(
            "repro_cache_size",
            "Live entries in the cache, by cache name.",
            cache=self.name,
        ).set(size)

    # ------------------------------------------------------------------
    # Cache operations
    # ------------------------------------------------------------------

    @property
    def maxsize(self) -> int:
        """The configured capacity (0 = caching disabled)."""
        return self._maxsize

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def lookup(self, key: Any) -> tuple[bool, Any]:
        """Return ``(hit, value)``; ``value`` is ``None`` on a miss."""
        inject("cache")
        start = perf_counter()
        with self._lock:
            value = self._data.get(key, _SENTINEL)
            if value is not _SENTINEL:
                self._data.move_to_end(key)
                self._hits += 1
                hit = True
            else:
                self._misses += 1
                hit = False
                value = None
        if obs.metrics_enabled():
            self._record_lookup(hit, perf_counter() - start)
        return hit, value

    def store(self, key: Any, value: Any) -> None:
        """Insert (or refresh) ``key``, evicting the LRU entry when full."""
        if self._maxsize == 0:
            return
        evicted = 0
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            while len(self._data) > self._maxsize:
                self._data.popitem(last=False)
                evicted += 1
            self._evictions += evicted
            size = len(self._data)
        if obs.metrics_enabled():
            if evicted:
                obs.get_registry().counter(
                    "repro_cache_evictions_total",
                    "Entries evicted by the LRU policy, by cache name.",
                    cache=self.name,
                ).inc(evicted)
            self._record_gauge(size)

    def get_or_compute(self, key: Any, compute: Any) -> Any:
        """Return the cached value for ``key``, computing and storing on miss.

        ``compute`` runs *outside* the cache lock, so concurrent misses on
        the same key may compute twice — both arrive at the same value (the
        compute functions used here are deterministic), and the second store
        simply refreshes the entry.
        """
        hit, value = self.lookup(key)
        if hit:
            return value
        value = compute()
        self.store(key, value)
        return value

    def clear(self) -> None:
        """Drop every entry and count one invalidation."""
        with self._lock:
            self._data.clear()
            self._invalidations += 1
        if obs.metrics_enabled():
            obs.get_registry().counter(
                "repro_cache_invalidations_total",
                "Wholesale cache invalidations (e.g. model generation "
                "swaps), by cache name.",
                cache=self.name,
            ).inc()
            self._record_gauge(0)

    def stats(self) -> CacheStats:
        """Snapshot the counters (works with observability disabled)."""
        with self._lock:
            return CacheStats(
                name=self.name,
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                invalidations=self._invalidations,
                size=len(self._data),
                maxsize=self._maxsize,
            )


class CachedModelView:
    """Read-only model proxy memoizing ``implementation_space``.

    ``IS(H)`` is the shared sub-query of every space query and every
    strategy: ``GS``/``AS`` are projections of it, and each ranking pass
    starts from it.  This view delegates the full
    :class:`AssociationGoalModel` query surface and routes the three space
    queries through one memoized ``IS`` lookup, so repeated and overlapping
    activities skip the inverted-index unions.

    The view never mutates the underlying model and the memoized sets are
    handed out by reference — callers (the shipped strategies) treat them as
    read-only, which keeps hits allocation-free.

    ``generation`` is baked into every cache key so views over different
    model generations can safely share one :class:`LRUCache`: a late store
    by an in-flight request against a retired generation lands under that
    generation's keys and is unreachable from the current one (frozen ids
    are re-densified on every freeze, so a cross-generation hit would be
    outright wrong, not merely stale).
    """

    def __init__(
        self,
        model: AssociationGoalModel,
        cache: LRUCache | None = None,
        generation: int = 0,
        engine_factory: Any = None,
    ) -> None:
        self._model = model
        self._generation = generation
        self._cache = cache if cache is not None else LRUCache(
            4096, name="implementation_space"
        )
        self._engine: Any = None
        self._engine_ready = False
        self._engine_factory = engine_factory
        self._engine_lock = make_lock("CachedModelView._engine_lock")

    @property
    def wrapped(self) -> AssociationGoalModel:
        """The underlying immutable model."""
        return self._model

    def csr_engine(self) -> Any:
        """The generation's shared CSR engine, or ``None`` without SciPy.

        Built lazily on first use and reused for the view's lifetime — the
        view is generation-scoped, so the engine's precomputed matrices are
        exactly as fresh as every other cache keyed on this generation.
        Both the single-request hot path (``GoalRecommender``) and the
        batch endpoint (``ModelSnapshot.batch``) share this one instance.
        Returns ``None`` when SciPy is unavailable or the model is empty;
        callers fall back to the scalar strategies.

        An ``engine_factory`` supplied at construction replaces the direct
        build — multi-worker serving uses it to hand every worker an
        engine reconstructed zero-copy from the shared-memory arena
        instead of each worker rebuilding its own CSR matrices.
        """
        with self._engine_lock:
            if not self._engine_ready:
                self._engine_ready = True
                if self._engine_factory is not None:
                    self._engine = self._engine_factory()
                elif self._model.num_implementations > 0:
                    try:
                        from repro.core.vectorized import BatchRecommender
                    except ImportError:
                        self._engine = None
                    else:
                        self._engine = BatchRecommender(self._model)
            return self._engine

    @property
    def space_cache(self) -> LRUCache:
        """The LRU memoizing ``implementation_space``."""
        return self._cache

    def __getattr__(self, name: str) -> Any:
        # Everything not overridden below (label translation, index access,
        # derived statistics) delegates to the wrapped model unchanged.
        return getattr(self._model, name)

    def implementation_space(self, activity: frozenset[int]) -> set[int]:
        """Memoized ``IS(H)``."""
        if not obs.tracing_enabled():
            return self._cache.get_or_compute(
                (self._generation, activity),
                lambda: self._model.implementation_space(activity),
            )
        # Stage span even on a cache hit: the per-stage breakdown and the
        # slow-request trees must show where a request spent its time
        # whether or not the memo answered.  A miss nests the model's own
        # ``implementation_space`` span inside this one; the stage profiler
        # counts only the outermost occurrence of a stage name.
        with obs.trace_span("implementation_space") as span:
            hit, value = self._cache.lookup((self._generation, activity))
            if not hit:
                value = self._model.implementation_space(activity)
                self._cache.store((self._generation, activity), value)
            span.set_attrs(cached=hit, size=len(value))
        return value

    def goal_space(self, activity: frozenset[int]) -> set[int]:
        """``GS(H)`` derived from the memoized ``IS(H)``."""
        if not obs.tracing_enabled():
            return self._goal_space_ids(activity)
        with obs.trace_span("goal_space") as span:
            space = self._goal_space_ids(activity)
            span.set_attrs(size=len(space))
        return space

    def _goal_space_ids(self, activity: frozenset[int]) -> set[int]:
        return {
            self._model.implementation_goal(pid)
            for pid in self.implementation_space(activity)
        }

    def action_space(self, activity: frozenset[int]) -> set[int]:
        """``AS(H)`` derived from the memoized ``IS(H)``."""
        if not obs.tracing_enabled():
            return self._action_space_ids(activity)
        with obs.trace_span("action_space") as span:
            space = self._action_space_ids(activity)
            span.set_attrs(size=len(space))
        return space

    def _action_space_ids(self, activity: frozenset[int]) -> set[int]:
        space: set[int] = set()
        for pid in self.implementation_space(activity):
            space |= self._model.implementation_actions(pid)
        return space

    def candidate_actions(self, activity: frozenset[int]) -> set[int]:
        """``AS(H) − H`` via the memoized space."""
        return self.action_space(activity) - activity

    def goal_space_labels(
        self, activity: Iterable[ActionLabel]
    ) -> set[GoalLabel]:
        """Label-level ``GS(H)`` through the memoized path."""
        encoded = self._model.encode_activity(activity)
        return {
            self._model.goal_label(gid) for gid in self.goal_space(encoded)
        }

    def action_space_labels(
        self, activity: Iterable[ActionLabel]
    ) -> set[ActionLabel]:
        """Label-level ``AS(H)`` through the memoized path."""
        encoded = self._model.encode_activity(activity)
        return {
            self._model.action_label(aid) for aid in self.action_space(encoded)
        }


class CachingRecommender:
    """LRU front over a :class:`GoalRecommender`.

    Results are keyed on ``(generation, strategy, frozen activity, k)`` —
    the activity at the *label* level, so two raw activities that encode to
    the same id set still get their own entries (their
    ``RecommendationList.activity`` fields differ).  A hit returns the
    exact object the reference path produced earlier; a miss delegates and
    stores.  As with :class:`CachedModelView`, the ``generation`` prefix
    keeps a shared cache safe across hot model swaps: an in-flight request
    that stores after the swap's invalidation cannot serve its stale result
    to the new generation.
    """

    def __init__(
        self,
        recommender: GoalRecommender,
        cache: LRUCache,
        generation: int = 0,
    ) -> None:
        self.recommender = recommender
        self.cache = cache
        self.generation = generation

    def recommend(
        self,
        activity: Iterable[ActionLabel],
        k: int = 10,
        strategy: str | None = None,
    ) -> tuple[RecommendationList, bool]:
        """Return ``(result, cache_hit)`` for one request."""
        chosen = strategy or self.recommender.default_strategy
        frozen = frozenset(activity)
        key = (self.generation, chosen, frozen, k)
        hit, cached = self.cache.lookup(key)
        if hit:
            return cached, True
        result = self.recommender.recommend(frozen, k=k, strategy=chosen)
        self.cache.store(key, result)
        return result, False
