"""Structural typing for the model query surface and ranking strategies.

The codebase has three interchangeable model implementations —
:class:`~repro.core.model.AssociationGoalModel` (frozen),
:class:`~repro.core.incremental.IncrementalGoalModel` (mutable) and
:class:`~repro.core.caching.CachedModelView` (memoizing proxy) — and
strategies accept any of them because they only use the shared query
surface.  Until now that contract was duck-typed; :class:`ModelView`
states it as a :class:`~typing.Protocol`, so ``mypy --strict`` checks both
sides: a strategy cannot call off-surface methods, and a new model
implementation cannot silently miss part of the surface.

:class:`Strategy` is the structural counterpart of
:class:`~repro.core.strategies.base.RankingStrategy` for call sites that
only need ``rank``/``recommend`` (the facade, the ensembles, the serving
layer) without depending on the ABC.

Both protocols are ``runtime_checkable``: ``isinstance(view, ModelView)``
verifies method *presence* (not signatures), which the test suite uses to
pin all three implementations to the surface.
"""

from __future__ import annotations

from collections.abc import Iterable
from typing import Protocol, runtime_checkable

from repro.core.entities import (
    ActionLabel,
    GoalImplementation,
    GoalLabel,
    RecommendationList,
)


@runtime_checkable
class ModelView(Protocol):
    """The read-only query surface every ranking strategy runs against.

    Mirrors the paper's index structures: id translation (Section 3),
    the ``GI-A``/``GI-G``/``A-GI``/``G-GI`` index lookups and the
    ``IS``/``GS``/``AS`` space queries (Section 4), plus the
    goal-completeness measure the Focus strategies rank by (Section 5).
    """

    # -- sizes ---------------------------------------------------------

    @property
    def num_actions(self) -> int: ...

    @property
    def num_goals(self) -> int: ...

    @property
    def num_implementations(self) -> int: ...

    # -- label/id translation -----------------------------------------

    def action_id(self, label: ActionLabel) -> int: ...

    def goal_id(self, label: GoalLabel) -> int: ...

    def action_label(self, aid: int) -> ActionLabel: ...

    def goal_label(self, gid: int) -> GoalLabel: ...

    def has_action(self, label: ActionLabel) -> bool: ...

    def has_goal(self, label: GoalLabel) -> bool: ...

    def encode_activity(
        self, activity: Iterable[ActionLabel], strict: bool = False
    ) -> frozenset[int]: ...

    # -- index lookups -------------------------------------------------

    def implementation_actions(self, pid: int) -> frozenset[int]: ...

    def implementation_goal(self, pid: int) -> int: ...

    def implementations_of_action(self, aid: int) -> frozenset[int]: ...

    def implementations_of_goal(self, gid: int) -> frozenset[int]: ...

    def implementation(self, pid: int) -> GoalImplementation: ...

    # -- space queries -------------------------------------------------

    def implementation_space(self, activity: frozenset[int]) -> set[int]: ...

    def goal_space(self, activity: frozenset[int]) -> set[int]: ...

    def action_space(self, activity: frozenset[int]) -> set[int]: ...

    def candidate_actions(self, activity: frozenset[int]) -> set[int]: ...

    def goal_completeness(
        self, gid: int, activity: frozenset[int]
    ) -> float: ...

    # -- label-level conveniences -------------------------------------

    def goal_space_labels(
        self, activity: Iterable[ActionLabel]
    ) -> set[GoalLabel]: ...

    def action_space_labels(
        self, activity: Iterable[ActionLabel]
    ) -> set[ActionLabel]: ...


@runtime_checkable
class Strategy(Protocol):
    """What a call site needs from a ranking strategy: name, rank, recommend."""

    @property
    def name(self) -> str: ...

    def rank(
        self,
        model: ModelView,
        activity: frozenset[int],
        k: int,
    ) -> list[tuple[int, float]]: ...

    def recommend(
        self,
        model: ModelView,
        activity: frozenset[int],
        k: int,
    ) -> RecommendationList: ...
