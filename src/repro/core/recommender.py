"""The label-level recommendation facade.

:class:`GoalRecommender` bundles an
:class:`~repro.core.model.AssociationGoalModel` with the four goal-based
strategies and exposes a single :meth:`recommend` entry point working on
action *labels*.  This is the class downstream applications use; the
strategies themselves are reusable id-level components.

Example::

    model = AssociationGoalModel.from_pairs([
        ("olivier salad", {"potatoes", "carrots", "pickles"}),
        ("mashed potatoes", {"potatoes", "nutmeg", "butter"}),
    ])
    recommender = GoalRecommender(model)
    result = recommender.recommend({"potatoes", "carrots"}, k=3)
    result.actions()  # ['pickles', ...]
"""

from __future__ import annotations

from collections.abc import Iterable
from time import perf_counter
from typing import Any

from repro import obs
from repro.core.entities import ActionLabel, GoalLabel, RecommendationList
from repro.core.protocols import ModelView
from repro.core.strategies import RankingStrategy, create_strategy
from repro.exceptions import RecommendationError
from repro.resilience.deadlines import Deadline, active_deadline

#: The strategy names the paper evaluates, in its presentation order.
PAPER_STRATEGIES = ("focus_cmp", "focus_cl", "breadth", "best_match")


class GoalRecommender:
    """Recommend actions that advance the goals a user appears to pursue.

    Args:
        model: the indexed goal model.
        default_strategy: strategy used when :meth:`recommend` is called
            without an explicit one.
    """

    def __init__(
        self,
        model: ModelView,
        default_strategy: str = "breadth",
    ) -> None:
        self.model = model
        self.default_strategy = default_strategy
        self._strategies: dict[str, RankingStrategy] = {}
        # Call-site memo for the per-strategy counter/histogram children,
        # ``(registry, {strategy: (counter, histogram)})`` swapped as one
        # tuple (see ``model._space_counters`` for the pattern/rationale).
        self._metric_handles: (
            tuple[object, dict[str, tuple[obs.Counter, obs.Histogram]]] | None
        ) = None

    def with_model(self, model: ModelView) -> "GoalRecommender":
        """A recommender over ``model`` sharing this one's strategy cache.

        Strategies are stateless with respect to the model (it is passed to
        every ``rank`` call), so a hot-reloading serving layer can rebind
        the facade to each new model generation without re-instantiating
        the strategy objects.
        """
        rebound = GoalRecommender(model, default_strategy=self.default_strategy)
        rebound._strategies = self._strategies
        return rebound

    def strategy(self, name: str, **options: Any) -> RankingStrategy:
        """Return (and cache) a strategy instance by registry name.

        Passing ``options`` bypasses the cache so ablation variants never
        alias the default configuration.
        """
        if options:
            return create_strategy(name, **options)
        cached = self._strategies.get(name)
        if cached is None:
            cached = create_strategy(name)
            self._strategies[name] = cached
        return cached

    def recommend(
        self,
        activity: Iterable[ActionLabel],
        k: int = 10,
        strategy: str | None = None,
        **options: Any,
    ) -> RecommendationList:
        """Produce a top-``k`` recommendation list for ``activity``.

        Actions in ``activity`` that appear in no implementation are ignored
        (they carry no goal evidence).  An activity with no known actions at
        all yields an empty list — the model has no evidence to rank on —
        rather than an error, so batch evaluation over raw logs is painless.
        """
        if k <= 0:
            raise RecommendationError(f"k must be positive, got {k}")
        encoded = self.model.encode_activity(activity)
        chosen = self.strategy(strategy or self.default_strategy, **options)
        deadline = active_deadline()
        if deadline is not None:
            self._run_stages_with_deadline(deadline, encoded)
        if not obs.is_enabled():
            result = chosen.recommend(self.model, encoded, k)
        else:
            result = self._recommend_observed(chosen, encoded, k)
        if obs.quality_enabled():
            obs.get_quality_monitor().observe_recommend(
                chosen.name, self.model, encoded, result
            )
        return result

    def _run_stages_with_deadline(
        self, deadline: Deadline, encoded: frozenset[int]
    ) -> None:
        """Walk the space pipeline with a deadline check entering each stage.

        The paper's pipeline is ``IS(H) -> GS(H) -> AS(H) -> rank``; when a
        request carries a deadline, each space query is driven here with a
        checkpoint in front of it, so an expired request stops at the next
        stage boundary (raising
        :class:`~repro.resilience.deadlines.DeadlineExceededError` naming
        the stage about to be entered) instead of completing a ranking
        nobody is waiting for.  On the serving path the model is a
        :class:`~repro.core.caching.CachedModelView`, so the spaces computed
        here are memoized and the strategy's own queries hit the memo —
        the pipeline runs once, just with checkpoints in between.  Without
        an active deadline this method is skipped entirely and the
        recommend path is unchanged.
        """
        deadline.check("implementation_space")
        self.model.implementation_space(encoded)
        deadline.check("goal_space")
        self.model.goal_space(encoded)
        deadline.check("action_space")
        self.model.action_space(encoded)
        deadline.check("rank")

    def _recommend_observed(
        self, chosen: RankingStrategy, encoded: frozenset[int], k: int
    ) -> RecommendationList:
        """The instrumented recommend path (observability enabled).

        Emits a ``recommend`` span carrying the strategy name, and records
        the per-strategy latency histogram and request counter.  The space
        sizes |IS(H)|, |GS(H)|, |AS(H)| cost three extra index queries —
        far more than the span machinery itself — so they are computed only
        when *trace detail* is enabled on top of tracing
        (``obs.enable(trace_detail=True)``); the ≤10% enabled-path overhead
        budget of ``benchmarks/bench_obs_overhead.py`` holds without them.
        """
        with obs.trace_span("recommend", strategy=chosen.name, k=k) as span:
            start = perf_counter()
            result = chosen.recommend(self.model, encoded, k)
            elapsed = perf_counter() - start
            if obs.metrics_enabled():
                registry = obs.get_registry()
                handles = self._metric_handles
                if handles is None or handles[0] is not registry:
                    handles = (registry, {})
                    self._metric_handles = handles
                pair = handles[1].get(chosen.name)
                if pair is None:
                    pair = (
                        registry.counter(
                            "repro_recommend_requests_total",
                            "Recommendation requests served, by strategy.",
                            strategy=chosen.name,
                        ),
                        registry.histogram(
                            "repro_recommend_latency_seconds",
                            "End-to-end GoalRecommender.recommend latency, "
                            "by strategy.",
                            strategy=chosen.name,
                        ),
                    )
                    handles[1][chosen.name] = pair
                pair[0].inc()
                pair[1].observe(elapsed)
            if span.is_recording:
                span.set_attrs(
                    activity_size=len(encoded),
                    returned=len(result.items),
                )
                if obs.trace_detail_enabled():
                    model = self.model
                    impl_space = model.implementation_space(encoded)
                    action_space = model.action_space(encoded)
                    span.set_attrs(
                        is_size=len(impl_space),
                        gs_size=len(model.goal_space(encoded)),
                        as_size=len(action_space),
                        candidates=len(action_space - encoded),
                    )
        return result

    def recommend_all(
        self,
        activity: Iterable[ActionLabel],
        k: int = 10,
        strategies: Iterable[str] = PAPER_STRATEGIES,
    ) -> dict[str, RecommendationList]:
        """Run several strategies on the same activity.

        The activity is encoded once; returns ``{strategy_name: list}``.
        """
        encoded = self.model.encode_activity(activity)
        if not obs.is_enabled():
            return {
                name: self.strategy(name).recommend(self.model, encoded, k)
                for name in strategies
            }
        with obs.trace_span("recommend_all", k=k) as span:
            results = {
                name: self._recommend_observed(self.strategy(name), encoded, k)
                for name in strategies
            }
            span.set_attr("strategies", list(results))
        return results

    def explain(
        self, activity: Iterable[ActionLabel], action: ActionLabel
    ) -> dict[GoalLabel, list[frozenset[ActionLabel]]]:
        """Explain why ``action`` is a candidate for ``activity``.

        Returns, per goal, the activities of the implementations that both
        contain ``action`` and intersect the user activity — the evidence a
        goal-based recommendation is grounded in.  An action with no such
        implementation returns an empty mapping.
        """
        encoded = self.model.encode_activity(activity)
        aid = self.model.action_id(action)
        reachable = self.model.implementation_space(encoded)
        evidence: dict[GoalLabel, list[frozenset[ActionLabel]]] = {}
        for pid in sorted(self.model.implementations_of_action(aid) & reachable):
            impl = self.model.implementation(pid)
            evidence.setdefault(impl.goal, []).append(impl.actions)
        return evidence
