"""The label-level recommendation facade.

:class:`GoalRecommender` bundles an
:class:`~repro.core.model.AssociationGoalModel` with the four goal-based
strategies and exposes a single :meth:`recommend` entry point working on
action *labels*.  This is the class downstream applications use; the
strategies themselves are reusable id-level components.

Example::

    model = AssociationGoalModel.from_pairs([
        ("olivier salad", {"potatoes", "carrots", "pickles"}),
        ("mashed potatoes", {"potatoes", "nutmeg", "butter"}),
    ])
    recommender = GoalRecommender(model)
    result = recommender.recommend({"potatoes", "carrots"}, k=3)
    result.actions()  # ['pickles', ...]
"""

from __future__ import annotations

from collections.abc import Iterable
from time import perf_counter
from typing import Any

from repro import obs
from repro.core.entities import ActionLabel, GoalLabel, RecommendationList
from repro.core.model import AssociationGoalModel
from repro.core.protocols import ModelView
from repro.core.strategies import RankingStrategy, create_strategy
from repro.core.strategies.base import require_request_count
from repro.resilience.deadlines import Deadline, active_deadline

#: The strategy names the paper evaluates, in its presentation order.
PAPER_STRATEGIES = ("focus_cmp", "focus_cl", "breadth", "best_match")

#: Strategies with a bit-parity CSR kernel in
#: :class:`~repro.core.vectorized.BatchRecommender` — only these (in their
#: default configuration) are ever rerouted off the scalar path.
_CSR_STRATEGIES = frozenset(PAPER_STRATEGIES)


class _RequestSpaceMemo:
    """One-request memo of the space pipeline over an *uncached* model.

    When a deadline-carrying request runs over a bare
    :class:`AssociationGoalModel`, the facade drives the ``IS -> GS -> AS``
    pipeline for its stage checkpoints and the strategy then re-queries the
    same spaces while ranking — every space query runs twice.  The serving
    layer avoids this with :class:`~repro.core.caching.CachedModelView`;
    this memo gives the embedded/uncached case the same property for the
    duration of one request: ``IS(H)`` is computed once and ``GS``/``AS``
    are derived from it, exactly as the cached view derives them.

    Not thread-safe and never shared — one instance per request, discarded
    with it.
    """

    def __init__(self, model: ModelView) -> None:
        self._model = model
        self._is: dict[frozenset[int], set[int]] = {}
        self._gs: dict[frozenset[int], set[int]] = {}
        self._as: dict[frozenset[int], set[int]] = {}

    def __getattr__(self, name: str) -> Any:
        return getattr(self._model, name)

    def implementation_space(self, activity: frozenset[int]) -> set[int]:
        cached = self._is.get(activity)
        if cached is None:
            cached = self._model.implementation_space(activity)
            self._is[activity] = cached
        return cached

    def goal_space(self, activity: frozenset[int]) -> set[int]:
        cached = self._gs.get(activity)
        if cached is None:
            cached = {
                self._model.implementation_goal(pid)
                for pid in self.implementation_space(activity)
            }
            self._gs[activity] = cached
        return cached

    def action_space(self, activity: frozenset[int]) -> set[int]:
        cached = self._as.get(activity)
        if cached is None:
            cached = set()
            for pid in self.implementation_space(activity):
                cached |= self._model.implementation_actions(pid)
            self._as[activity] = cached
        return cached

    def candidate_actions(self, activity: frozenset[int]) -> set[int]:
        return self.action_space(activity) - activity


class GoalRecommender:
    """Recommend actions that advance the goals a user appears to pursue.

    Args:
        model: the indexed goal model.
        default_strategy: strategy used when :meth:`recommend` is called
            without an explicit one.
        use_csr: CSR hot-path policy.  ``None`` (default) routes the four
            paper strategies through the model's generation-keyed CSR
            engine whenever the model exposes one
            (:meth:`~repro.core.caching.CachedModelView.csr_engine` — the
            serving layer's views do); bare models stay on the scalar
            reference strategies.  ``True`` additionally builds a private
            engine over a bare :class:`AssociationGoalModel` (falling back
            to scalar without SciPy); ``False`` never routes CSR — the
            escape hatch the parity suite uses for its reference rankings.
            Both paths are bit-identical (scores, order, ties), so the
            setting is about performance, never results.
    """

    def __init__(
        self,
        model: ModelView,
        default_strategy: str = "breadth",
        use_csr: bool | None = None,
    ) -> None:
        self.model = model
        self.default_strategy = default_strategy
        self.use_csr = use_csr
        self._strategies: dict[str, RankingStrategy] = {}
        # Per-model-binding CSR state: the resolved engine (memoized only
        # for the ``use_csr=True`` private build; cached views memoize
        # their own) and the CsrStrategy adapters keyed by strategy name.
        self._own_engine: Any = None
        self._own_engine_ready = False
        self._csr_runners: dict[str, RankingStrategy] = {}
        # Call-site memo for the per-strategy counter/histogram children,
        # ``(registry, {strategy: (counter, histogram)})`` swapped as one
        # tuple (see ``model._space_counters`` for the pattern/rationale).
        self._metric_handles: (
            tuple[object, dict[str, tuple[obs.Counter, obs.Histogram]]] | None
        ) = None

    def with_model(self, model: ModelView) -> "GoalRecommender":
        """A recommender over ``model`` sharing this one's strategy cache.

        Strategies are stateless with respect to the model (it is passed to
        every ``rank`` call), so a hot-reloading serving layer can rebind
        the facade to each new model generation without re-instantiating
        the strategy objects.
        """
        rebound = GoalRecommender(
            model,
            default_strategy=self.default_strategy,
            use_csr=self.use_csr,
        )
        rebound._strategies = self._strategies
        return rebound

    def csr_engine(self) -> Any:
        """The CSR engine this recommender routes through, or ``None``.

        Resolution follows the ``use_csr`` policy documented on the class.
        Model views with their own ``csr_engine()`` (the serving layer's
        cached views) own the memo; a private engine built for
        ``use_csr=True`` over a bare model is memoized here.
        """
        if self.use_csr is False:
            return None
        factory = getattr(self.model, "csr_engine", None)
        if factory is not None:
            return factory()
        if self.use_csr is not True:
            return None
        if not self._own_engine_ready:
            self._own_engine_ready = True
            target = getattr(self.model, "wrapped", self.model)
            if (
                isinstance(target, AssociationGoalModel)
                and target.num_implementations > 0
            ):
                try:
                    from repro.core.vectorized import BatchRecommender
                except ImportError:
                    self._own_engine = None
                else:
                    self._own_engine = BatchRecommender(target)
        return self._own_engine

    def _runner(
        self, name: str, chosen: RankingStrategy, options: dict[str, Any]
    ) -> RankingStrategy:
        """The strategy that actually ranks: CSR adapter or ``chosen``.

        Only the four paper strategies in their default configuration are
        rerouted — ablation variants (``options``) and every other
        registered strategy run their scalar implementation unchanged.
        """
        if options or name not in _CSR_STRATEGIES:
            return chosen
        runner = self._csr_runners.get(name)
        if runner is not None:
            return runner
        engine = self.csr_engine()
        if engine is None:
            return chosen
        from repro.core.vectorized import CsrStrategy

        runner = CsrStrategy(engine, name)
        self._csr_runners[name] = runner
        return runner

    def strategy(self, name: str, **options: Any) -> RankingStrategy:
        """Return (and cache) a strategy instance by registry name.

        Passing ``options`` bypasses the cache so ablation variants never
        alias the default configuration.
        """
        if options:
            return create_strategy(name, **options)
        cached = self._strategies.get(name)
        if cached is None:
            cached = create_strategy(name)
            self._strategies[name] = cached
        return cached

    def use_strategy(self, strategy: RankingStrategy) -> None:
        """Pin a configured strategy instance under its registry name.

        Later :meth:`recommend` calls naming it reuse this instance instead
        of instantiating registry defaults — the serving layer uses this to
        honour ``--approx-budget`` on the ``breadth_pruned`` tier.  The pin
        survives :meth:`with_model` rebinds (the strategy cache is shared).
        """
        self._strategies[strategy.name] = strategy

    def recommend(
        self,
        activity: Iterable[ActionLabel],
        k: int = 10,
        strategy: str | None = None,
        **options: Any,
    ) -> RecommendationList:
        """Produce a top-``k`` recommendation list for ``activity``.

        Actions in ``activity`` that appear in no implementation are ignored
        (they carry no goal evidence).  An activity with no known actions at
        all yields an empty list — the model has no evidence to rank on —
        rather than an error, so batch evaluation over raw logs is painless.
        """
        require_request_count(k, "k")
        encoded = self.model.encode_activity(activity)
        name = strategy or self.default_strategy
        chosen = self.strategy(name, **options)
        runner = self._runner(name, chosen, options)
        deadline = active_deadline()
        rank_model: ModelView = self.model
        if deadline is not None:
            rank_model = self._run_stages_with_deadline(
                deadline, encoded, csr=runner is not chosen
            )
        if not obs.is_enabled():
            result = runner.recommend(rank_model, encoded, k)
        else:
            result = self._recommend_observed(runner, rank_model, encoded, k)
        if obs.quality_enabled():
            obs.get_quality_monitor().observe_recommend(
                runner.name, self.model, encoded, result
            )
        return result

    def _run_stages_with_deadline(
        self, deadline: Deadline, encoded: frozenset[int], csr: bool
    ) -> ModelView:
        """Walk the space pipeline with a deadline check entering each stage.

        The paper's pipeline is ``IS(H) -> GS(H) -> AS(H) -> rank``; when a
        request carries a deadline, each space query is driven here with a
        checkpoint in front of it, so an expired request stops at the next
        stage boundary (raising
        :class:`~repro.resilience.deadlines.DeadlineExceededError` naming
        the stage about to be entered) instead of completing a ranking
        nobody is waiting for.  Returns the model the ranking should run
        on: the facade's own model when its space queries are memoized
        (:class:`~repro.core.caching.CachedModelView`), otherwise a
        per-request :class:`_RequestSpaceMemo` so the strategy's own space
        queries reuse the work done here instead of repeating it.  A
        CSR-routed request has no scalar space pipeline at all — only the
        checkpoints run, keeping the stage names an expired request
        surfaces identical on both paths.  Without an active deadline this
        method is skipped entirely and the recommend path is unchanged.
        """
        if csr:
            deadline.check("implementation_space")
            deadline.check("rank")
            return self.model
        model: ModelView = self.model
        if getattr(model, "space_cache", None) is None:
            model = _RequestSpaceMemo(model)
        deadline.check("implementation_space")
        model.implementation_space(encoded)
        deadline.check("goal_space")
        model.goal_space(encoded)
        deadline.check("action_space")
        model.action_space(encoded)
        deadline.check("rank")
        return model

    def _recommend_observed(
        self,
        chosen: RankingStrategy,
        rank_model: ModelView,
        encoded: frozenset[int],
        k: int,
    ) -> RecommendationList:
        """The instrumented recommend path (observability enabled).

        Emits a ``recommend`` span carrying the strategy name, and records
        the per-strategy latency histogram and request counter.  The space
        sizes |IS(H)|, |GS(H)|, |AS(H)| cost three extra index queries —
        far more than the span machinery itself — so they are computed only
        when *trace detail* is enabled on top of tracing
        (``obs.enable(trace_detail=True)``); the ≤10% enabled-path overhead
        budget of ``benchmarks/bench_obs_overhead.py`` holds without them.
        """
        with obs.trace_span("recommend", strategy=chosen.name, k=k) as span:
            start = perf_counter()
            result = chosen.recommend(rank_model, encoded, k)
            elapsed = perf_counter() - start
            if obs.metrics_enabled():
                registry = obs.get_registry()
                handles = self._metric_handles
                if handles is None or handles[0] is not registry:
                    handles = (registry, {})
                    self._metric_handles = handles
                pair = handles[1].get(chosen.name)
                if pair is None:
                    pair = (
                        registry.counter(
                            "repro_recommend_requests_total",
                            "Recommendation requests served, by strategy.",
                            strategy=chosen.name,
                        ),
                        registry.histogram(
                            "repro_recommend_latency_seconds",
                            "End-to-end GoalRecommender.recommend latency, "
                            "by strategy.",
                            strategy=chosen.name,
                        ),
                    )
                    handles[1][chosen.name] = pair
                pair[0].inc()
                pair[1].observe(elapsed)
            if span.is_recording:
                span.set_attrs(
                    activity_size=len(encoded),
                    returned=len(result.items),
                )
                if obs.trace_detail_enabled():
                    model = rank_model
                    impl_space = model.implementation_space(encoded)
                    action_space = model.action_space(encoded)
                    span.set_attrs(
                        is_size=len(impl_space),
                        gs_size=len(model.goal_space(encoded)),
                        as_size=len(action_space),
                        candidates=len(action_space - encoded),
                    )
        return result

    def recommend_all(
        self,
        activity: Iterable[ActionLabel],
        k: int = 10,
        strategies: Iterable[str] = PAPER_STRATEGIES,
    ) -> dict[str, RecommendationList]:
        """Run several strategies on the same activity.

        The activity is encoded once; returns ``{strategy_name: list}``.
        """
        encoded = self.model.encode_activity(activity)
        runners = {
            name: self._runner(name, self.strategy(name), {})
            for name in strategies
        }
        if not obs.is_enabled():
            return {
                name: runner.recommend(self.model, encoded, k)
                for name, runner in runners.items()
            }
        with obs.trace_span("recommend_all", k=k) as span:
            results = {
                name: self._recommend_observed(runner, self.model, encoded, k)
                for name, runner in runners.items()
            }
            span.set_attr("strategies", list(results))
        return results

    def explain(
        self, activity: Iterable[ActionLabel], action: ActionLabel
    ) -> dict[GoalLabel, list[frozenset[ActionLabel]]]:
        """Explain why ``action`` is a candidate for ``activity``.

        Returns, per goal, the activities of the implementations that both
        contain ``action`` and intersect the user activity — the evidence a
        goal-based recommendation is grounded in.  An action with no such
        implementation returns an empty mapping.
        """
        encoded = self.model.encode_activity(activity)
        aid = self.model.action_id(action)
        reachable = self.model.implementation_space(encoded)
        evidence: dict[GoalLabel, list[frozenset[ActionLabel]]] = {}
        for pid in sorted(self.model.implementations_of_action(aid) & reachable):
            impl = self.model.implementation(pid)
            evidence.setdefault(impl.goal, []).append(impl.actions)
        return evidence
