"""Weighted goal implementations (extension of the paper's model).

The paper's Definition 3.1 treats every action of an implementation as
equally necessary.  Real implementations rarely are: a recipe's main
ingredient matters more than its garnish, a degree's core course more than
an elective.  This module extends the model with per-action weights and
re-derives the two Focus measures and the Breadth score so they degrade
gracefully to the paper's definitions when all weights are 1:

- weighted completeness: ``w(A ∩ H) / w(A)`` (Equation 3 with mass instead
  of cardinality);
- weighted closeness: ``1 / w(A − H)`` (Equation 4; an implementation
  missing only low-weight actions is "closer");
- weighted Breadth contribution: ``w(A_p ∩ H)`` per implementation.

The weighted library is its own small container; it lowers to a plain
:class:`~repro.core.library.ImplementationLibrary` (weights dropped) so the
whole unweighted stack remains usable on the same data.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Iterable, Iterator, Mapping
from dataclasses import dataclass

from repro.core.entities import ActionLabel, GoalLabel
from repro.core.library import ImplementationLibrary
from repro.exceptions import ModelError
from repro.utils.validation import require_positive


@dataclass(frozen=True, slots=True)
class WeightedImplementation:
    """A goal implementation whose actions carry positive weights."""

    goal: GoalLabel
    weights: Mapping[ActionLabel, float]
    impl_id: int | None = None

    def __post_init__(self) -> None:
        if not self.weights:
            raise ModelError(
                f"weighted implementation of {self.goal!r} has no actions"
            )
        for action, weight in self.weights.items():
            if weight <= 0:
                raise ModelError(
                    f"action {action!r} of {self.goal!r} has non-positive "
                    f"weight {weight}"
                )
        object.__setattr__(self, "weights", dict(self.weights))

    @property
    def actions(self) -> frozenset[ActionLabel]:
        """The implementation's action set (weights dropped)."""
        return frozenset(self.weights)

    def total_weight(self) -> float:
        """``w(A)`` — the implementation's total mass."""
        return sum(self.weights.values())

    def overlap_weight(self, activity: Iterable[ActionLabel]) -> float:
        """``w(A ∩ H)`` — mass already performed."""
        performed = frozenset(activity)
        return sum(
            weight
            for action, weight in self.weights.items()
            if action in performed
        )

    def remaining_weight(self, activity: Iterable[ActionLabel]) -> float:
        """``w(A − H)`` — mass still missing."""
        return self.total_weight() - self.overlap_weight(activity)

    def completeness(self, activity: Iterable[ActionLabel]) -> float:
        """Weighted Equation 3: performed mass over total mass."""
        return self.overlap_weight(activity) / self.total_weight()

    def closeness(self, activity: Iterable[ActionLabel]) -> float:
        """Weighted Equation 4; undefined (raises) when nothing is missing."""
        remaining = self.remaining_weight(activity)
        if remaining <= 0:
            raise ModelError(
                "closeness undefined for a fully performed implementation"
            )
        return 1.0 / remaining


class WeightedLibrary:
    """An ordered collection of weighted implementations."""

    def __init__(
        self, implementations: Iterable[WeightedImplementation] = ()
    ) -> None:
        self._implementations: list[WeightedImplementation] = []
        for impl in implementations:
            self.add(impl)

    def add(self, implementation: WeightedImplementation) -> int:
        """Append one implementation; returns its dense id."""
        impl_id = len(self._implementations)
        stored = WeightedImplementation(
            goal=implementation.goal,
            weights=implementation.weights,
            impl_id=impl_id,
        )
        self._implementations.append(stored)
        return impl_id

    def add_weighted(
        self, goal: GoalLabel, weights: Mapping[ActionLabel, float]
    ) -> int:
        """Convenience: append a raw ``(goal, weights)`` pair."""
        return self.add(WeightedImplementation(goal=goal, weights=weights))

    def __len__(self) -> int:
        return len(self._implementations)

    def __iter__(self) -> Iterator[WeightedImplementation]:
        return iter(self._implementations)

    def __getitem__(self, impl_id: int) -> WeightedImplementation:
        try:
            return self._implementations[impl_id]
        except IndexError:
            raise KeyError(f"no weighted implementation with id {impl_id}") from None

    def unweighted(self) -> ImplementationLibrary:
        """Lower to a plain library (weights dropped, order preserved)."""
        library = ImplementationLibrary()
        for impl in self._implementations:
            library.add_pair(impl.goal, impl.actions)
        return library


class WeightedRecommender:
    """Focus/Breadth ranking over a weighted library.

    A deliberately small engine: the weighted variants are useful exactly
    where weights exist, which is typically curated (small-to-medium)
    libraries; for unweighted mass-scale ranking use the main stack.

    Args:
        library: the weighted implementation collection.
    """

    def __init__(self, library: WeightedLibrary) -> None:
        if len(library) == 0:
            raise ModelError("cannot recommend from an empty weighted library")
        self.library = library
        self._action_impls: dict[ActionLabel, list[int]] = defaultdict(list)
        for impl in library:
            for action in sorted(impl.actions, key=str):
                self._action_impls[action].append(impl.impl_id)

    def implementation_space(
        self, activity: Iterable[ActionLabel]
    ) -> list[WeightedImplementation]:
        """``IS(H)`` in ascending implementation-id order."""
        ids: set[int] = set()
        for action in activity:
            ids.update(self._action_impls.get(action, ()))
        return [self.library[impl_id] for impl_id in sorted(ids)]

    def rank_focus(
        self,
        activity: Iterable[ActionLabel],
        k: int,
        measure: str = "completeness",
    ) -> list[tuple[ActionLabel, float]]:
        """Weighted Focus: fill the list from the best implementations.

        Within one implementation the missing actions are emitted heaviest
        first (the most important missing piece leads), then by label.
        """
        require_positive(k, "k")
        activity = frozenset(activity)
        scored: list[tuple[float, int, WeightedImplementation]] = []
        for impl in self.implementation_space(activity):
            if impl.actions <= activity:
                continue
            if measure == "completeness":
                score = impl.completeness(activity)
            elif measure == "closeness":
                score = impl.closeness(activity)
            else:
                raise ValueError(f"unknown measure {measure!r}")
            scored.append((score, impl.impl_id, impl))
        scored.sort(key=lambda item: (-item[0], item[1]))
        result: list[tuple[ActionLabel, float]] = []
        seen: set[ActionLabel] = set()
        for score, _, impl in scored:
            missing = sorted(
                (action for action in impl.actions if action not in activity),
                key=lambda a: (-impl.weights[a], str(a)),
            )
            for action in missing:
                if action in seen:
                    continue
                seen.add(action)
                result.append((action, score))
                if len(result) == k:
                    return result
        return result

    def rank_breadth(
        self, activity: Iterable[ActionLabel], k: int
    ) -> list[tuple[ActionLabel, float]]:
        """Weighted Breadth: candidates accumulate ``w(A_p ∩ H)``.

        The candidate's own weight scales its gain from each implementation
        (heavy actions advance their implementations more).
        """
        require_positive(k, "k")
        activity = frozenset(activity)
        scores: dict[ActionLabel, float] = defaultdict(float)
        for impl in self.implementation_space(activity):
            overlap = impl.overlap_weight(activity)
            if overlap <= 0:
                continue
            for action, weight in impl.weights.items():
                if action not in activity:
                    scores[action] += overlap * weight
        ranked = sorted(scores.items(), key=lambda item: (-item[1], str(item[0])))
        return ranked[:k]
