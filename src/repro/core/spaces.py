"""Label-level functional wrappers for the paper's space operations.

The id-level implementations live on
:class:`~repro.core.model.AssociationGoalModel`; these helpers are the
ergonomic, label-in / label-out form used by examples and notebooks:

- :func:`goal_space` — Definition 4.1 / Equation 1,
- :func:`action_space` — Definition 4.2 / Equation 2,
- :func:`implementation_space` — ``IS(H)``, the implementations reachable
  from the activity,
- :func:`candidate_actions` — ``AS(H) − H``, what the strategies rank.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.core.entities import ActionLabel, GoalImplementation, GoalLabel
from repro.core.model import AssociationGoalModel


def implementation_space(
    model: AssociationGoalModel, activity: Iterable[ActionLabel]
) -> list[GoalImplementation]:
    """``IS(H)``: implementations sharing at least one action with ``H``.

    Returned in ascending implementation-id order.
    """
    encoded = model.encode_activity(activity)
    return [
        model.implementation(pid)
        for pid in sorted(model.implementation_space(encoded))
    ]


def goal_space(
    model: AssociationGoalModel, activity: Iterable[ActionLabel]
) -> set[GoalLabel]:
    """``GS(H)``: the goals the user may be pursuing (Equation 1)."""
    return model.goal_space_labels(activity)


def action_space(
    model: AssociationGoalModel, activity: Iterable[ActionLabel]
) -> set[ActionLabel]:
    """``AS(H)``: actions co-occurring with the activity (Equation 2)."""
    return model.action_space_labels(activity)


def candidate_actions(
    model: AssociationGoalModel, activity: Iterable[ActionLabel]
) -> set[ActionLabel]:
    """``AS(H) − H``: the candidate set every strategy ranks."""
    encoded = model.encode_activity(activity)
    return {
        model.action_label(aid) for aid in model.candidate_actions(encoded)
    }


def goal_completeness(
    model: AssociationGoalModel,
    goal: GoalLabel,
    activity: Iterable[ActionLabel],
) -> float:
    """Best completeness of ``goal`` given the activity (Equation 3).

    A goal with several implementations is as complete as its most complete
    implementation; a goal untouched by the activity scores 0.
    """
    encoded = model.encode_activity(activity)
    return model.goal_completeness(model.goal_id(goal), encoded)
