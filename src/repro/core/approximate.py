"""Approximate Breadth tiers for latency-bounded serving.

Section 6.2 shows the exact mechanisms scale to millions of implementations,
but per-request latency grows with *connectivity*: an activity whose actions
co-occur with thousands of others pays for every posting-list entry.  When a
latency budget matters more than exact scores, two approximations apply:

:class:`SampledBreadthStrategy` (``breadth_sampled``)
    scores a uniform sample of ``IS(H)``.  Because

    ``score(a) = Σ_{p∈IS(H), a∈A_p} |A_p ∩ H|``

    is a sum over implementations, an ``m``-of-``n`` uniform sample scaled
    by ``n / m`` estimates it with relative error ``O(1/sqrt(m))`` — and
    *ranking* only needs relative order, which converges even faster.
    Sampling is deterministic per ``(seed, activity)``.

:class:`PrunedBreadthStrategy` (``breadth_pruned``)
    truncates posting lists instead of sampling them.  Breadth is also a sum
    of co-occurrence rows — ``score(c) = Σ_{b∈H} S[b, c]`` with
    ``S = MᵀM`` — so capping each row at its ``budget`` heaviest entries
    (frequency-ordered, ties by ascending action id) bounds per-request
    work at ``|H| · budget`` while keeping the largest score contributions.
    The result is *exact* whenever every activity action co-occurs with at
    most ``budget`` other actions; recall@k degrades only for activities
    touching high-connectivity actions, and only when a true top-k
    candidate draws most of its score from entries beyond the cap.  The
    single-request benchmark measures recall@10 against the exact
    CRC32-checksummed rankings (:func:`recall_at_k`) and gates it at
    ``>= 0.95`` in CI.

Both strategies target the :class:`~repro.core.protocols.ModelView`
protocol, so they run over :class:`~repro.core.caching.CachedModelView` and
incremental models as well as the concrete
:class:`~repro.core.model.AssociationGoalModel`.  When the view exposes a
CSR engine (``csr_engine()``), the pruned tier delegates to its
budget-capped kernel; the scalar fallback below computes the identical
truncated sum without NumPy.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from repro.core.entities import RecommendationList
from repro.core.protocols import ModelView
from repro.core.strategies.base import (
    RankingStrategy,
    rank_scored_ids,
    register_strategy,
)
from repro.utils.validation import require_positive


@register_strategy("breadth_sampled")
class SampledBreadthStrategy(RankingStrategy):
    """Breadth over a uniform sample of the implementation space.

    Args:
        max_implementations: sample budget ``m``; implementation spaces at
            or below this size are scored exactly (the strategy is then
            identical to canonical Breadth).
        seed: base seed for the deterministic per-request sampling.
    """

    name = "breadth_sampled"

    def __init__(self, max_implementations: int = 1000, seed: int = 0) -> None:
        require_positive(max_implementations, "max_implementations")
        self.max_implementations = max_implementations
        self.seed = seed

    def _sample(self, pids: list[int], activity: frozenset[int]) -> list[int]:
        """Deterministic uniform sample of the (sorted) implementation ids."""
        if len(pids) <= self.max_implementations:
            return pids
        # Seed from (base seed, activity) so the same request samples the
        # same implementations while different activities decorrelate.
        mix = np.random.SeedSequence(
            [self.seed] + sorted(activity)
        )
        rng = np.random.default_rng(mix)
        chosen = rng.choice(
            len(pids), size=self.max_implementations, replace=False
        )
        return [pids[i] for i in np.sort(chosen)]

    def scores(
        self, model: ModelView, activity: frozenset[int]
    ) -> dict[int, float]:
        """Estimated ``{candidate: score}`` (exact when under budget)."""
        pids = sorted(model.implementation_space(activity))
        if not pids:
            return {}
        sample = self._sample(pids, activity)
        scale = len(pids) / len(sample)
        accumulated: dict[int, float] = defaultdict(float)
        for pid in sample:
            impl_actions = model.implementation_actions(pid)
            comm = len(impl_actions & activity)
            for aid in impl_actions:
                if aid not in activity:
                    accumulated[aid] += comm
        return {aid: value * scale for aid, value in accumulated.items()}

    def rank(
        self,
        model: ModelView,
        activity: frozenset[int],
        k: int,
    ) -> list[tuple[int, float]]:
        """Top-``k`` candidates by estimated score."""
        return rank_scored_ids(self.scores(model, activity), k)

    def sampling_rate(
        self, model: ModelView, activity: frozenset[int]
    ) -> float:
        """Fraction of ``IS(H)`` actually scored for this activity (<= 1)."""
        size = len(model.implementation_space(activity))
        if size == 0:
            return 1.0
        return min(1.0, self.max_implementations / size)


@register_strategy("breadth_pruned")
class PrunedBreadthStrategy(RankingStrategy):
    """Breadth over budget-capped, frequency-ordered posting lists.

    Each activity action contributes at most its ``budget`` heaviest
    co-occurrence entries (ties on the count break by ascending action id).
    Deterministic — the truncation point depends only on the model — and
    exact for every activity whose actions all have connectivity at or
    below ``budget``.

    When the model view exposes ``csr_engine()`` (the serving layer's
    :class:`~repro.core.caching.CachedModelView` does), ranking delegates
    to :meth:`~repro.core.vectorized.BatchRecommender.pruned_breadth_rank`;
    otherwise a scalar fallback computes the identical truncated sum, so
    results do not depend on SciPy availability.

    Args:
        budget: per-action posting-list cap (default 128 — at the paper's
            ~1.2K connectivity this cuts single-request latency by roughly
            40-55% while the benchmark's measured recall@10 stays >= 0.95).
    """

    name = "breadth_pruned"

    def __init__(self, budget: int = 128) -> None:
        require_positive(budget, "budget")
        self.budget = budget

    def _truncated_row(
        self, model: ModelView, aid: int
    ) -> list[tuple[int, int]]:
        """Action ``aid``'s co-occurrence row, capped at ``budget`` entries.

        The scalar mirror of one frequency-ordered CSR posting list: count
        co-occurring actions over the implementations of ``aid``, keep the
        ``budget`` largest counts (ties by ascending action id).
        """
        row: dict[int, int] = defaultdict(int)
        for pid in model.implementations_of_action(aid):
            for other in model.implementation_actions(pid):
                row[other] += 1
        entries = sorted(row.items(), key=lambda item: (-item[1], item[0]))
        return entries[: self.budget]

    def scores(
        self, model: ModelView, activity: frozenset[int]
    ) -> dict[int, float]:
        """Truncated-sum ``{candidate: score}`` (exact under budget)."""
        accumulated: dict[int, float] = defaultdict(float)
        for aid in activity:
            for other, count in self._truncated_row(model, aid):
                accumulated[other] += float(count)
        for aid in activity:
            accumulated.pop(aid, None)
        return dict(accumulated)

    def rank(
        self,
        model: ModelView,
        activity: frozenset[int],
        k: int,
    ) -> list[tuple[int, float]]:
        """Top-``k`` candidates by budget-capped Breadth score."""
        engine_factory = getattr(model, "csr_engine", None)
        if engine_factory is not None:
            engine = engine_factory()
            if engine is not None:
                ranked: list[tuple[int, float]] = engine.pruned_breadth_rank(
                    activity, k, self.budget
                )
                return ranked
        return rank_scored_ids(self.scores(model, activity), k)


def recall_at_k(
    exact: RecommendationList | list[tuple[int, float]],
    approximate: RecommendationList | list[tuple[int, float]],
) -> float:
    """Fraction of the exact top-k the approximate ranking recovered.

    Accepts either label-level :class:`RecommendationList`s or id-level
    ``(id, score)`` rankings; an empty exact ranking scores 1.0 (there was
    nothing to recall).
    """
    if isinstance(exact, RecommendationList):
        exact_ids: set[object] = {item.action for item in exact.items}
    else:
        exact_ids = {aid for aid, _ in exact}
    if not exact_ids:
        return 1.0
    if isinstance(approximate, RecommendationList):
        approx_ids: set[object] = {item.action for item in approximate.items}
    else:
        approx_ids = {aid for aid, _ in approximate}
    return len(exact_ids & approx_ids) / len(exact_ids)
