"""Sampled approximation of Breadth for very large implementation spaces.

Section 6.2 shows the exact mechanisms scale to millions of implementations,
but per-request latency grows with connectivity: an activity whose
implementation space holds a million hyperedges pays for all of them.  When
a latency budget matters more than exact scores, a uniform sample of
``IS(H)`` gives an unbiased estimate of every Breadth score:

``score(a) = Σ_{p∈IS(H), a∈A_p} |A_p ∩ H|``

is a sum over implementations, so scoring a uniform ``m``-of-``n`` sample
and scaling by ``n / m`` estimates it with relative error ``O(1/sqrt(m))``
for well-represented candidates — and *ranking* only needs relative order,
which converges even faster.

Sampling is deterministic per ``(seed, activity)``: the implementation ids
are sorted and drawn with a seeded generator, so repeated identical requests
return identical lists (the same determinism contract the exact strategies
honour).
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from repro.core.model import AssociationGoalModel
from repro.core.strategies.base import (
    RankingStrategy,
    rank_scored_ids,
    register_strategy,
)
from repro.utils.validation import require_positive


@register_strategy("breadth_sampled")
class SampledBreadthStrategy(RankingStrategy):
    """Breadth over a uniform sample of the implementation space.

    Args:
        max_implementations: sample budget ``m``; implementation spaces at
            or below this size are scored exactly (the strategy is then
            identical to canonical Breadth).
        seed: base seed for the deterministic per-request sampling.
    """

    name = "breadth_sampled"

    def __init__(self, max_implementations: int = 1000, seed: int = 0) -> None:
        require_positive(max_implementations, "max_implementations")
        self.max_implementations = max_implementations
        self.seed = seed

    def _sample(self, pids: list[int], activity: frozenset[int]) -> list[int]:
        """Deterministic uniform sample of the (sorted) implementation ids."""
        if len(pids) <= self.max_implementations:
            return pids
        # Seed from (base seed, activity) so the same request samples the
        # same implementations while different activities decorrelate.
        mix = np.random.SeedSequence(
            [self.seed] + sorted(activity)
        )
        rng = np.random.default_rng(mix)
        chosen = rng.choice(
            len(pids), size=self.max_implementations, replace=False
        )
        return [pids[i] for i in np.sort(chosen)]

    def scores(
        self, model: AssociationGoalModel, activity: frozenset[int]
    ) -> dict[int, float]:
        """Estimated ``{candidate: score}`` (exact when under budget)."""
        pids = sorted(model.implementation_space(activity))
        if not pids:
            return {}
        sample = self._sample(pids, activity)
        scale = len(pids) / len(sample)
        accumulated: dict[int, float] = defaultdict(float)
        for pid in sample:
            impl_actions = model.implementation_actions(pid)
            comm = len(impl_actions & activity)
            for aid in impl_actions:
                if aid not in activity:
                    accumulated[aid] += comm
        return {aid: value * scale for aid, value in accumulated.items()}

    def rank(
        self,
        model: AssociationGoalModel,
        activity: frozenset[int],
        k: int,
    ) -> list[tuple[int, float]]:
        """Top-``k`` candidates by estimated score."""
        return rank_scored_ids(self.scores(model, activity), k)

    def sampling_rate(
        self, model: AssociationGoalModel, activity: frozenset[int]
    ) -> float:
        """Fraction of ``IS(H)`` actually scored for this activity (<= 1)."""
        size = len(model.implementation_space(activity))
        if size == 0:
            return 1.0
        return min(1.0, self.max_implementations / size)
