"""The association-based goal model (paper Section 4, Figure 2).

The model views the implementation library as a hypergraph: actions are
nodes, each implementation's activity is a hyperedge, and every hyperedge is
labelled with the goal it fulfills.  To answer space queries in time
proportional to ``|H| x connectivity`` instead of scanning the whole library,
the paper introduces five index structures, all materialized here:

``A-idx`` / ``G-idx``
    Label <-> dense-integer-id interning for actions and goals.
``GI-A-idx``
    Implementation id -> frozen set of action ids (the hyperedge).
``GI-G-idx``
    Implementation id -> goal id (the hyperedge label).
``A-GI-idx``
    Action id -> frozen set of implementation ids (inverted index; this is
    what makes ``IS/GS/AS`` queries cheap).
``G-GI-idx``
    Goal id -> frozen set of implementation ids (inverse of ``GI-G-idx``).

The model is immutable once built.  All recommendation strategies operate on
integer ids through this class; the :class:`~repro.core.recommender.GoalRecommender`
facade translates labels at the boundary.
"""

from __future__ import annotations

from collections.abc import Iterable
from time import perf_counter

from repro import obs
from repro.core.entities import ActionLabel, GoalImplementation, GoalLabel
from repro.core.library import ImplementationLibrary, LibraryStats
from repro.exceptions import ModelError, UnknownActionError, UnknownGoalError


#: Call-site memo for the space-query counters: ``(registry, {space: child})``,
#: swapped atomically as one tuple so a concurrent registry swap can at worst
#: rebuild the memo, never mix children across registries.  Space queries are
#: the hottest instrumented call in the pipeline; skipping the registry's
#: name/label validation on every hit keeps the enabled path inside the ≤10%
#: budget of ``benchmarks/bench_obs_overhead.py``.
_space_counters: tuple[object, dict[str, obs.Counter]] | None = None


def _count_space_query(space: str) -> None:
    """Count one IS/GS/AS query (``goal``/``action`` also query ``IS``)."""
    global _space_counters
    registry = obs.get_registry()
    cached = _space_counters
    if cached is None or cached[0] is not registry:
        cached = (registry, {})
        _space_counters = cached
    counter = cached[1].get(space)
    if counter is None:
        counter = registry.counter(
            "repro_space_queries_total",
            "Space queries answered, by space (IS/GS/AS).",
            space=space,
        )
        cached[1][space] = counter
    counter.inc()


class AssociationGoalModel:
    """Immutable indexed form of an implementation library.

    Build it with :meth:`from_library` (or :meth:`from_pairs` for ad-hoc
    data).  The instance answers the three space queries of the paper:

    - :meth:`implementation_space` — ``IS(H)``, implementations sharing an
      action with the activity;
    - :meth:`goal_space` — ``GS(H)``, goals of those implementations
      (Definition 4.1 / Equation 1);
    - :meth:`action_space` — ``AS(H)``, actions co-occurring with the
      activity inside those implementations (Definition 4.2 / Equation 2).
    """

    def __init__(
        self,
        actions: list[ActionLabel],
        goals: list[GoalLabel],
        impl_actions: list[frozenset[int]],
        impl_goal: list[int],
    ) -> None:
        if not impl_actions:
            raise ModelError("cannot build a model from zero implementations")
        if len(impl_actions) != len(impl_goal):
            raise ModelError(
                "impl_actions and impl_goal must be parallel lists "
                f"({len(impl_actions)} != {len(impl_goal)})"
            )
        self._actions = actions
        self._goals = goals
        self._action_to_id: dict[ActionLabel, int] = {
            label: idx for idx, label in enumerate(actions)
        }
        self._goal_to_id: dict[GoalLabel, int] = {
            label: idx for idx, label in enumerate(goals)
        }
        if len(self._action_to_id) != len(actions):
            raise ModelError("duplicate action labels in model construction")
        if len(self._goal_to_id) != len(goals):
            raise ModelError("duplicate goal labels in model construction")
        self._impl_actions = impl_actions  # GI-A-idx
        self._impl_goal = impl_goal  # GI-G-idx
        # Build the inverted indexes (A-GI-idx, G-GI-idx).
        action_impls: list[set[int]] = [set() for _ in actions]
        goal_impls: list[set[int]] = [set() for _ in goals]
        for pid, (activity, gid) in enumerate(zip(impl_actions, impl_goal)):
            if not activity:
                raise ModelError(f"implementation {pid} has an empty activity")
            goal_impls[gid].add(pid)
            for aid in activity:
                action_impls[aid].add(pid)
        self._action_impls = [frozenset(s) for s in action_impls]  # A-GI-idx
        self._goal_impls = [frozenset(s) for s in goal_impls]  # G-GI-idx

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_library(cls, library: ImplementationLibrary) -> "AssociationGoalModel":
        """Index an :class:`ImplementationLibrary` into a model."""
        with obs.trace_span("model.from_library") as span:
            start = perf_counter()
            model = cls._build_from_library(library)
            if obs.metrics_enabled():
                model._record_build(perf_counter() - start)
            if span.is_recording:
                span.set_attrs(
                    implementations=model.num_implementations,
                    goals=model.num_goals,
                    actions=model.num_actions,
                )
        return model

    @classmethod
    def _build_from_library(
        cls, library: ImplementationLibrary
    ) -> "AssociationGoalModel":
        action_to_id: dict[ActionLabel, int] = {}
        goal_to_id: dict[GoalLabel, int] = {}
        actions: list[ActionLabel] = []
        goals: list[GoalLabel] = []
        impl_actions: list[frozenset[int]] = []
        impl_goal: list[int] = []
        for impl in library:
            gid = goal_to_id.get(impl.goal)
            if gid is None:
                gid = len(goals)
                goal_to_id[impl.goal] = gid
                goals.append(impl.goal)
            encoded = set()
            # Sorted iteration: otherwise action-id assignment would follow
            # set order, which for strings varies with PYTHONHASHSEED and
            # would make tie-breaking differ across processes.
            for label in sorted(impl.actions, key=str):
                aid = action_to_id.get(label)
                if aid is None:
                    aid = len(actions)
                    action_to_id[label] = aid
                    actions.append(label)
                encoded.add(aid)
            impl_actions.append(frozenset(encoded))
            impl_goal.append(gid)
        return cls(actions, goals, impl_actions, impl_goal)

    def _record_build(self, elapsed: float) -> None:
        """Report one index construction into the metrics registry."""
        registry = obs.get_registry()
        registry.histogram(
            "repro_model_build_seconds",
            "AssociationGoalModel index construction time.",
        ).observe(elapsed)
        registry.gauge(
            "repro_model_implementations",
            "Implementations in the most recently built model.",
        ).set(self.num_implementations)
        registry.gauge(
            "repro_model_goals", "Goals in the most recently built model."
        ).set(self.num_goals)
        registry.gauge(
            "repro_model_actions", "Actions in the most recently built model."
        ).set(self.num_actions)

    @classmethod
    def from_pairs(
        cls, pairs: Iterable[tuple[GoalLabel, Iterable[ActionLabel]]]
    ) -> "AssociationGoalModel":
        """Build a model directly from raw ``(goal, actions)`` pairs."""
        library = ImplementationLibrary()
        for goal, actions in pairs:
            library.add_pair(goal, actions)
        return cls.from_library(library)

    # ------------------------------------------------------------------
    # Sizes and label translation
    # ------------------------------------------------------------------

    @property
    def num_actions(self) -> int:
        """Number of distinct actions in the model."""
        return len(self._actions)

    @property
    def num_goals(self) -> int:
        """Number of distinct goals in the model."""
        return len(self._goals)

    @property
    def num_implementations(self) -> int:
        """Number of goal implementations indexed by the model."""
        return len(self._impl_actions)

    def action_id(self, label: ActionLabel) -> int:
        """Id of an action label; raises :class:`UnknownActionError`."""
        try:
            return self._action_to_id[label]
        except KeyError:
            raise UnknownActionError(label) from None

    def goal_id(self, label: GoalLabel) -> int:
        """Id of a goal label; raises :class:`UnknownGoalError`."""
        try:
            return self._goal_to_id[label]
        except KeyError:
            raise UnknownGoalError(label) from None

    def action_label(self, aid: int) -> ActionLabel:
        """Label of an action id."""
        return self._actions[aid]

    def goal_label(self, gid: int) -> GoalLabel:
        """Label of a goal id."""
        return self._goals[gid]

    def action_labels(self) -> list[ActionLabel]:
        """All action labels, in id order."""
        return list(self._actions)

    def goal_labels(self) -> list[GoalLabel]:
        """All goal labels, in id order."""
        return list(self._goals)

    def has_action(self, label: ActionLabel) -> bool:
        """``True`` when ``label`` is an indexed action."""
        return label in self._action_to_id

    def has_goal(self, label: GoalLabel) -> bool:
        """``True`` when ``label`` is an indexed goal."""
        return label in self._goal_to_id

    def encode_activity(
        self, activity: Iterable[ActionLabel], strict: bool = False
    ) -> frozenset[int]:
        """Translate action labels to ids.

        Unknown actions are silently dropped by default — a user activity
        routinely contains actions that appear in no implementation (e.g.
        buying napkins, which no recipe uses).  With ``strict=True`` an
        unknown action raises :class:`UnknownActionError` instead.
        """
        encoded: set[int] = set()
        for label in activity:
            aid = self._action_to_id.get(label)
            if aid is None:
                if strict:
                    raise UnknownActionError(label)
                continue
            encoded.add(aid)
        return frozenset(encoded)

    def decode_actions(self, ids: Iterable[int]) -> list[ActionLabel]:
        """Translate action ids back to labels."""
        return [self._actions[aid] for aid in ids]

    # ------------------------------------------------------------------
    # Raw index access (id level)
    # ------------------------------------------------------------------

    def implementation_actions(self, pid: int) -> frozenset[int]:
        """``GI-A-idx[pid]`` — the action ids of implementation ``pid``."""
        return self._impl_actions[pid]

    def implementation_goal(self, pid: int) -> int:
        """``GI-G-idx[pid]`` — the goal id of implementation ``pid``."""
        return self._impl_goal[pid]

    def implementations_of_action(self, aid: int) -> frozenset[int]:
        """``A-GI-idx[aid]`` — implementation ids containing action ``aid``."""
        return self._action_impls[aid]

    def implementations_of_goal(self, gid: int) -> frozenset[int]:
        """``G-GI-idx[gid]`` — implementation ids fulfilling goal ``gid``."""
        return self._goal_impls[gid]

    def implementation(self, pid: int) -> GoalImplementation:
        """Reconstruct implementation ``pid`` at the label level."""
        return GoalImplementation(
            goal=self._goals[self._impl_goal[pid]],
            actions=frozenset(self._actions[a] for a in self._impl_actions[pid]),
            impl_id=pid,
        )

    # ------------------------------------------------------------------
    # Space queries (paper Definitions 4.1 / 4.2, Equations 1-2)
    # ------------------------------------------------------------------

    def implementation_space(self, activity: frozenset[int]) -> set[int]:
        """``IS(H)`` — ids of implementations sharing any action with ``H``."""
        if obs.metrics_enabled():
            _count_space_query("implementation")
        if not obs.tracing_enabled():
            return self._implementation_space_ids(activity)
        with obs.trace_span("implementation_space") as span:
            space = self._implementation_space_ids(activity)
            span.set_attrs(activity_size=len(activity), size=len(space))
        return space

    def _implementation_space_ids(self, activity: frozenset[int]) -> set[int]:
        space: set[int] = set()
        for aid in activity:
            space |= self._action_impls[aid]
        return space

    def goal_space(self, activity: frozenset[int]) -> set[int]:
        """``GS(H)`` — goal ids reachable from the activity (Equation 1)."""
        if obs.metrics_enabled():
            _count_space_query("goal")
        if not obs.tracing_enabled():
            return self._goal_space_ids(activity)
        # The stage span contains the nested implementation_space span:
        # GS(H) is defined over IS(H), so its stage time includes the
        # subquery (the stage profiler keeps nested *same-name* spans from
        # double counting; distinct stages report their inclusive time).
        with obs.trace_span("goal_space") as span:
            space = self._goal_space_ids(activity)
            span.set_attrs(activity_size=len(activity), size=len(space))
        return space

    def _goal_space_ids(self, activity: frozenset[int]) -> set[int]:
        return {
            self._impl_goal[pid] for pid in self.implementation_space(activity)
        }

    def action_space(self, activity: frozenset[int]) -> set[int]:
        """``AS(H)`` — action ids co-occurring with the activity (Equation 2).

        Includes the activity's own actions when they co-occur; candidate
        generation subtracts ``H`` afterwards, matching Algorithm 4's
        ``CA <- AS(H) - H``.
        """
        if obs.metrics_enabled():
            _count_space_query("action")
        if not obs.tracing_enabled():
            return self._action_space_ids(activity)
        with obs.trace_span("action_space") as span:
            space = self._action_space_ids(activity)
            span.set_attrs(activity_size=len(activity), size=len(space))
        return space

    def _action_space_ids(self, activity: frozenset[int]) -> set[int]:
        space: set[int] = set()
        for pid in self.implementation_space(activity):
            space |= self._impl_actions[pid]
        return space

    def candidate_actions(self, activity: frozenset[int]) -> set[int]:
        """``AS(H) - H`` — the candidate set every strategy ranks."""
        return self.action_space(activity) - activity

    # ------------------------------------------------------------------
    # Derived statistics
    # ------------------------------------------------------------------

    def connectivity(self) -> float:
        """Average number of implementations an action participates in."""
        return sum(len(s) for s in self._action_impls) / len(self._action_impls)

    def action_frequencies(self) -> dict[int, float]:
        """Per-action frequency in the library: ``|A-GI-idx[a]| / |L|``.

        This is the quantity behind the paper's Figure 6 (how often the
        *recommended* actions appear in the implementation set).
        """
        total = len(self._impl_actions)
        return {
            aid: len(pids) / total
            for aid, pids in enumerate(self._action_impls)
        }

    def goal_completeness(self, gid: int, activity: frozenset[int]) -> float:
        """Best completeness of goal ``gid`` over its implementations.

        Completeness of one implementation is ``|A∩H| / |A|`` (Equation 3);
        a goal with several implementations is as complete as its most
        complete implementation.
        """
        best = 0.0
        for pid in self._goal_impls[gid]:
            impl_actions = self._impl_actions[pid]
            value = len(impl_actions & activity) / len(impl_actions)
            if value > best:
                best = value
        return best

    def stats(self) -> LibraryStats:
        """Library-level statistics recomputed from the indexes."""
        lengths = [len(s) for s in self._impl_actions]
        return LibraryStats(
            num_implementations=len(self._impl_actions),
            num_goals=len(self._goals),
            num_actions=len(self._actions),
            connectivity=self.connectivity(),
            avg_implementation_length=sum(lengths) / len(lengths),
            max_implementation_length=max(lengths),
            avg_implementations_per_goal=len(self._impl_actions) / len(self._goals),
        )

    def to_library(self) -> ImplementationLibrary:
        """Export the model back into a mutable library."""
        library = ImplementationLibrary()
        for pid in range(len(self._impl_actions)):
            library.add(self.implementation(pid))
        return library

    def restrict_to_goals(
        self, goals: Iterable[GoalLabel]
    ) -> "AssociationGoalModel":
        """Project the model onto a goal subset.

        Returns a fresh model containing only the implementations of the
        given goals — the domain-filtering operation ("only fitness goals",
        "only desserts").  Unknown goal labels are ignored; raises
        :class:`ModelError` when no implementation survives (the projection
        would be empty).
        """
        wanted = {
            self._goal_to_id[goal]
            for goal in goals
            if goal in self._goal_to_id
        }
        # Project at the id level via G-GI-idx: collect the surviving
        # implementation ids directly instead of round-tripping every
        # implementation through label-level objects and a fresh library.
        pids = sorted(pid for gid in wanted for pid in self._goal_impls[gid])
        if not pids:
            raise ModelError(
                "restriction matches no implementation; the projected "
                "model would be empty"
            )
        # Re-densify ids exactly as from_library would: goals in first-seen
        # order, actions in first-seen order of the per-implementation
        # label-sorted walk, duplicates collapsed.
        actions: list[ActionLabel] = []
        action_map: dict[int, int] = {}
        new_goals: list[GoalLabel] = []
        goal_map: dict[int, int] = {}
        impl_actions: list[frozenset[int]] = []
        impl_goal: list[int] = []
        seen: set[tuple[int, frozenset[int]]] = set()
        for pid in pids:
            old_actions = self._impl_actions[pid]
            old_gid = self._impl_goal[pid]
            key = (old_gid, old_actions)
            if key in seen:
                continue
            seen.add(key)
            new_gid = goal_map.get(old_gid)
            if new_gid is None:
                new_gid = len(new_goals)
                goal_map[old_gid] = new_gid
                new_goals.append(self._goals[old_gid])
            encoded = set()
            for aid in sorted(old_actions, key=lambda a: str(self._actions[a])):
                new_aid = action_map.get(aid)
                if new_aid is None:
                    new_aid = len(actions)
                    action_map[aid] = new_aid
                    actions.append(self._actions[aid])
                encoded.add(new_aid)
            impl_actions.append(frozenset(encoded))
            impl_goal.append(new_gid)
        return AssociationGoalModel(actions, new_goals, impl_actions, impl_goal)

    def goal_space_labels(self, activity: Iterable[ActionLabel]) -> set[GoalLabel]:
        """Label-level convenience wrapper over :meth:`goal_space`."""
        encoded = self.encode_activity(activity)
        return {self._goals[gid] for gid in self.goal_space(encoded)}

    def action_space_labels(self, activity: Iterable[ActionLabel]) -> set[ActionLabel]:
        """Label-level convenience wrapper over :meth:`action_space`."""
        encoded = self.encode_activity(activity)
        return {self._actions[aid] for aid in self.action_space(encoded)}
