"""Deterministic, seeded fault injection at the serving seams.

Resilience code that only runs when production breaks is untested code.
This module lets tests (and ``repro serve --fault-spec``) *make* the
serving stack break in controlled, reproducible ways, at three seams:

- ``model`` — :class:`~repro.service.ModelManager` snapshot/mutation
  (covers ``/recommend``, ``/recommend/batch`` and hot reload);
- ``cache`` — :class:`~repro.core.caching.LRUCache` lookups;
- ``storage`` — :mod:`repro.storage` load paths (where the retry
  wrappers from :mod:`repro.resilience.retry` earn their keep).

Three fault kinds are supported per rule: ``latency`` (sleep before
proceeding), ``exception`` (raise :class:`FaultInjectedError`) and
``slow_storage`` (latency that the retry layer's per-attempt budget can
classify as a transient stall).  Every rule has a probability and the
injector draws from one seeded :class:`random.Random`, so a given spec
and seed produce the same fault sequence run after run — failures found
under injection are *replayable*.

The harness is inert by default: :func:`inject` is a module-global
``None`` check until :func:`install_faults` installs an injector, so the
production hot path pays one attribute load and one comparison.

Spec format (``--fault-spec``, comma-separated rules)::

    site:kind[:probability[:delay_ms]]
    # e.g.  storage:exception:0.5  model:latency:1.0:25  cache:slow_storage

Probability defaults to ``1.0``; ``delay_ms`` (latency kinds only)
defaults to ``10``.  Prefix the whole spec with ``seed=N,`` to pick the
decision-sequence seed (default ``0``).
"""

from __future__ import annotations

import random
import threading
import time
from collections.abc import Callable
from dataclasses import dataclass

from repro import obs

#: Seams where :func:`inject` hooks are installed.
FAULT_SITES: tuple[str, ...] = ("model", "cache", "storage")

#: Supported fault behaviours per rule.
FAULT_KINDS: tuple[str, ...] = ("latency", "exception", "slow_storage")

#: Lock discipline (RL001): the injector's RNG draw is serialized so the
#: decision sequence stays deterministic under concurrent requests.
_GUARDED_BY = {
    "FaultInjector._rng": "_lock",
    "FaultInjector._injected": "_lock",
}


class FaultInjectedError(RuntimeError):
    """Raised by an ``exception`` fault rule.

    Deliberately *not* a :class:`~repro.exceptions.ReproError`: an
    injected fault models an infrastructure failure, so the HTTP layer
    surfaces it as ``500`` (and the storage retry wrapper treats it as
    transient), exactly like a real one.
    """

    def __init__(self, site: str) -> None:
        self.site = site
        super().__init__(f"injected fault at site {site!r}")


@dataclass(frozen=True)
class FaultRule:
    """One ``site:kind:probability:delay_ms`` clause of a fault spec."""

    site: str
    kind: str
    probability: float = 1.0
    delay_ms: float = 10.0

    def __post_init__(self) -> None:
        if self.site not in FAULT_SITES:
            raise ValueError(
                f"unknown fault site {self.site!r}; expected one of "
                f"{', '.join(FAULT_SITES)}"
            )
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{', '.join(FAULT_KINDS)}"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("fault probability must be in [0, 1]")
        if self.delay_ms < 0:
            raise ValueError("fault delay_ms must be >= 0")


class FaultInjector:
    """Applies :class:`FaultRule` s with a seeded decision sequence."""

    def __init__(
        self,
        rules: list[FaultRule],
        seed: int = 0,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self._rules: dict[str, list[FaultRule]] = {}
        for rule in rules:
            self._rules.setdefault(rule.site, []).append(rule)
        self.seed = seed
        self._rng = random.Random(seed)
        self._sleep = sleep
        self._lock = threading.Lock()
        self._injected: dict[tuple[str, str], int] = {}

    def with_seed(self, seed: int) -> "FaultInjector":
        """A fresh injector with the same rules but a different seed.

        Forked workers call this with ``seed ^ worker_index`` so each
        worker draws an *independent* fault decision sequence instead of
        replaying the parent's (see docs/resilience.md).
        """
        rules = [rule for site_rules in self._rules.values() for rule in site_rules]
        return FaultInjector(rules, seed=seed, sleep=self._sleep)

    def injected_counts(self) -> dict[tuple[str, str], int]:
        """``(site, kind) -> times fired``, for test assertions."""
        with self._lock:
            return dict(self._injected)

    def _record_locked(self, site: str, kind: str) -> None:
        key = (site, kind)
        self._injected[key] = self._injected.get(key, 0) + 1

    def fire(self, site: str) -> None:
        """Apply the matching rules for ``site`` (called via :func:`inject`)."""
        rules = self._rules.get(site)
        if not rules:
            return
        to_raise: FaultInjectedError | None = None
        delay = 0.0
        with self._lock:
            for rule in rules:
                # Always draw, even for probability-1 rules, so the
                # decision sequence (and thus determinism) does not
                # depend on which rules are configured.
                if self._rng.random() >= rule.probability:
                    continue
                self._record_locked(site, rule.kind)
                if obs.metrics_enabled():
                    obs.get_registry().counter(
                        "repro_faults_injected_total",
                        "Faults fired by the injection harness, by site "
                        "and kind.",
                        site=site,
                        kind=rule.kind,
                    ).inc()
                if rule.kind == "exception":
                    to_raise = FaultInjectedError(site)
                else:  # latency / slow_storage
                    delay = max(delay, rule.delay_ms / 1000.0)
        # Sleep and raise outside the lock so a latency fault on one
        # thread cannot serialize every other thread's decision draw.
        if delay > 0.0:
            self._sleep(delay)
        if to_raise is not None:
            raise to_raise


# The single module-global hook the seams consult.  Plain attribute +
# ``is None`` check keeps the disabled cost negligible.
_active: FaultInjector | None = None


def active_injector() -> FaultInjector | None:
    """The installed injector, or ``None`` when faults are disabled."""
    return _active


def install_faults(injector: FaultInjector) -> None:
    """Install ``injector`` as the process-wide fault source."""
    global _active
    _active = injector


def clear_faults() -> None:
    """Remove any installed injector (tests call this in teardown)."""
    global _active
    _active = None


def inject(site: str) -> None:
    """Fault hook: no-op unless an injector is installed."""
    injector = _active
    if injector is not None:
        injector.fire(site)


def parse_fault_spec(spec: str) -> FaultInjector:
    """Build a :class:`FaultInjector` from a ``--fault-spec`` string.

    Raises :class:`ValueError` on malformed input (unknown site/kind,
    out-of-range probability, non-numeric fields).
    """
    seed = 0
    clauses = [c.strip() for c in spec.split(",") if c.strip()]
    if clauses and clauses[0].startswith("seed="):
        try:
            seed = int(clauses[0][len("seed="):])
        except ValueError:
            raise ValueError(
                f"malformed fault-spec seed {clauses[0]!r}"
            ) from None
        clauses = clauses[1:]
    if not clauses:
        raise ValueError("fault spec contains no rules")
    rules = []
    for clause in clauses:
        parts = clause.split(":")
        if len(parts) < 2 or len(parts) > 4:
            raise ValueError(
                f"malformed fault rule {clause!r}; expected "
                "site:kind[:probability[:delay_ms]]"
            )
        site, kind = parts[0], parts[1]
        try:
            probability = float(parts[2]) if len(parts) > 2 else 1.0
            delay_ms = float(parts[3]) if len(parts) > 3 else 10.0
        except ValueError:
            raise ValueError(
                f"malformed fault rule {clause!r}; probability and "
                "delay_ms must be numbers"
            ) from None
        rules.append(FaultRule(site, kind, probability, delay_ms))
    return FaultInjector(rules, seed=seed)
