"""Bounded-concurrency admission control for the HTTP serving layer.

The serving pipeline is CPU-bound, so past a point extra concurrent
requests add queueing delay without adding throughput.  The
:class:`AdmissionController` enforces two limits in front of the work:

- ``max_inflight`` — how many requests may execute concurrently;
- ``max_queue`` — how many more may *wait* for an execution slot.

A request beyond both limits is **shed** immediately: the HTTP layer
answers ``429 {error, detail}`` with a ``Retry-After`` hint instead of
letting the connection sit in an unbounded backlog until the client
times out (the tail-at-scale argument: a fast "no" beats a slow maybe).
A queued request additionally respects its own deadline — there is no
point waiting for a slot longer than the caller is willing to wait for
the answer.

The controller publishes ``repro_queue_depth`` (a gauge of waiters) and
counts every rejection in ``repro_shed_requests_total{reason}`` where
``reason`` is one of :data:`SHED_REASONS`.  Ops endpoints (``/health``,
``/metrics``, ``/debug/*``) bypass admission entirely — an overloaded
server must stay observable.
"""

from __future__ import annotations

import time
from collections.abc import Callable

from repro import obs
from repro.resilience.deadlines import Deadline
from repro.utils.concurrency import make_condition

#: Bounded label set for ``repro_shed_requests_total{reason}``:
#: ``saturated`` — in-flight and queue both full; ``queue_timeout`` — a
#: slot did not free up while the request could still wait;
#: ``draining`` — the service is shutting down and not accepting work.
SHED_REASONS: tuple[str, ...] = ("saturated", "queue_timeout", "draining")

#: Lock discipline (RL001): every mutable field is guarded by ``_cond``.
_GUARDED_BY = {
    "AdmissionController._active": "_cond",
    "AdmissionController._waiters": "_cond",
    "AdmissionController._cond": "<final>",
}


def record_shed(reason: str) -> None:
    """Count one shed request in the metrics registry (if enabled)."""
    if obs.metrics_enabled():
        obs.get_registry().counter(
            "repro_shed_requests_total",
            "Requests rejected by admission control, by reason.",
            reason=reason if reason in SHED_REASONS else "other",
        ).inc()


class AdmissionController:
    """Bounded in-flight / bounded queue gate with deadline-aware waits.

    Usage (the HTTP layer)::

        admitted, reason = controller.try_acquire(deadline)
        if not admitted:
            ... answer 429 with Retry-After ...
        try:
            ... run the request ...
        finally:
            controller.release()
    """

    def __init__(
        self,
        max_inflight: int,
        max_queue: int,
        queue_timeout_seconds: float = 0.5,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        if max_queue < 0:
            raise ValueError("max_queue must be >= 0")
        if queue_timeout_seconds < 0:
            raise ValueError("queue_timeout_seconds must be >= 0")
        self.max_inflight = max_inflight
        self.max_queue = max_queue
        self.queue_timeout_seconds = queue_timeout_seconds
        self._clock = clock
        self._cond = make_condition("AdmissionController._cond")
        self._active = 0
        self._waiters = 0

    def _publish_queue_depth_locked(self) -> None:
        if obs.metrics_enabled():
            obs.get_registry().gauge(
                "repro_queue_depth",
                "Requests waiting for an admission slot.",
            ).set(self._waiters)

    def try_acquire(
        self, deadline: Deadline | None = None
    ) -> tuple[bool, str | None]:
        """Claim an execution slot, waiting briefly if the server is busy.

        Returns ``(True, None)`` when admitted — the caller **must**
        pair it with :meth:`release`.  Returns ``(False, reason)`` when
        shed, with ``reason`` in :data:`SHED_REASONS`.
        """
        with self._cond:
            if self._active < self.max_inflight:
                self._active += 1
                return True, None
            if self._waiters >= self.max_queue:
                return False, "saturated"
            # Wait for a slot, but never longer than the request itself
            # is allowed to take.
            budget = self.queue_timeout_seconds
            if deadline is not None:
                budget = min(budget, deadline.remaining_seconds())
            if budget <= 0:
                return False, "queue_timeout"
            expires = self._clock() + budget
            self._waiters += 1
            self._publish_queue_depth_locked()
            try:
                while self._active >= self.max_inflight:
                    remaining = expires - self._clock()
                    if remaining <= 0 or not self._cond.wait(remaining):
                        # Condition.wait returning False is its own
                        # timeout signal; re-deriving from the clock
                        # covers spurious wakeups near the boundary.
                        if self._active < self.max_inflight:
                            break
                        return False, "queue_timeout"
                self._active += 1
                return True, None
            finally:
                self._waiters -= 1
                self._publish_queue_depth_locked()

    def release(self) -> None:
        """Return an execution slot and wake one waiter."""
        with self._cond:
            if self._active <= 0:
                raise RuntimeError("release() without matching try_acquire()")
            self._active -= 1
            self._cond.notify()

    def active(self) -> int:
        """Requests currently holding an execution slot."""
        with self._cond:
            return self._active

    def waiting(self) -> int:
        """Requests currently queued for a slot."""
        with self._cond:
            return self._waiters
