"""Per-request deadlines, propagated via ContextVar, checked between stages.

A deadline is a point on the monotonic clock by which a request must have
answered.  The HTTP layer creates one per request (from the
``X-Request-Deadline-Ms`` header or the service's ``--default-deadline-ms``)
and installs it in a :class:`contextvars.ContextVar`, so every function on
the request's call path — however deep — can ask "is it still worth
continuing?" without threading a parameter through the recommender stack.

Checkpoints sit at the natural seams of the paper's pipeline:

- between the four recommend stages (``implementation_space`` →
  ``goal_space`` → ``action_space`` → ``rank``) in
  :class:`~repro.core.recommender.GoalRecommender`;
- before every scoring chunk of the batch path
  (:meth:`~repro.core.vectorized.BatchRecommender.recommend_many`);
- while waiting in the admission queue
  (:class:`~repro.resilience.admission.AdmissionController`).

An expired checkpoint raises :class:`DeadlineExceededError` carrying the
**stage reached**, which the HTTP layer maps to ``504`` (and records on the
request span as ``deadline_stage``).  With no deadline installed every
checkpoint is a single ``ContextVar.get() is None`` test — cheap enough to
leave in the hot path unconditionally.

Clocks are injectable (``Deadline(expires_at, clock=...)``) so tests can
drive expiry deterministically instead of sleeping.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from contextvars import ContextVar
from collections.abc import Callable, Iterator

from repro import obs
from repro.exceptions import ReproError

#: The bounded set of checkpoint names a deadline can expire at; used as
#: the ``stage`` label of ``repro_deadline_exceeded_total`` (bounded label
#: values keep the family's cardinality fixed).
DEADLINE_STAGES: tuple[str, ...] = (
    "admission",
    "implementation_space",
    "goal_space",
    "action_space",
    "rank",
    "batch",
)

_ACTIVE: ContextVar["Deadline | None"] = ContextVar(
    "repro_resilience_deadline", default=None
)


class DeadlineExceededError(ReproError):
    """The request's deadline expired; ``stage`` names the checkpoint.

    ``stage`` is one of :data:`DEADLINE_STAGES` — the pipeline stage the
    request was *about to enter* when the deadline fired.  The HTTP layer
    maps this to ``504 {error, detail}`` with the stage in the detail.
    """

    def __init__(self, stage: str, budget_ms: float | None = None) -> None:
        self.stage = stage
        self.budget_ms = budget_ms
        budget = (
            f" (budget {budget_ms:.0f} ms)" if budget_ms is not None else ""
        )
        super().__init__(
            f"deadline exceeded entering stage {stage!r}{budget}"
        )


class Deadline:
    """An absolute expiry on an injectable monotonic clock."""

    __slots__ = ("expires_at", "budget_ms", "_clock")

    def __init__(
        self,
        expires_at: float,
        budget_ms: float | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.expires_at = expires_at
        self.budget_ms = budget_ms
        self._clock = clock

    @classmethod
    def after_ms(
        cls, budget_ms: float, clock: Callable[[], float] = time.monotonic
    ) -> "Deadline":
        """A deadline ``budget_ms`` milliseconds from now."""
        return cls(clock() + budget_ms / 1000.0, budget_ms, clock)

    def remaining_seconds(self) -> float:
        """Seconds left before expiry (negative once expired)."""
        return self.expires_at - self._clock()

    def expired(self) -> bool:
        """``True`` once the clock has passed the expiry point."""
        return self._clock() >= self.expires_at

    def check(self, stage: str) -> None:
        """Raise :class:`DeadlineExceededError` if expired, else return."""
        if self.expired():
            raise DeadlineExceededError(stage, self.budget_ms)


def active_deadline() -> Deadline | None:
    """The deadline of the current context, or ``None``."""
    return _ACTIVE.get()


def check_deadline(stage: str) -> None:
    """Checkpoint: no-op without an active deadline, else :meth:`~Deadline.check`."""
    deadline = _ACTIVE.get()
    if deadline is not None:
        deadline.check(stage)


@contextmanager
def deadline_scope(deadline: Deadline | None) -> Iterator[None]:
    """Install ``deadline`` for the duration of the ``with`` block.

    Passing ``None`` explicitly clears any inherited deadline, so nested
    scopes behave predictably.
    """
    token = _ACTIVE.set(deadline)
    try:
        yield
    finally:
        _ACTIVE.reset(token)


def record_deadline_exceeded(stage: str) -> None:
    """Count one deadline expiry in the metrics registry (if enabled)."""
    if obs.metrics_enabled():
        obs.get_registry().counter(
            "repro_deadline_exceeded_total",
            "Requests abandoned because their deadline expired, by the "
            "pipeline stage reached.",
            stage=stage if stage in DEADLINE_STAGES else "other",
        ).inc()
