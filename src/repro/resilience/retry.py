"""Deterministic retry with exponential backoff.

Used by the :mod:`repro.storage` load paths (via
:class:`~repro.storage.resilient.RetryingLibraryStore`) to absorb
transient failures — including the ones the fault-injection harness
manufactures on purpose.  The policy is deliberately boring:

- a fixed attempt budget (no unbounded loops);
- exponential backoff with a cap (no thundering retries);
- an injectable ``sleep`` so tests run in microseconds;
- **no jitter** — backoff here shields a single process's load path,
  not a fleet hammering a shared dependency, and determinism (RL005
  spirit: reproducible control flow) is worth more than decorrelation.

Every performed retry is counted in ``repro_storage_retries_total``.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass
from typing import TypeVar

from repro import obs

T = TypeVar("T")


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to try and how long to wait between attempts."""

    max_attempts: int = 3
    base_delay_seconds: float = 0.05
    max_delay_seconds: float = 1.0
    multiplier: float = 2.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay_seconds < 0:
            raise ValueError("base_delay_seconds must be >= 0")
        if self.max_delay_seconds < 0:
            raise ValueError("max_delay_seconds must be >= 0")
        if self.multiplier < 1:
            raise ValueError("multiplier must be >= 1")

    def delay_for(self, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (1-based)."""
        delay = self.base_delay_seconds * self.multiplier ** (attempt - 1)
        return min(delay, self.max_delay_seconds)


def _record_retry() -> None:
    if obs.metrics_enabled():
        obs.get_registry().counter(
            "repro_storage_retries_total",
            "Retries performed by the storage resilience wrappers.",
        ).inc()


def retry_call(
    func: Callable[[], T],
    policy: RetryPolicy,
    retry_on: tuple[type[BaseException], ...],
    sleep: Callable[[float], None] | None = None,
    on_retry: Callable[[int, BaseException], None] | None = None,
) -> T:
    """Call ``func`` up to ``policy.max_attempts`` times.

    Only exceptions matching ``retry_on`` trigger a retry; anything else
    propagates immediately.  The final failing exception propagates
    unwrapped, so callers see the same exception types with or without
    the wrapper.  ``on_retry(attempt, exc)`` is invoked before each
    backoff sleep (for logging).
    """
    if sleep is None:
        import time

        sleep = time.sleep
    attempt = 1
    while True:
        try:
            return func()
        except retry_on as exc:
            if attempt >= policy.max_attempts:
                raise
            _record_retry()
            if on_retry is not None:
                on_retry(attempt, exc)
            delay = policy.delay_for(attempt)
            if delay > 0:
                sleep(delay)
            attempt += 1
