"""Resilience primitives for the serving layer.

The HTTP service in :mod:`repro.service` fronts a CPU-bound ranking
pipeline; under saturating traffic the failure mode of a naive server is
collapse (every request queues, every request times out, and a container
stop kills whatever was in flight).  This package provides the standard
countermeasures as small, dependency-free building blocks:

- :mod:`repro.resilience.deadlines` — per-request deadlines propagated via
  :class:`contextvars.ContextVar` and checked between the pipeline stages
  (``IS -> GS -> AS -> rank``, paper §4-5) so an expired request stops
  burning CPU at the next stage boundary instead of finishing a ranking
  nobody is waiting for;
- :mod:`repro.resilience.admission` — a bounded in-flight/queue admission
  controller: excess requests are *shed* with a clear signal (HTTP 429 +
  ``Retry-After``) instead of queueing until collapse (the tail-at-scale
  load-shedding argument);
- :mod:`repro.resilience.retry` — deterministic retry-with-exponential-
  backoff for transient failures (used by the :mod:`repro.storage` load
  paths);
- :mod:`repro.resilience.faults` — a deterministic, seeded fault-injection
  harness with hooks at the model-manager, cache and storage seams, so the
  failure behaviors above are *testable* (latency, exceptions and slow
  storage on demand, reproducible run to run).

Everything here is inert by default: no deadline is active unless one is
installed, no admission controller exists unless the service configures
one, and the fault injector is a module-level ``None`` check until a spec
is installed (``repro serve --fault-spec`` or a test fixture).

See ``docs/resilience.md`` for the end-to-end semantics (shedding,
deadline propagation, the drain sequence and the fault-spec format).
"""

from repro.resilience.admission import AdmissionController, record_shed
from repro.resilience.deadlines import (
    DEADLINE_STAGES,
    Deadline,
    DeadlineExceededError,
    active_deadline,
    check_deadline,
    deadline_scope,
    record_deadline_exceeded,
)
from repro.resilience.faults import (
    FAULT_KINDS,
    FAULT_SITES,
    FaultInjectedError,
    FaultInjector,
    FaultRule,
    active_injector,
    clear_faults,
    inject,
    install_faults,
    parse_fault_spec,
)
from repro.resilience.retry import RetryPolicy, retry_call

__all__ = [
    "AdmissionController",
    "record_shed",
    "DEADLINE_STAGES",
    "Deadline",
    "DeadlineExceededError",
    "active_deadline",
    "check_deadline",
    "deadline_scope",
    "record_deadline_exceeded",
    "FAULT_KINDS",
    "FAULT_SITES",
    "FaultInjectedError",
    "FaultInjector",
    "FaultRule",
    "active_injector",
    "clear_faults",
    "inject",
    "install_faults",
    "parse_fault_spec",
    "RetryPolicy",
    "retry_call",
]
