"""JSON file persistence for implementation libraries."""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.core.library import ImplementationLibrary
from repro.data.loaders import library_from_dict, library_to_dict
from repro.exceptions import DataError, StorageError
from repro.resilience.faults import inject
from repro.storage.base import LibraryStore


class JsonLibraryStore(LibraryStore):
    """Store a library as a single JSON document at ``path``.

    Writes are crash-atomic: the document is written to a temporary
    sibling, flushed and fsync'd, then atomically renamed over the
    destination (and the directory entry fsync'd), so a process killed at
    any instant mid-save leaves either the old library or the new one on
    disk — never a torn file.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)

    def save(self, library: ImplementationLibrary) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp_path = self.path.with_suffix(self.path.suffix + ".tmp")
        try:
            with tmp_path.open("w", encoding="utf-8") as handle:
                json.dump(library_to_dict(library), handle)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_path, self.path)
            self._fsync_directory(self.path.parent)
        except OSError as exc:
            raise StorageError(f"cannot save library to {self.path}: {exc}") from exc

    @staticmethod
    def _fsync_directory(directory: Path) -> None:
        # Persist the rename itself; platforms without directory fds
        # (e.g. Windows) simply skip this step.
        try:
            fd = os.open(directory, os.O_RDONLY)
        except OSError:
            return
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    def load(self) -> ImplementationLibrary:
        inject("storage")
        if not self.path.exists():
            raise StorageError(f"no library saved at {self.path}")
        try:
            with self.path.open("r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            raise StorageError(f"cannot load library from {self.path}: {exc}") from exc
        try:
            return library_from_dict(payload)
        except DataError as exc:
            raise StorageError(str(exc)) from exc

    def exists(self) -> bool:
        return self.path.exists()
