"""JSON file persistence for implementation libraries."""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.library import ImplementationLibrary
from repro.data.loaders import library_from_dict, library_to_dict
from repro.exceptions import DataError, StorageError
from repro.resilience.faults import inject
from repro.storage.base import LibraryStore


class JsonLibraryStore(LibraryStore):
    """Store a library as a single JSON document at ``path``.

    Writes go through a temporary sibling file followed by an atomic rename,
    so a crash mid-save never corrupts a previously saved library.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)

    def save(self, library: ImplementationLibrary) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp_path = self.path.with_suffix(self.path.suffix + ".tmp")
        try:
            with tmp_path.open("w", encoding="utf-8") as handle:
                json.dump(library_to_dict(library), handle)
            tmp_path.replace(self.path)
        except OSError as exc:
            raise StorageError(f"cannot save library to {self.path}: {exc}") from exc

    def load(self) -> ImplementationLibrary:
        inject("storage")
        if not self.path.exists():
            raise StorageError(f"no library saved at {self.path}")
        try:
            with self.path.open("r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            raise StorageError(f"cannot load library from {self.path}: {exc}") from exc
        try:
            return library_from_dict(payload)
        except DataError as exc:
            raise StorageError(str(exc)) from exc

    def exists(self) -> bool:
        return self.path.exists()
