"""SQLite persistence with in-database space queries.

The schema normalizes the association-based goal model exactly as the
paper's index structures prescribe:

- ``actions(id, label)`` — ``A-idx``;
- ``goals(id, label)`` — ``G-idx``;
- ``implementations(id, goal_id)`` — ``GI-G-idx``;
- ``implementation_actions(impl_id, action_id)`` — simultaneously
  ``GI-A-idx`` (scan by ``impl_id``) and ``A-GI-idx`` (the
  ``idx_ia_action`` index makes the action → implementations direction an
  index lookup).

Besides save/load, the store answers the paper's Equation 1/2 space queries
directly in SQL (:meth:`goal_space_sql`, :meth:`action_space_sql`), which is
the "hundreds or millions of implementations" deployment path Section 4
motivates: the library never needs to fit in application memory.
"""

from __future__ import annotations

import sqlite3
from collections.abc import Iterable
from pathlib import Path

from repro.core.entities import ActionLabel, GoalLabel
from repro.core.library import ImplementationLibrary
from repro.exceptions import StorageError
from repro.resilience.faults import inject
from repro.storage.base import LibraryStore

_SCHEMA = """
CREATE TABLE IF NOT EXISTS actions (
    id INTEGER PRIMARY KEY,
    label TEXT NOT NULL UNIQUE
);
CREATE TABLE IF NOT EXISTS goals (
    id INTEGER PRIMARY KEY,
    label TEXT NOT NULL UNIQUE
);
CREATE TABLE IF NOT EXISTS implementations (
    id INTEGER PRIMARY KEY,
    goal_id INTEGER NOT NULL REFERENCES goals(id)
);
CREATE TABLE IF NOT EXISTS implementation_actions (
    impl_id INTEGER NOT NULL REFERENCES implementations(id),
    action_id INTEGER NOT NULL REFERENCES actions(id),
    PRIMARY KEY (impl_id, action_id)
) WITHOUT ROWID;
CREATE INDEX IF NOT EXISTS idx_ia_action
    ON implementation_actions(action_id, impl_id);
CREATE INDEX IF NOT EXISTS idx_impl_goal
    ON implementations(goal_id);
"""


class SqliteLibraryStore(LibraryStore):
    """Store a library in a SQLite database at ``path``.

    ``":memory:"`` is accepted for ephemeral stores (useful in tests).
    The connection is opened lazily and kept for the store's lifetime; use
    the store as a context manager or call :meth:`close` to release it.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = str(path)
        self._connection: sqlite3.Connection | None = None

    # ------------------------------------------------------------------
    # Connection lifecycle
    # ------------------------------------------------------------------

    def _connect(self) -> sqlite3.Connection:
        if self._connection is None:
            try:
                self._connection = sqlite3.connect(self.path)
                # WAL keeps readers working off the last committed
                # checkpoint while a save transaction is in flight, and a
                # process killed mid-save rolls back to the previous
                # library on the next open instead of leaving a torn
                # database.  (In-memory databases ignore the pragma.)
                self._connection.execute("PRAGMA journal_mode=WAL")
                self._connection.execute("PRAGMA synchronous=FULL")
                self._connection.executescript(_SCHEMA)
            except sqlite3.Error as exc:
                raise StorageError(
                    f"cannot open sqlite store at {self.path}: {exc}"
                ) from exc
        return self._connection

    def close(self) -> None:
        """Close the underlying connection (no-op when never opened)."""
        if self._connection is not None:
            self._connection.close()
            self._connection = None

    def __enter__(self) -> "SqliteLibraryStore":
        self._connect()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # LibraryStore interface
    # ------------------------------------------------------------------

    def save(self, library: ImplementationLibrary) -> None:
        connection = self._connect()
        try:
            with connection:  # one transaction: replace everything
                connection.execute("DELETE FROM implementation_actions")
                connection.execute("DELETE FROM implementations")
                connection.execute("DELETE FROM actions")
                connection.execute("DELETE FROM goals")
                action_ids: dict[ActionLabel, int] = {}
                goal_ids: dict[GoalLabel, int] = {}
                for impl in library:
                    gid = goal_ids.get(impl.goal)
                    if gid is None:
                        gid = len(goal_ids)
                        goal_ids[impl.goal] = gid
                        connection.execute(
                            "INSERT INTO goals (id, label) VALUES (?, ?)",
                            (gid, str(impl.goal)),
                        )
                    connection.execute(
                        "INSERT INTO implementations (id, goal_id) VALUES (?, ?)",
                        (impl.impl_id, gid),
                    )
                    for label in sorted(map(str, impl.actions)):
                        aid = action_ids.get(label)
                        if aid is None:
                            aid = len(action_ids)
                            action_ids[label] = aid
                            connection.execute(
                                "INSERT INTO actions (id, label) VALUES (?, ?)",
                                (aid, label),
                            )
                        connection.execute(
                            "INSERT INTO implementation_actions "
                            "(impl_id, action_id) VALUES (?, ?)",
                            (impl.impl_id, aid),
                        )
        except sqlite3.Error as exc:
            raise StorageError(f"cannot save library: {exc}") from exc

    def load(self) -> ImplementationLibrary:
        inject("storage")
        connection = self._connect()
        try:
            rows = connection.execute(
                """
                SELECT i.id, g.label, a.label
                FROM implementations i
                JOIN goals g ON g.id = i.goal_id
                JOIN implementation_actions ia ON ia.impl_id = i.id
                JOIN actions a ON a.id = ia.action_id
                ORDER BY i.id, a.id
                """
            ).fetchall()
        except sqlite3.Error as exc:
            raise StorageError(f"cannot load library: {exc}") from exc
        if not rows:
            raise StorageError(f"no library saved at {self.path}")
        library = ImplementationLibrary()
        current_impl: int | None = None
        current_goal = ""
        current_actions: list[str] = []
        for impl_id, goal, action in rows:
            if impl_id != current_impl:
                if current_impl is not None:
                    library.add_pair(current_goal, current_actions)
                current_impl = impl_id
                current_goal = goal
                current_actions = []
            current_actions.append(action)
        library.add_pair(current_goal, current_actions)
        return library

    def exists(self) -> bool:
        if self.path != ":memory:" and not Path(self.path).exists():
            return False
        try:
            row = self._connect().execute(
                "SELECT COUNT(*) FROM implementations"
            ).fetchone()
        except (sqlite3.Error, StorageError):
            return False
        return row is not None and bool(row[0])

    # ------------------------------------------------------------------
    # In-database space queries (paper Equations 1-2 in SQL)
    # ------------------------------------------------------------------

    def goal_space_sql(self, activity: Iterable[ActionLabel]) -> set[str]:
        """``GS(H)`` computed entirely inside SQLite."""
        labels = [str(a) for a in activity]
        if not labels:
            return set()
        connection = self._connect()
        placeholders = ",".join("?" for _ in labels)
        rows = connection.execute(
            f"""
            SELECT DISTINCT g.label
            FROM actions a
            JOIN implementation_actions ia ON ia.action_id = a.id
            JOIN implementations i ON i.id = ia.impl_id
            JOIN goals g ON g.id = i.goal_id
            WHERE a.label IN ({placeholders})
            """,
            labels,
        ).fetchall()
        return {row[0] for row in rows}

    def action_space_sql(self, activity: Iterable[ActionLabel]) -> set[str]:
        """``AS(H)`` computed entirely inside SQLite."""
        labels = [str(a) for a in activity]
        if not labels:
            return set()
        connection = self._connect()
        placeholders = ",".join("?" for _ in labels)
        rows = connection.execute(
            f"""
            SELECT DISTINCT a2.label
            FROM actions a
            JOIN implementation_actions ia ON ia.action_id = a.id
            JOIN implementation_actions ia2 ON ia2.impl_id = ia.impl_id
            JOIN actions a2 ON a2.id = ia2.action_id
            WHERE a.label IN ({placeholders})
            """,
            labels,
        ).fetchall()
        return {row[0] for row in rows}

    # ------------------------------------------------------------------
    # In-database ranking (Breadth entirely in SQL)
    # ------------------------------------------------------------------

    def breadth_sql(
        self, activity: Iterable[ActionLabel], k: int = 10
    ) -> list[tuple[str, float]]:
        """The Breadth ranking computed entirely inside SQLite.

        Implements Algorithm 2 as one aggregation query: a CTE counts each
        touched implementation's overlap with the activity (``comm``), then
        every non-activity action of those implementations accumulates the
        overlaps.  Returns ``(action_label, score)`` pairs, best first.
        Scores match the reference :class:`BreadthStrategy` exactly; within
        equal scores the SQL path orders alphabetically by label (the
        in-memory strategy orders by its internal action ids).
        """
        if k <= 0:
            raise StorageError(f"k must be positive, got {k}")
        labels = sorted({str(a) for a in activity})
        if not labels:
            return []
        connection = self._connect()
        placeholders = ",".join("?" for _ in labels)
        rows = connection.execute(
            f"""
            WITH activity AS (
                SELECT id AS action_id FROM actions
                WHERE label IN ({placeholders})
            ),
            touched AS (
                SELECT ia.impl_id, COUNT(*) AS comm
                FROM implementation_actions ia
                JOIN activity a ON a.action_id = ia.action_id
                GROUP BY ia.impl_id
            )
            SELECT act.label, SUM(t.comm) AS score
            FROM touched t
            JOIN implementation_actions ia2 ON ia2.impl_id = t.impl_id
            JOIN actions act ON act.id = ia2.action_id
            WHERE ia2.action_id NOT IN (SELECT action_id FROM activity)
            GROUP BY ia2.action_id
            ORDER BY score DESC, act.label ASC
            LIMIT ?
            """,
            (*labels, k),
        ).fetchall()
        return [(label, float(score)) for label, score in rows]

    def closest_implementations_sql(
        self, activity: Iterable[ActionLabel], k: int = 10
    ) -> list[tuple[str, int, int]]:
        """Focus_cl's implementation ranking inside SQLite.

        Returns up to ``k`` ``(goal_label, impl_id, remaining)`` rows for
        the implementations sharing actions with the activity, fewest
        remaining actions first (complete implementations excluded) —
        the per-implementation core of Algorithm 1.
        """
        if k <= 0:
            raise StorageError(f"k must be positive, got {k}")
        labels = sorted({str(a) for a in activity})
        if not labels:
            return []
        connection = self._connect()
        placeholders = ",".join("?" for _ in labels)
        rows = connection.execute(
            f"""
            WITH activity AS (
                SELECT id AS action_id FROM actions
                WHERE label IN ({placeholders})
            ),
            touched AS (
                SELECT ia.impl_id, COUNT(*) AS comm
                FROM implementation_actions ia
                JOIN activity a ON a.action_id = ia.action_id
                GROUP BY ia.impl_id
            ),
            sizes AS (
                SELECT impl_id, COUNT(*) AS total
                FROM implementation_actions GROUP BY impl_id
            )
            SELECT g.label, t.impl_id, (s.total - t.comm) AS remaining
            FROM touched t
            JOIN sizes s ON s.impl_id = t.impl_id
            JOIN implementations i ON i.id = t.impl_id
            JOIN goals g ON g.id = i.goal_id
            WHERE s.total > t.comm
            ORDER BY remaining ASC, t.impl_id ASC
            LIMIT ?
            """,
            (*labels, k),
        ).fetchall()
        return [(goal, int(pid), int(remaining)) for goal, pid, remaining in rows]
