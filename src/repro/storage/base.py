"""Abstract interface of library persistence backends."""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.core.library import ImplementationLibrary


class LibraryStore(ABC):
    """Save/load contract every persistence backend fulfills.

    Implementations must guarantee that ``load(save(library))`` returns a
    library with the same ``(goal, actions)`` pairs in the same order (ids
    are reassigned deterministically by insertion order, so equality of the
    pair sequence implies equality of ids).
    """

    @abstractmethod
    def save(self, library: ImplementationLibrary) -> None:
        """Persist ``library``, replacing any previously saved content."""

    @abstractmethod
    def load(self) -> ImplementationLibrary:
        """Load the previously saved library.

        Raises :class:`~repro.exceptions.StorageError` when nothing was
        saved or the stored content is unreadable.
        """

    @abstractmethod
    def exists(self) -> bool:
        """``True`` when the backend currently holds a saved library."""
