"""Retrying decorator around any :class:`LibraryStore`.

Load paths are where transient failures bite: a library file being
atomically replaced by a writer, a briefly-locked SQLite database, or a
fault the injection harness planted on purpose.
:class:`RetryingLibraryStore` wraps any backend and retries its
:meth:`load` with the deterministic exponential backoff from
:mod:`repro.resilience.retry`; ``save`` and ``exists`` pass straight
through (a failed save after a partial write is not safely repeatable
from this layer — the backends' own atomic-rename/transaction semantics
handle that).

The final attempt's exception propagates unwrapped, so callers observe
the same :class:`~repro.exceptions.StorageError` contract as with the
bare backend.  Note the trade-off of retrying on ``StorageError``: a
*permanent* failure (missing file, corrupt payload) also gets
``max_attempts`` tries before surfacing.  The default policy spends at
most ~0.15 s on that; pass a narrower ``retry_on`` if the distinction
matters.
"""

from __future__ import annotations

from collections.abc import Callable

import logging

from repro.core.library import ImplementationLibrary
from repro.exceptions import StorageError
from repro.obs import get_logger, log_event
from repro.resilience.faults import FaultInjectedError
from repro.resilience.retry import RetryPolicy, retry_call
from repro.storage.base import LibraryStore

_LOG = get_logger("repro.storage.resilient")


class RetryingLibraryStore(LibraryStore):
    """Wrap ``inner`` so transient ``load`` failures are retried."""

    def __init__(
        self,
        inner: LibraryStore,
        policy: RetryPolicy | None = None,
        retry_on: tuple[type[BaseException], ...] = (
            StorageError,
            FaultInjectedError,
            OSError,
        ),
        sleep: Callable[[float], None] | None = None,
    ) -> None:
        self.inner = inner
        self.policy = policy if policy is not None else RetryPolicy()
        self.retry_on = retry_on
        self._sleep = sleep

    def _log_retry(self, attempt: int, exc: BaseException) -> None:
        log_event(
            _LOG,
            "storage.retry",
            level=logging.WARNING,
            attempt=attempt,
            max_attempts=self.policy.max_attempts,
            error=str(exc),
        )

    def save(self, library: ImplementationLibrary) -> None:
        self.inner.save(library)

    def load(self) -> ImplementationLibrary:
        return retry_call(
            self.inner.load,
            self.policy,
            retry_on=self.retry_on,
            sleep=self._sleep,
            on_retry=self._log_retry,
        )

    def exists(self) -> bool:
        return self.inner.exists()
