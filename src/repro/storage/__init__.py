"""Persistence backends for goal implementation libraries.

Two interchangeable stores implement :class:`LibraryStore`:

- :class:`JsonLibraryStore` — one self-contained JSON document; ideal for
  freezing experiment inputs.
- :class:`SqliteLibraryStore` — a normalized SQLite schema that also
  materializes the paper's inverted index (``A-GI-idx``) as a table, so the
  space queries of Section 4 can be answered *inside the database* without
  loading the library (``goal_space_sql`` / ``action_space_sql``).

:class:`RetryingLibraryStore` wraps either backend with deterministic
retry-with-backoff on the load path (see :mod:`repro.resilience`).
"""

from repro.storage.base import LibraryStore
from repro.storage.json_store import JsonLibraryStore
from repro.storage.resilient import RetryingLibraryStore
from repro.storage.sqlite_store import SqliteLibraryStore

__all__ = [
    "LibraryStore",
    "JsonLibraryStore",
    "RetryingLibraryStore",
    "SqliteLibraryStore",
]
