"""Zero-copy model publication over ``multiprocessing.shared_memory``.

The frozen model's scoring state is pure numeric arrays — CSR matrices,
interned index arrays, the co-occurrence index — which is exactly the
kind of state POSIX shared memory serves well.  The multi-worker parent
builds the :class:`~repro.core.vectorized.BatchRecommender` once, packs
every exported array into **one** shared segment, and each forked worker
reconstructs NumPy views over the same physical pages: N workers cost one
model's worth of RAM, and nobody re-runs the sparse products.

Layout: a contiguous arena of 64-byte-aligned array blobs.  The manifest
(name → dtype/shape/offset) travels with the object across ``fork``, so
children never parse headers — they slice the buffer directly.  The
arrays are treated as read-only by convention: every consumer of the
rebuilt engine only ever reads them (the engine is immutable after
construction), and the parent keeps the segment alive until shutdown.
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

#: Alignment of each array blob inside the arena.  64 bytes covers every
#: dtype's alignment requirement and keeps rows cache-line aligned.
_ALIGN = 64


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) & ~(_ALIGN - 1)


@dataclass(frozen=True)
class _ArraySpec:
    """Manifest entry for one array blob in the arena."""

    dtype: str
    shape: tuple[int, ...]
    offset: int
    nbytes: int


class SharedModelArena:
    """One shared-memory segment holding a dict of NumPy arrays.

    Built by the parent from
    :meth:`~repro.core.vectorized.BatchRecommender.export_arrays`;
    :meth:`views` reconstructs the dict as zero-copy views in any process
    that inherited the object (fork) or reattached by :attr:`name`.

    Lifecycle: the creating process owns the segment and must call
    :meth:`close` (which also unlinks) when serving stops; forked readers
    simply drop their references — the views keep the mapping alive while
    they exist.
    """

    def __init__(self, arrays: dict[str, np.ndarray], name: str | None = None) -> None:
        specs: dict[str, _ArraySpec] = {}
        offset = 0
        materialized: dict[str, np.ndarray] = {}
        for key, value in arrays.items():
            array = np.ascontiguousarray(value)
            materialized[key] = array
            offset = _aligned(offset)
            specs[key] = _ArraySpec(
                dtype=array.dtype.str,
                shape=tuple(array.shape),
                offset=offset,
                nbytes=array.nbytes,
            )
            offset += array.nbytes
        self._specs = specs
        self._size = max(offset, 1)  # shared_memory rejects size 0
        self._shm = shared_memory.SharedMemory(
            create=True, size=self._size, name=name
        )
        self._owner = True
        buffer = self._shm.buf
        for key, array in materialized.items():
            spec = specs[key]
            if spec.nbytes == 0:
                continue
            view: np.ndarray = np.ndarray(
                spec.shape, dtype=np.dtype(spec.dtype),
                buffer=buffer, offset=spec.offset,
            )
            view[...] = array

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def name(self) -> str:
        """The OS-level segment name (``/dev/shm`` entry on Linux)."""
        return self._shm.name

    @property
    def size_bytes(self) -> int:
        """Total bytes mapped for the arena."""
        return self._size

    def keys(self) -> list[str]:
        """The packed array names, in arena order."""
        return list(self._specs)

    # ------------------------------------------------------------------
    # Reconstruction
    # ------------------------------------------------------------------

    def views(self) -> dict[str, np.ndarray]:
        """Zero-copy NumPy views over the shared pages, keyed as packed.

        Safe to call from the creating process and from forked children
        alike; every returned array aliases the single shared mapping.
        """
        buffer = self._shm.buf
        result: dict[str, np.ndarray] = {}
        for key, spec in self._specs.items():
            result[key] = np.ndarray(
                spec.shape, dtype=np.dtype(spec.dtype),
                buffer=buffer, offset=spec.offset,
            )
        return result

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Unmap, and unlink when this process created the segment.

        Idempotent; the parent calls it on shutdown, children on exit.
        ``BufferError`` from live views is deliberately not swallowed —
        it means an engine still references the pages.
        """
        self._shm.close()
        if self._owner:
            self._owner = False
            try:
                self._shm.unlink()
            except FileNotFoundError:  # already unlinked by a crash sweep
                pass

    def mark_inherited(self) -> None:
        """Flag this copy as a forked reader (never unlinks on close)."""
        self._owner = False
