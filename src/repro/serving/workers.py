"""Pre-fork worker pool behind ``repro serve --workers N``.

One parent process owns the listen strategy, the shared-memory model
arena and the *serialization* of hot mutations; N forked children each
run a full single-process :class:`~repro.service.RecommenderService`
against a zero-copy reconstruction of the same frozen model.

Listen strategy
    With an explicit ``--port`` and ``SO_REUSEPORT`` available, every
    worker binds the port itself and the kernel load-balances accepted
    connections.  Otherwise (``--port 0``, or no ``SO_REUSEPORT``) the
    parent binds one listener before forking and the children adopt the
    inherited socket — same load-balancing, one bind.

Mutation protocol
    Workers never mutate their model directly.  ``PUT``/``DELETE``
    handlers route through a :class:`_WorkerMutationRouter` installed on
    the worker's :class:`~repro.service.ModelManager`: the mutation
    travels to the parent over the worker's control pipe, the parent
    applies it to its own incremental model under the supervisor lock
    (validating it exactly once) and broadcasts an ordered ``apply``
    command to *every* worker over the same pipes.  Each worker's
    control thread replays the command through
    ``ModelManager.apply_add_implementations`` /
    ``apply_remove_implementation`` — identical mutation order plus the
    incremental model's deterministic interning means every process
    assigns the same implementation ids and reaches the same generation.

Lifecycle
    SIGTERM/SIGINT on the parent fans a ``drain`` command out to every
    worker (each runs the normal ``RecommenderService.drain()``); a
    crashed worker is reaped and respawned from the parent's *current*
    model state while the restart budget lasts, after which the pool
    keeps serving with fewer workers.

See docs/serving.md ("Multi-worker mode") for the operator's view.
"""

from __future__ import annotations

import argparse
import multiprocessing
import os
import signal
import socket
import sys
import threading
import time
import traceback
from collections.abc import Callable
from dataclasses import dataclass
from multiprocessing.connection import Connection
from pathlib import Path
from typing import Any

from repro import obs
from repro.core.incremental import IncrementalGoalModel
from repro.core.model import AssociationGoalModel
from repro.exceptions import ModelError
from repro.resilience import active_injector, install_faults
from repro.serving.shared import SharedModelArena
from repro.utils.concurrency import make_lock

#: Lock discipline, machine-checked by ``repro-lint`` (rule RL001).
#: The supervisor lock serializes everything the parent does after the
#: first fork — mutations, broadcasts, reaping, respawning — so a
#: replacement worker always forks from a quiescent model (and never
#: inherits the parent's metrics-registry lock mid-operation: the parent
#: deliberately reports through plain stderr prints, not ``repro.obs``).
_GUARDED_BY = {
    "WorkerSupervisor._incremental": "_lock",
    "WorkerSupervisor._generation": "_lock",
    "WorkerSupervisor._mutations": "_lock",
    "WorkerSupervisor._pipes": "_lock",
    "WorkerSupervisor._procs": "_lock",
    "WorkerSupervisor._ready_ports": "_lock",
    "WorkerSupervisor._restarts_left": "_lock",
    "WorkerSupervisor._lock": "<final>",
    "_WorkerMutationRouter._pending": "_lock",
    "_WorkerMutationRouter._next_token": "_lock",
    "_WorkerMutationRouter._lock": "<final>",
}

#: How long a worker waits for the parent's verdict on one mutation
#: before failing the request.  Generous: the parent applies mutations
#: in-memory, so anything near this long means the parent is gone.
_MUTATION_TIMEOUT_SECONDS = 30.0

#: How long the pool waits for every worker's ``ready`` handshake.
_READY_TIMEOUT_SECONDS = 60.0

#: Backlog of the parent-bound listener (matches a busy ThreadingHTTPServer
#: better than the stdlib default of 5).
_LISTEN_BACKLOG = 128


def _service_kwargs(args: argparse.Namespace) -> dict[str, Any]:
    """The ``RecommenderService`` keyword arguments encoded in ``args``.

    Mirrors the single-process path in ``repro.cli._cmd_serve`` (getattr
    defaults included, so hand-built test namespaces keep working).
    """
    history_interval = getattr(args, "history_interval", None)
    if history_interval is None:
        history_interval = obs.DEFAULT_INTERVAL_SECONDS
    history_window = getattr(args, "history_window", None)
    if history_window is None:
        history_window = obs.DEFAULT_WINDOW_SECONDS
    return {
        "cache_size": getattr(args, "cache_size", 1024),
        "space_cache_size": getattr(args, "space_cache_size", 4096),
        "approx_budget": getattr(args, "approx_budget", 128),
        "enable_tracing": not getattr(args, "no_tracing", False),
        "enable_exemplars": not getattr(args, "no_exemplars", False),
        "trace_detail": not getattr(args, "no_trace_detail", False),
        "slow_threshold_seconds": getattr(args, "slow_threshold", 0.1),
        "slow_log_size": getattr(args, "slow_log_size", 32),
        "max_inflight": getattr(args, "max_inflight", 64),
        "max_queue": getattr(args, "max_queue", 128),
        "queue_timeout_seconds": getattr(args, "queue_timeout", 0.5),
        "retry_after_seconds": getattr(args, "retry_after", 1.0),
        "default_deadline_ms": getattr(args, "default_deadline_ms", None),
        "quality_window": getattr(args, "quality_window", 512),
        "score_threshold": getattr(args, "score_threshold", 0.05),
        "drift_window": getattr(args, "drift_window", 256),
        "drift_threshold": getattr(args, "drift_threshold", 0.25),
        "slo_availability": getattr(args, "slo_availability", 0.999),
        "slo_latency_ms": getattr(args, "slo_latency_ms", 250.0),
        "slo_latency_target": getattr(args, "slo_latency_target", 0.99),
        "telemetry_dir": getattr(args, "telemetry_dir", None),
        "telemetry_sample_rate": getattr(args, "telemetry_sample_rate", 1.0),
        "history_interval_seconds": history_interval,
        "history_window_seconds": history_window or obs.DEFAULT_WINDOW_SECONDS,
        "history_enabled": history_window > 0,
    }


@dataclass
class _WorkerConfig:
    """Everything one worker needs, passed through ``fork`` by reference."""

    index: int
    conn: Connection[Any, Any]
    host: str
    port: int
    incremental: IncrementalGoalModel
    frozen: AssociationGoalModel | None
    arena: SharedModelArena | None
    initial_generation: int
    listen_socket: socket.socket | None
    reuse_port: bool
    drain_timeout: float
    parent_pid: int
    service_kwargs: dict[str, Any]


class _PendingMutation:
    """One in-flight mutation a request thread is blocked on."""

    __slots__ = ("event", "result", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.result: Any = None
        self.error: str | None = None


class _WorkerMutationRouter:
    """Worker-side half of the mutation protocol.

    Installed via ``ModelManager.set_mutation_router`` during the
    single-threaded worker bootstrap.  Request threads call
    :meth:`route_add` / :meth:`route_remove`; the control thread calls
    :meth:`resolve` once the parent's broadcast has been applied locally
    (or the parent rejected the mutation).
    """

    def __init__(self, index: int, conn: Connection[Any, Any]) -> None:
        self.index = index
        self._conn = conn
        self._lock = make_lock("_WorkerMutationRouter._lock")
        self._pending: dict[int, _PendingMutation] = {}
        self._next_token = 0

    def _submit(self, kind: str, payload: Any) -> _PendingMutation:
        with self._lock:
            token = self._next_token
            self._next_token += 1
            pending = _PendingMutation()
            self._pending[token] = pending
            # Send under the same lock: several request threads may
            # mutate concurrently and Connection.send is not atomic.
            self._conn.send(("mutate", token, kind, payload))
        return pending

    def _await(self, pending: _PendingMutation) -> Any:
        if not pending.event.wait(_MUTATION_TIMEOUT_SECONDS):
            raise ModelError(
                "mutation timed out waiting for the pool supervisor"
            )
        if pending.error is not None:
            raise ModelError(pending.error)
        return pending.result

    def route_add(self, pairs: list[tuple[Any, list[Any]]]) -> Any:
        """Serialize one add batch through the parent; returns
        ``(ids, snapshot)`` exactly like
        ``ModelManager.add_implementations``."""
        return self._await(self._submit("add", pairs))

    def route_remove(self, pid: int) -> Any:
        """Serialize one removal through the parent; returns the new
        ``ModelSnapshot``."""
        return self._await(self._submit("remove", pid))

    def resolve(
        self, token: int, result: Any = None, error: str | None = None
    ) -> None:
        """Wake the request thread waiting on ``token`` (control thread)."""
        with self._lock:
            pending = self._pending.pop(token, None)
        if pending is None:  # timed out and abandoned, or not ours
            return
        pending.result = result
        pending.error = error
        pending.event.set()


def _control_loop(
    manager: Any,
    router: _WorkerMutationRouter,
    conn: Connection[Any, Any],
    shutdown: threading.Event,
    parent_pid: int,
) -> None:
    """The worker's control thread: replay parent commands in order."""
    registry = obs.get_registry()
    commands = registry.counter(
        "repro_worker_control_commands_total",
        "Control-pipe commands processed by this worker, by command.",
        command="apply",
    )
    while not shutdown.is_set():
        try:
            if not conn.poll(1.0):
                # No command; make sure the parent is still there (pipe
                # EOF is unreliable: sibling workers inherit fd copies).
                if os.getppid() != parent_pid:
                    shutdown.set()
                    return
                continue
            message = conn.recv()
        except (EOFError, OSError):
            shutdown.set()
            return
        tag = message[0]
        if tag == "apply":
            _tag, kind, payload, origin, token = message
            commands.inc()
            result: Any = None
            error: str | None = None
            try:
                if kind == "add":
                    result = manager.apply_add_implementations(payload)
                else:
                    result = manager.apply_remove_implementation(payload)
            except ModelError as exc:  # parent validated: shouldn't happen
                error = str(exc)
            if origin == router.index and token is not None:
                router.resolve(token, result=result, error=error)
        elif tag == "mutate_error":
            _tag, token, text = message
            router.resolve(token, error=text)
        elif tag == "drain":
            shutdown.set()
            return


def _worker_main(config: _WorkerConfig) -> int:
    """Entry point of one forked worker process."""
    shutdown = threading.Event()

    def _on_signal(_signum: int, _frame: Any) -> None:
        shutdown.set()

    signal.signal(signal.SIGTERM, _on_signal)
    signal.signal(signal.SIGINT, _on_signal)

    # Deterministic fault injection must diverge across the pool: with
    # the parent's RNG state inherited verbatim, every worker would
    # replay the *identical* fault sequence (see docs/resilience.md).
    injector = active_injector()
    if injector is not None:
        install_faults(injector.with_seed(injector.seed ^ config.index))

    if config.arena is not None:
        # This copy came through fork: never unlink the segment on exit.
        config.arena.mark_inherited()

    engine_factory: Callable[[], Any] | None = None
    if config.arena is not None and config.frozen is not None:
        arena_views = config.arena.views()
        frozen = config.frozen

        def _shared_engine() -> Any:
            from repro.core.vectorized import BatchRecommender

            return BatchRecommender.from_arrays(frozen, arena_views)

        engine_factory = _shared_engine

    kwargs = dict(config.service_kwargs)
    if kwargs.get("telemetry_dir") is not None:
        # One flight-recorder directory per worker: the JSONL rotation
        # protocol is single-writer.
        kwargs["telemetry_dir"] = (
            Path(kwargs["telemetry_dir"]) / f"worker-{config.index}"
        )

    from repro.service import RecommenderService

    service = RecommenderService(
        config.incremental,
        host=config.host,
        port=config.port,
        reuse_port=config.reuse_port,
        listen_socket=config.listen_socket,
        initial_generation=config.initial_generation,
        engine_factory=engine_factory,
        **kwargs,
    )
    obs.get_registry().gauge(
        "repro_worker_index",
        "Index of this worker process within the multi-worker pool.",
    ).set(float(config.index))
    router = _WorkerMutationRouter(config.index, config.conn)
    service.manager.set_mutation_router(router)
    control = threading.Thread(
        target=_control_loop,
        args=(service.manager, router, config.conn, shutdown,
              config.parent_pid),
        name=f"repro-worker-{config.index}-control",
        daemon=True,
    )
    service.start()
    control.start()
    config.conn.send(("ready", config.index, service.port))
    shutdown.wait()
    clean = service.drain(timeout=config.drain_timeout)
    try:
        config.conn.close()
    except OSError:
        pass
    return 0 if clean else 1


def _worker_entry(config: _WorkerConfig) -> None:
    """Process target: never let a worker die silently."""
    try:
        sys.exit(_worker_main(config))
    except SystemExit:
        raise
    except BaseException:
        traceback.print_exc()
        sys.exit(70)  # EX_SOFTWARE


class WorkerSupervisor:
    """The parent process of a ``--workers N`` pool.

    Owns the canonical incremental model (the serialization point for
    hot mutations), the worker processes with their control pipes, and
    the crash-restart budget.  Everything after the first fork happens
    under one lock so a respawned worker always forks from a consistent
    model snapshot.

    The supervisor reports through plain stderr prints instead of
    ``repro.obs``: it forks while its own threads run, and a child must
    never inherit the process-wide metrics registry with its lock held
    mid-operation.
    """

    def __init__(
        self,
        *,
        incremental: IncrementalGoalModel,
        frozen: AssociationGoalModel | None,
        arena: SharedModelArena | None,
        host: str,
        port: int,
        workers: int,
        restart_budget: int,
        drain_timeout: float,
        listen_socket: socket.socket | None,
        service_kwargs: dict[str, Any],
    ) -> None:
        self._lock = make_lock("WorkerSupervisor._lock")
        self._incremental = incremental
        self._frozen = frozen
        self._arena = arena
        self._host = host
        self._port = port
        self._workers = workers
        self._drain_timeout = drain_timeout
        self._listener = listen_socket
        self._service_kwargs = service_kwargs
        self._ctx: Any = multiprocessing.get_context("fork")
        self._generation = 0
        self._mutations = 0
        self._pipes: dict[int, Connection[Any, Any]] = {}
        self._procs: dict[int, Any] = {}
        self._ready_ports: dict[int, int] = {}
        self._restarts_left = restart_budget
        self._stop = threading.Event()

    # ------------------------------------------------------------------
    # Spawning
    # ------------------------------------------------------------------

    def _spawn_locked(self, index: int) -> None:
        """Fork worker ``index`` from the parent's current model state."""
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        config = _WorkerConfig(
            index=index,
            conn=child_conn,
            host=self._host,
            port=self._port,
            incremental=self._incremental,
            frozen=self._frozen,
            # The arena describes the *initial* frozen arrays; once a
            # mutation landed, a respawned worker must refreeze instead.
            arena=self._arena if self._mutations == 0 else None,
            initial_generation=self._generation,
            listen_socket=self._listener,
            reuse_port=self._listener is None,
            drain_timeout=self._drain_timeout,
            parent_pid=os.getpid(),
            service_kwargs=self._service_kwargs,
        )
        proc = self._ctx.Process(
            target=_worker_entry,
            args=(config,),
            name=f"repro-worker-{index}",
        )
        proc.start()
        child_conn.close()  # the child keeps its copy
        self._pipes[index] = parent_conn
        self._procs[index] = proc
        reader = threading.Thread(
            target=self._reader_loop,
            args=(index, parent_conn),
            name=f"repro-supervisor-reader-{index}",
            daemon=True,
        )
        reader.start()

    def start(self) -> None:
        """Fork the initial pool."""
        with self._lock:
            for index in range(self._workers):
                self._spawn_locked(index)

    def wait_ready(self, timeout: float = _READY_TIMEOUT_SECONDS) -> bool:
        """Block until every worker sent its ``ready`` handshake."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            with self._lock:
                ready = len(self._ready_ports)
                alive = sum(
                    1 for proc in self._procs.values() if proc.is_alive()
                )
            if ready >= self._workers:
                return True
            if alive < self._workers:
                return False  # a worker died during bootstrap
            time.sleep(0.05)
        return False

    @property
    def port(self) -> int:
        """The shared serving port (resolved for parent-bound listeners)."""
        if self._listener is not None:
            bound: int = self._listener.getsockname()[1]
            return bound
        return self._port

    def alive_workers(self) -> int:
        """How many worker processes are currently running."""
        with self._lock:
            return sum(
                1 for proc in self._procs.values() if proc.is_alive()
            )

    # ------------------------------------------------------------------
    # Mutation serialization (called from per-worker reader threads)
    # ------------------------------------------------------------------

    def _reader_loop(self, index: int, conn: Connection[Any, Any]) -> None:
        """Receive one worker's upstream messages until its pipe closes."""
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                return
            tag = message[0]
            if tag == "ready":
                with self._lock:
                    self._ready_ports[index] = message[2]
            elif tag == "mutate":
                _tag, token, kind, payload = message
                self._apply_mutation(index, token, kind, payload)

    def _apply_mutation(
        self, origin: int, token: int, kind: str, payload: Any
    ) -> None:
        """Validate + apply one mutation, then broadcast it in order.

        The supervisor lock makes the parent the single serialization
        point: mutations land on the parent's model one at a time and
        every worker pipe sees the resulting ``apply`` commands in the
        same order, so all pool members replay an identical sequence.
        """
        with self._lock:
            applied: list[Any] = []
            try:
                if kind == "add":
                    for goal, actions in payload:
                        self._incremental.add_implementation(goal, actions)
                        applied.append((goal, actions))
                else:
                    self._incremental.remove_implementation(payload)
            except ModelError as exc:
                if applied:
                    # A mid-batch failure (defensive: adds are
                    # pre-validated) still published a prefix; keep the
                    # pool converged by broadcasting exactly that prefix.
                    self._generation += 1
                    self._mutations += 1
                    self._broadcast_locked(
                        ("apply", "add", applied, -1, None)
                    )
                self._send_locked(
                    origin, ("mutate_error", token, str(exc))
                )
                return
            self._generation += 1
            self._mutations += 1
            self._broadcast_locked(("apply", kind, payload, origin, token))

    def _broadcast_locked(self, message: Any) -> None:
        for pipe in self._pipes.values():
            try:
                pipe.send(message)
            except (OSError, ValueError):  # worker died; reaped later
                pass

    def _send_locked(self, index: int, message: Any) -> None:
        pipe = self._pipes.get(index)
        if pipe is None:
            return
        try:
            pipe.send(message)
        except (OSError, ValueError):
            pass

    # ------------------------------------------------------------------
    # Crash restarts
    # ------------------------------------------------------------------

    def reap_and_restart(self) -> None:
        """Collect exited workers; respawn them while the budget lasts."""
        if self._stop.is_set():
            return
        with self._lock:
            for index, proc in list(self._procs.items()):
                if proc.is_alive():
                    continue
                exitcode = proc.exitcode
                del self._procs[index]
                pipe = self._pipes.pop(index, None)
                if pipe is not None:
                    try:
                        pipe.close()
                    except OSError:
                        pass
                self._ready_ports.pop(index, None)
                if self._restarts_left > 0:
                    self._restarts_left -= 1
                    print(
                        f"worker {index} exited with code {exitcode}; "
                        f"restarting ({self._restarts_left} restarts "
                        "left in budget)",
                        file=sys.stderr,
                        flush=True,
                    )
                    self._spawn_locked(index)
                else:
                    print(
                        f"worker {index} exited with code {exitcode}; "
                        "restart budget exhausted — continuing with "
                        "fewer workers",
                        file=sys.stderr,
                        flush=True,
                    )

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------

    def request_stop(self) -> None:
        """Flag the pool for shutdown (signal-handler safe)."""
        self._stop.set()

    @property
    def stopping(self) -> bool:
        """Whether shutdown has been requested."""
        return self._stop.is_set()

    def run_until_stopped(self, poll_interval: float = 0.5) -> None:
        """Supervise: reap/restart crashed workers until stop is flagged."""
        while not self._stop.is_set():
            self._stop.wait(poll_interval)
            if not self._stop.is_set():
                self.reap_and_restart()

    def shutdown(self) -> None:
        """Drain every worker, then reap the whole pool."""
        self._stop.set()
        with self._lock:
            pipes = dict(self._pipes)
            procs = dict(self._procs)
        for pipe in pipes.values():
            try:
                pipe.send(("drain", self._drain_timeout))
            except (OSError, ValueError):
                pass
        deadline = time.monotonic() + self._drain_timeout + 5.0
        for proc in procs.values():
            remaining = deadline - time.monotonic()
            proc.join(max(0.1, remaining))
        for index, proc in procs.items():
            if proc.is_alive():
                print(
                    f"worker {index} did not drain in time; terminating",
                    file=sys.stderr,
                    flush=True,
                )
                proc.terminate()
                proc.join(5.0)
        for pipe in pipes.values():
            try:
                pipe.close()
            except OSError:
                pass
        with self._lock:
            self._pipes.clear()
            self._procs.clear()


def _build_parent_listener(host: str, port: int) -> socket.socket:
    """Bind + listen in the parent; children adopt the socket via fork."""
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    try:
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((host, port))
        listener.listen(_LISTEN_BACKLOG)
    except BaseException:
        listener.close()
        raise
    return listener


def _build_arena(
    frozen: AssociationGoalModel,
) -> tuple[SharedModelArena | None, AssociationGoalModel | None]:
    """Pack the frozen model's CSR engine into shared memory (best effort).

    Returns ``(None, None)`` when the vectorized engine is unavailable
    (NumPy/SciPy missing) — workers then build their own engines and
    multi-worker mode still functions, just without the shared pages.
    """
    if frozen.num_implementations == 0:
        return None, None
    try:
        from repro.core.vectorized import BatchRecommender
    except ImportError:
        return None, None
    engine = BatchRecommender(frozen)
    arena = SharedModelArena(engine.export_arrays())
    return arena, frozen


def run_worker_pool(
    model: AssociationGoalModel,
    args: argparse.Namespace,
    block: bool = True,
) -> int:
    """Serve ``model`` with ``args.workers`` pre-forked processes.

    The multi-worker counterpart of ``repro.cli._cmd_serve``'s
    single-process path; returns a process exit code.
    """
    workers = int(getattr(args, "workers", 1))
    host: str = getattr(args, "host", "127.0.0.1")
    port = int(getattr(args, "port", 0))
    drain_timeout = float(getattr(args, "drain_timeout", 10.0))
    restart_budget = int(getattr(args, "worker_restarts", 3))

    # An explicit port + SO_REUSEPORT → per-worker binds.  Port 0 must
    # use one parent-bound listener: with SO_REUSEPORT every worker
    # would receive a *different* ephemeral port.
    listener: socket.socket | None = None
    if port == 0 or not hasattr(socket, "SO_REUSEPORT"):
        listener = _build_parent_listener(host, port)

    incremental = IncrementalGoalModel.from_library(model.to_library())
    arena, frozen = _build_arena(model)

    supervisor = WorkerSupervisor(
        incremental=incremental,
        frozen=frozen,
        arena=arena,
        host=host,
        port=port,
        workers=workers,
        restart_budget=restart_budget,
        drain_timeout=drain_timeout,
        listen_socket=listener,
        service_kwargs=_service_kwargs(args),
    )
    try:
        # Handlers must be live before the ready banner prints: an
        # operator (or harness) may SIGTERM the pool the moment it
        # announces itself, and the default action would kill the
        # parent without draining the workers.
        def _on_signal(signum: int, _frame: Any) -> None:
            print(
                f"received signal {signum}; draining {workers} workers "
                f"(timeout {drain_timeout:g}s)",
                file=sys.stderr,
                flush=True,
            )
            supervisor.request_stop()

        handlers_installed = (
            block
            and threading.current_thread() is threading.main_thread()
        )
        if handlers_installed:
            signal.signal(signal.SIGTERM, _on_signal)
            signal.signal(signal.SIGINT, _on_signal)

        supervisor.start()
        if not supervisor.wait_ready():
            print(
                "error: worker pool failed to become ready",
                file=sys.stderr,
                flush=True,
            )
            supervisor.shutdown()
            return 1
        print(
            f"serving {model.num_implementations} implementations on "
            f"http://{host}:{supervisor.port} "
            f"({workers} workers; endpoints: /health /metrics /model "
            "/recommend /recommend/batch /spaces /explain /goals "
            "/related /debug/vars /debug/slow /debug/quality "
            "/debug/history /debug/trace/<request-id> /debug/locks "
            "/debug/profile)",
            flush=True,
        )
        if not block:  # test hook: caller owns the lifecycle
            supervisor.shutdown()
            return 0
        try:
            supervisor.run_until_stopped()
        except KeyboardInterrupt:  # non-main-thread fallback
            pass
        supervisor.shutdown()
        return 0
    finally:
        if arena is not None:
            try:
                arena.close()
            except BufferError:  # a live engine view in this process
                pass
        if listener is not None:
            listener.close()
