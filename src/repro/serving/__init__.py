"""Multi-process serving: shared-memory model publication + pre-fork workers.

``repro serve --workers N`` escapes the GIL by running N independent
server processes over *one* physical copy of the frozen model's numeric
state:

- :mod:`repro.serving.shared` — :class:`~repro.serving.shared.SharedModelArena`
  packs every derived array of the CSR engine
  (:meth:`~repro.core.vectorized.BatchRecommender.export_arrays`) into a
  single ``multiprocessing.shared_memory`` segment; workers rebuild the
  engine zero-copy with
  :meth:`~repro.core.vectorized.BatchRecommender.from_arrays`;
- :mod:`repro.serving.workers` — the pre-fork supervisor: SO_REUSEPORT
  worker binds (or an inherited parent-bound listener), mutation
  serialization through the parent, generation-ordered hot reload over
  control pipes, SIGTERM drain fan-out, and crash restarts under a
  budget.

See docs/serving.md ("Multi-worker mode") for the full protocol.
"""

from repro.serving.shared import SharedModelArena
from repro.serving.workers import WorkerSupervisor, run_worker_pool

__all__ = ["SharedModelArena", "WorkerSupervisor", "run_worker_pool"]
