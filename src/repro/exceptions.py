"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one type to handle any library failure.  The subclasses
partition the failure modes by subsystem: model construction, recommendation
requests, data loading and storage.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ModelError(ReproError):
    """Raised when an association-based goal model cannot be built or used.

    Typical causes are empty implementation libraries, duplicate
    implementation identifiers, or implementations referencing no actions.
    """


class UnknownActionError(ModelError):
    """Raised when a lookup references an action absent from the model."""

    def __init__(self, action: object) -> None:
        super().__init__(f"unknown action: {action!r}")
        self.action = action


class UnknownGoalError(ModelError):
    """Raised when a lookup references a goal absent from the model."""

    def __init__(self, goal: object) -> None:
        super().__init__(f"unknown goal: {goal!r}")
        self.goal = goal


class RecommendationError(ReproError):
    """Raised when a recommendation request is malformed.

    Examples: a non-positive ``k``, an empty user activity when the strategy
    requires evidence, or an unknown strategy name.
    """


class StrategyNotFoundError(RecommendationError):
    """Raised when a strategy name does not match any registered strategy."""

    def __init__(self, name: str, available: tuple[str, ...]) -> None:
        super().__init__(
            f"unknown strategy {name!r}; available: {', '.join(available)}"
        )
        self.name = name
        self.available = available


class DataError(ReproError):
    """Raised when a dataset cannot be generated, parsed or validated."""


class StorageError(ReproError):
    """Raised when a persistence backend fails to save or load a library."""


class EvaluationError(ReproError):
    """Raised when an evaluation protocol or metric is misconfigured."""
