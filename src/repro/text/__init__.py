"""Rule-based extraction of goal implementations from plain text.

The paper's 43Things dataset was produced by the authors' own action
identification module running over user-written success stories ("we did
this action extraction with a module that we have developed for this
purpose, that works on a simpler model and for plain text").  That module
was never published; this package provides a functional equivalent: given a
goal label and a free-text description of how it was achieved, it segments
the text into steps, recognizes action phrases (imperatives and
first-person past-tense reports) and normalizes them into canonical action
strings, yielding ``(goal, actions)`` implementations ready for
:class:`~repro.core.library.ImplementationLibrary`.
"""

from repro.text.extraction import (
    ActionExtractor,
    GoalStory,
    extract_implementations,
)
from repro.text.tokenizer import normalize_phrase, sentences, words

__all__ = [
    "ActionExtractor",
    "GoalStory",
    "extract_implementations",
    "sentences",
    "words",
    "normalize_phrase",
]
