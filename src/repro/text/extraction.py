"""Action identification over goal success stories.

Input: a :class:`GoalStory` — a goal label plus the free text a user wrote
about achieving it ("I stopped eating at restaurants. Drank more water,
and I joined a gym!").  Output: the extracted action strings, or directly an
:class:`~repro.core.library.ImplementationLibrary` when processing a corpus.

The extractor recognizes a step as an action when, after stripping
first-person/auxiliary lead-ins, it starts with a verb — either one from the
built-in lexicon of common activity verbs (including their inflected and
irregular forms) or, optionally, any token the caller supplies via
``extra_verbs``.  Matched phrases are normalized (see
:func:`repro.text.tokenizer.normalize_phrase`) so surface variants of the
same action collapse to one label, which is what gives the resulting
library meaningful action connectivity across users.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from repro.core.library import ImplementationLibrary
from repro.text.tokenizer import (
    TRAILING_DANGLERS,
    lemma_lite,
    normalize_phrase,
    sentences,
    strip_leading_prefixes,
    words,
)

#: Base forms of common activity verbs seen in goal stories.  The matcher
#: also accepts regular inflections of these via ``lemma_lite`` plus the
#: irregular forms below.
_BASE_VERBS = frozenset(
    """stop start quit join read write run walk drink eat cook buy sell
    save spend pay learn study practice practise take give get go visit
    travel call email ask tell find search look watch listen play sign
    register enroll apply work exercise train stretch sleep wake plan
    schedule track measure weigh cut reduce increase add remove avoid
    drop keep set make build create finish complete review repeat use
    try attend volunteer donate meditate pray clean organize sort pack
    move lift swim bike cycle jog hike climb dance sing draw paint
    record note list talk meet help teach share post publish open close
    cancel delete unsubscribe subscribe limit replace swap switch cook
    bake boil fry chop mix stir""".split()
)

#: Irregular past forms mapped to their base verb.
_IRREGULAR = {
    "ate": "eat",
    "drank": "drink",
    "ran": "run",
    "went": "go",
    "bought": "buy",
    "sold": "sell",
    "spent": "spend",
    "paid": "pay",
    "took": "take",
    "gave": "give",
    "got": "get",
    "found": "find",
    "told": "tell",
    "read": "read",
    "wrote": "write",
    "made": "make",
    "built": "build",
    "kept": "keep",
    "set": "set",
    "cut": "cut",
    "met": "meet",
    "taught": "teach",
    "slept": "sleep",
    "woke": "wake",
    "swam": "swim",
    "sang": "sing",
    "drew": "draw",
    "quit": "quit",
}


@dataclass(frozen=True, slots=True)
class GoalStory:
    """A goal and the free text describing how it was achieved."""

    goal: str
    text: str


class ActionExtractor:
    """Extract normalized action phrases from goal stories.

    Args:
        extra_verbs: additional base verbs accepted at the start of a step
            (domain vocabularies: "whisk", "deploy", ...).
        min_tokens: minimum content tokens a phrase must keep after
            normalization (1 by default: bare "meditate" is a valid action).
        max_tokens: phrases longer than this after normalization are
            truncated — long step sentences usually embed one leading action
            plus commentary.
    """

    def __init__(
        self,
        extra_verbs: Iterable[str] = (),
        min_tokens: int = 1,
        max_tokens: int = 6,
    ) -> None:
        if min_tokens < 1:
            raise ValueError(f"min_tokens must be >= 1, got {min_tokens}")
        if max_tokens < min_tokens:
            raise ValueError("max_tokens must be >= min_tokens")
        self.verbs = _BASE_VERBS | {v.lower() for v in extra_verbs}
        self.min_tokens = min_tokens
        self.max_tokens = max_tokens

    def _verb_base(self, token: str) -> str | None:
        """Base verb of ``token`` when it is a recognized verb form."""
        if token in self.verbs:
            return token
        irregular = _IRREGULAR.get(token)
        if irregular is not None and irregular in self.verbs:
            return irregular
        lemma = lemma_lite(token)
        if lemma in self.verbs:
            return lemma
        return None

    def extract_from_step(self, step: str) -> str | None:
        """Extract one normalized action from a candidate step, or ``None``.

        A step is an action when its first content token (after lead-in
        stripping) is a recognized verb form.
        """
        tokens = strip_leading_prefixes(words(step))
        if not tokens:
            return None
        base = self._verb_base(tokens[0])
        if base is None:
            return None
        normalized = normalize_phrase(" ".join([base] + tokens[1:]))
        if not normalized:
            return None
        parts = normalized.split()
        if len(parts) < self.min_tokens:
            return None
        parts = parts[: self.max_tokens]
        # Truncation can cut mid-conjunction ("sign up for race and ...").
        while parts and parts[-1] in TRAILING_DANGLERS:
            parts.pop()
        if len(parts) < self.min_tokens:
            return None
        return " ".join(parts)

    def extract(self, story: GoalStory) -> list[str]:
        """All distinct actions of a story, in first-occurrence order."""
        seen: set[str] = set()
        actions: list[str] = []
        for step in sentences(story.text):
            action = self.extract_from_step(step)
            if action is not None and action not in seen:
                seen.add(action)
                actions.append(action)
        return actions


def extract_implementations(
    stories: Iterable[GoalStory],
    extractor: ActionExtractor | None = None,
) -> ImplementationLibrary:
    """Build an implementation library from a corpus of goal stories.

    Stories yielding no action are skipped (they carry no implementation
    evidence); duplicate ``(goal, actions)`` pairs collapse via the
    library's own deduplication.
    """
    extractor = extractor or ActionExtractor()
    library = ImplementationLibrary()
    for story in stories:
        actions = extractor.extract(story)
        if actions:
            library.add_pair(story.goal, actions)
    return library
