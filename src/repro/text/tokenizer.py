"""Minimal text segmentation and normalization for action extraction.

Deliberately dependency-free: the extraction task only needs sentence/step
segmentation, word tokenization and a light normalization that maps surface
variants ("Stopped eating at restaurants!", "stop eating at restaurants") to
one canonical action string.
"""

from __future__ import annotations

import re

#: Sentence/step boundaries: sentence punctuation, newlines, semicolons,
#: commas, the connectives "and then" / "then", and explicit enumerations
#: ("1.", "2)", "-", "*") commonly used in stories.  Plain "and" is *not* a
#: boundary — it usually joins objects ("fruits and vegetables"), not steps.
_STEP_SPLIT = re.compile(
    r"(?:[.!?;,\n—–]+|\s+and\s+then\s+|\s+then\s+|\s+(?:\d+[.)]|[-*•])\s+)"
)
_WORD = re.compile(r"[a-zA-Z][a-zA-Z'-]*")

#: Tokens dropped during normalization — determiners, fillers and politeness
#: that do not change the action's identity.
STOPWORDS = frozenset(
    """a an the my your our his her their this that these those some any
    really very just then finally also too please kindly simply always
    again more much lot lots of""".split()
)

#: Leading first-person / auxiliary / connective prefixes stripped before
#: matching a verb: "and finally i have stopped eating out" -> "stopped
#: eating out".
_LEADING_PREFIX = frozenset(
    """i we you they he she it ive weve youve i'm im we're were i'd id
    have has had did do does will would should could must to began started
    decided tried and but so also then next first finally eventually later
    afterwards now""".split()
)

#: Trailing connectives dropped from a normalized phrase — they only appear
#: when a step was cut at a conjunction ("signed up for a race and ...").
TRAILING_DANGLERS = frozenset("and or but then to for with".split())

#: Vacuous trailing adverbial phrases that do not change an action's
#: identity ("i track my spending every single time" == "track spending").
#: Matched as token-suffixes before stopword filtering.  Content-bearing
#: time expressions ("every morning", "twice per week") are NOT fillers.
TRAILING_FILLERS: tuple[tuple[str, ...], ...] = tuple(
    tuple(phrase.split())
    for phrase in (
        "every single time",
        "every time",
        "each time",
        "all the time",
        "over and over",
        "time and again",
        "again and again",
        "every day",
        "each day",
        "every single day",
    )
)


def strip_trailing_fillers(tokens: list[str]) -> list[str]:
    """Repeatedly remove any trailing filler phrase from ``tokens``."""
    changed = True
    while changed:
        changed = False
        for filler in TRAILING_FILLERS:
            n = len(filler)
            if len(tokens) > n and tuple(tokens[-n:]) == filler:
                tokens = tokens[:-n]
                changed = True
    return tokens


def sentences(text: str) -> list[str]:
    """Split ``text`` into candidate step strings.

    Splits on sentence punctuation, newlines, semicolons and enumeration
    markers; empty fragments are dropped.
    """
    parts = _STEP_SPLIT.split(text)
    return [part.strip() for part in parts if part and part.strip()]


def words(text: str) -> list[str]:
    """Lowercased word tokens of ``text`` (letters, hyphens, apostrophes)."""
    return [match.group(0).lower() for match in _WORD.finditer(text)]


def strip_leading_prefixes(tokens: list[str]) -> list[str]:
    """Remove first-person/auxiliary lead-ins so the verb comes first."""
    index = 0
    while index < len(tokens) and tokens[index] in _LEADING_PREFIX:
        index += 1
    return tokens[index:]


def lemma_lite(token: str) -> str:
    """Heuristic verb lemmatization: strip common -ed/-ing/-s inflection.

    Only applied to the *verb* position; intentionally conservative —
    irregulars come from the extraction lexicon, and over-stripping is worse
    than under-stripping for action identity.
    """
    if len(token) > 4 and token.endswith("ied"):
        return token[:-3] + "y"
    if len(token) > 4 and token.endswith("ed"):
        stem = token[:-2]
        # doubled final consonant: "stopped" -> "stop"
        if len(stem) > 2 and stem[-1] == stem[-2] and stem[-1] not in "aeiou":
            return stem[:-1]
        return stem
    if len(token) > 5 and token.endswith("ing"):
        stem = token[:-3]
        if len(stem) > 2 and stem[-1] == stem[-2] and stem[-1] not in "aeiou":
            return stem[:-1]
        return stem + ("e" if stem.endswith(("at", "iv", "uc", "ar")) else "")
    if len(token) > 3 and token.endswith("s") and not token.endswith(("ss", "us")):
        return token[:-1]
    return token


def _normalize_once(phrase: str) -> str:
    tokens = strip_trailing_fillers(strip_leading_prefixes(words(phrase)))
    content = [token for token in tokens if token not in STOPWORDS]
    while content and content[-1] in TRAILING_DANGLERS:
        content.pop()
    if not content:
        return ""
    content[0] = lemma_lite(content[0])
    return " ".join(content)


def normalize_phrase(phrase: str) -> str:
    """Canonical form of an action phrase.

    Lowercases, tokenizes, strips lead-ins and stopwords, lemmatizes the
    verb position and joins with single spaces.  Returns ``""`` when nothing
    content-bearing remains.

    One pass is not a fixed point: dropping a stopword can expose a leading
    prefix ("a i" -> "i" -> "") or a trailing filler ("run every day the" ->
    "run every day" -> "run"), and lemmatization can surface a strippable
    form.  Each pass shortens the phrase (or ends the loop), so iterating to
    a fixed point terminates and makes the result idempotent — a requirement
    for canonical action identity.
    """
    result = _normalize_once(phrase)
    while True:
        again = _normalize_once(result)
        if again == result:
            return result
        result = again
