"""Bayesian Personalized Ranking (BPR-MF) baseline.

Rendle et al. (UAI 2009): learn matrix-factorization embeddings by
stochastic gradient descent on *pairwise* preferences — for a user ``u``,
an observed item ``i`` should outscore a random unobserved item ``j``:

``maximize Σ ln σ(x_ui − x_uj) − λ‖Θ‖²``

BPR optimizes ranking directly (unlike ALS-WR's squared error), making it
the strongest classic implicit-feedback baseline and a natural addition to
the paper's comparison set.  Query activities outside the training set are
folded in by averaging the embeddings of their known items — the standard
cold-user treatment for pairwise MF.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaselineRecommender
from repro.utils.rng import SeedLike, make_rng
from repro.utils.validation import require_positive


class BPRRecommender(BaselineRecommender):
    """BPR matrix factorization over implicit feedback.

    Args:
        num_factors: embedding dimensionality.
        num_epochs: SGD passes over the positive interactions.
        learning_rate: SGD step size.
        regularization: L2 weight on user and item embeddings.
        seed: RNG seed (initialization and negative sampling).
    """

    name = "bpr"

    def __init__(
        self,
        num_factors: int = 16,
        num_epochs: int = 20,
        learning_rate: float = 0.05,
        regularization: float = 0.01,
        seed: SeedLike = 0,
    ) -> None:
        super().__init__()
        require_positive(num_factors, "num_factors")
        require_positive(num_epochs, "num_epochs")
        require_positive(learning_rate, "learning_rate")
        require_positive(regularization, "regularization")
        self.num_factors = num_factors
        self.num_epochs = num_epochs
        self.learning_rate = learning_rate
        self.regularization = regularization
        self._rng = make_rng(seed)
        self.user_factors: np.ndarray | None = None
        self.item_factors: np.ndarray | None = None

    def _fit(self, activities: list[frozenset[int]]) -> None:
        num_users = len(activities)
        num_items = len(self.items)
        rng = self._rng
        users = rng.normal(scale=0.1, size=(num_users, self.num_factors))
        items = rng.normal(scale=0.1, size=(num_items, self.num_factors))
        positives = [
            (user, item)
            for user, activity in enumerate(activities)
            for item in sorted(activity)
        ]
        positive_sets = activities
        lr = self.learning_rate
        reg = self.regularization
        for _ in range(self.num_epochs):
            order = rng.permutation(len(positives))
            # Pre-draw the negative candidates for the epoch in one call.
            negatives = rng.integers(0, num_items, size=len(positives))
            for position, index in enumerate(order):
                user, positive = positives[index]
                negative = int(negatives[position])
                # Resample until j is truly unobserved for u (few retries
                # in sparse data).
                while negative in positive_sets[user]:
                    negative = int(rng.integers(num_items))
                wu = users[user]
                hi = items[positive]
                hj = items[negative]
                x = float(wu @ (hi - hj))
                # σ(−x): gradient weight of the logistic loss.
                weight = 1.0 / (1.0 + np.exp(x))
                users[user] = wu + lr * (weight * (hi - hj) - reg * wu)
                items[positive] = hi + lr * (weight * wu - reg * hi)
                items[negative] = hj + lr * (-weight * wu - reg * hj)
        self.user_factors = users
        self.item_factors = items

    def fold_in(self, activity: frozenset[int]) -> np.ndarray:
        """Cold-user embedding: mean of the activity's item embeddings."""
        assert self.item_factors is not None, "fold_in before fit"
        if not activity:
            return np.zeros(self.num_factors)
        ids = np.fromiter(sorted(activity), dtype=np.int64)
        return self.item_factors[ids].mean(axis=0)

    def _score(self, activity: frozenset[int]) -> dict[int, float]:
        assert self.item_factors is not None
        user_vector = self.fold_in(activity)
        predictions = self.item_factors @ user_vector
        return {
            item: float(predictions[item])
            for item in range(len(self.items))
            if item not in activity
        }
