"""Markov next-action prediction (the paper's related-work family, §2).

The paper contrasts goal-based recommendation with the *goal and next
action inference* literature — systems predicting the next action in a
sequence with probabilistic state-transition models (Markov models, Bayesian
networks).  This module implements that family's workhorse so the contrast
is measurable: a smoothed k-order Markov chain over action sequences with
back-off.

Unlike the other baselines, the Markov model consumes *ordered* activities
(the paper's set-based recommenders discard order).  Scoring a candidate
``a`` given the recent history ``(.., x, y)``:

``P(a | history) = backoff-smoothed transition frequency``,

trying the longest context first (order ``k``), backing off to shorter
contexts with weight ``backoff`` per level, down to the unigram
distribution.  Laplace smoothing keeps unseen transitions rankable.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Iterable, Sequence

from repro.core.entities import ActionLabel, RecommendationList, ScoredAction
from repro.exceptions import RecommendationError
from repro.utils.validation import require_positive, require_probability


class MarkovRecommender:
    """Smoothed k-order Markov chain over action sequences.

    Args:
        order: maximum context length (1 = classic first-order chain).
        backoff: multiplicative weight applied per level of context
            shortening when mixing the back-off distributions.
        smoothing: Laplace pseudo-count on transition counts.
    """

    name = "markov"

    def __init__(
        self, order: int = 2, backoff: float = 0.4, smoothing: float = 0.1
    ) -> None:
        require_positive(order, "order")
        require_probability(backoff, "backoff")
        require_positive(smoothing, "smoothing")
        self.order = order
        self.backoff = backoff
        self.smoothing = smoothing
        # context tuple -> {next_action: count}; () is the unigram context.
        self._transitions: dict[tuple[ActionLabel, ...], dict[ActionLabel, int]] = {}
        self._vocabulary: list[ActionLabel] = []
        self._fitted = False

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------

    def fit(
        self, sequences: Sequence[Sequence[ActionLabel]]
    ) -> "MarkovRecommender":
        """Count transitions of every order up to ``self.order``."""
        if not sequences:
            raise RecommendationError("markov: cannot fit on an empty corpus")
        transitions: dict[tuple[ActionLabel, ...], dict[ActionLabel, int]] = (
            defaultdict(lambda: defaultdict(int))
        )
        vocabulary: dict[ActionLabel, None] = {}
        total_steps = 0
        for sequence in sequences:
            sequence = list(sequence)
            for position, action in enumerate(sequence):
                vocabulary.setdefault(action, None)
                transitions[()][action] += 1
                total_steps += 1
                for length in range(1, self.order + 1):
                    if position < length:
                        break
                    context = tuple(sequence[position - length : position])
                    transitions[context][action] += 1
        if total_steps == 0:
            raise RecommendationError("markov: every training sequence is empty")
        self._transitions = {
            context: dict(counts) for context, counts in transitions.items()
        }
        self._vocabulary = list(vocabulary)
        self._fitted = True
        return self

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------

    def _context_distribution(
        self, context: tuple[ActionLabel, ...]
    ) -> dict[ActionLabel, float]:
        """Laplace-smoothed next-action distribution for one context."""
        counts = self._transitions.get(context)
        if counts is None:
            return {}
        total = sum(counts.values()) + self.smoothing * len(self._vocabulary)
        return {
            action: (counts.get(action, 0) + self.smoothing) / total
            for action in self._vocabulary
        }

    def score(
        self, history: Sequence[ActionLabel]
    ) -> dict[ActionLabel, float]:
        """Back-off-mixed next-action scores given the recent history.

        Longest matching context dominates; each shorter context contributes
        with an extra ``backoff`` factor.  Actions already in the history
        are excluded (consistent with the set-based recommenders).
        """
        if not self._fitted:
            raise RecommendationError("markov: score() before fit()")
        history = list(history)
        seen = set(history)
        mixed: dict[ActionLabel, float] = defaultdict(float)
        weight = 1.0
        for length in range(min(self.order, len(history)), -1, -1):
            context = tuple(history[len(history) - length :]) if length else ()
            for action, probability in self._context_distribution(context).items():
                if action not in seen:
                    mixed[action] += weight * probability
            weight *= self.backoff
        return dict(mixed)

    def recommend(
        self, history: Sequence[ActionLabel], k: int = 10
    ) -> RecommendationList:
        """Top-``k`` next actions for an ordered history."""
        if k <= 0:
            raise RecommendationError(f"k must be positive, got {k}")
        scores = self.score(history)
        ranked = sorted(
            scores.items(), key=lambda item: (-item[1], str(item[0]))
        )[:k]
        return RecommendationList(
            strategy=self.name,
            items=tuple(ScoredAction(action, value) for action, value in ranked),
            activity=frozenset(history),
        )

    def transition_probability(
        self,
        context: Iterable[ActionLabel],
        action: ActionLabel,
    ) -> float:
        """Smoothed ``P(action | context)`` for one exact context length."""
        distribution = self._context_distribution(tuple(context))
        return distribution.get(action, 0.0)
