"""User-based nearest-neighbour collaborative filtering (paper's "CF KNN").

The paper uses implicit feedback (selected / not selected), forms user
neighbourhoods with the Jaccard — a.k.a. Tanimoto — coefficient and scores
items by the similarity-weighted votes of the ``k`` nearest neighbours.

The query activity does not need to belong to a training user: similarity is
computed between the *query set* and every training activity, which also
covers the paper's grocery setting where the "user" is the current cart.
"""

from __future__ import annotations

from collections import defaultdict

from repro.baselines.base import BaselineRecommender
from repro.utils.validation import require_positive


def tanimoto(a: frozenset[int], b: frozenset[int]) -> float:
    """Tanimoto (Jaccard) coefficient ``|a∩b| / |a∪b|``.

    Two empty sets are defined to have similarity 0 — no shared evidence.
    """
    if not a or not b:
        return 0.0
    intersection = len(a & b)
    if intersection == 0:
        return 0.0
    return intersection / (len(a) + len(b) - intersection)


class CFKnnRecommender(BaselineRecommender):
    """Tanimoto user-KNN over implicit feedback.

    Args:
        num_neighbors: neighbourhood size (the paper's implicit ``k``; 20 by
            default, Mahout's common setting).

    Scoring: ``score(i) = Σ_{v ∈ kNN(q)} sim(q, v) · 1[i ∈ H_v]`` over the
    ``num_neighbors`` most similar training activities with positive
    similarity; items in the query are excluded.
    """

    name = "cf_knn"

    def __init__(self, num_neighbors: int = 20) -> None:
        super().__init__()
        require_positive(num_neighbors, "num_neighbors")
        self.num_neighbors = num_neighbors
        self._activities: list[frozenset[int]] = []
        self._item_users: dict[int, set[int]] = {}

    def _fit(self, activities: list[frozenset[int]]) -> None:
        self._activities = activities
        # Inverted index item -> users, so only activities sharing at least
        # one item with the query are ever compared.
        item_users: dict[int, set[int]] = defaultdict(set)
        for user, activity in enumerate(activities):
            for item in activity:
                item_users[item].add(user)
        self._item_users = dict(item_users)

    def neighbors(self, activity: frozenset[int]) -> list[tuple[int, float]]:
        """The top ``num_neighbors`` training users by Tanimoto similarity.

        Returns ``(user_index, similarity)`` pairs, most similar first; users
        with zero overlap never appear.  Ties break by ascending user index.
        """
        candidates: set[int] = set()
        for item in activity:
            candidates |= self._item_users.get(item, set())
        scored = [
            (user, tanimoto(activity, self._activities[user]))
            for user in candidates
        ]
        scored = [(user, sim) for user, sim in scored if sim > 0.0]
        scored.sort(key=lambda pair: (-pair[1], pair[0]))
        return scored[: self.num_neighbors]

    def _score(self, activity: frozenset[int]) -> dict[int, float]:
        scores: dict[int, float] = defaultdict(float)
        for user, similarity in self.neighbors(activity):
            for item in self._activities[user]:
                if item not in activity:
                    scores[item] += similarity
        return dict(scores)
