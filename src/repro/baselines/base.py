"""Shared interface and item interning for the baseline recommenders.

The paper evaluates its goal-based strategies against classic recommenders
that learn from a *corpus of user activities* (carts, life-goal actions).
:class:`BaselineRecommender` fixes the contract: :meth:`fit` consumes the
corpus once, :meth:`recommend` answers for any activity — including one that
belongs to no training user, exactly how the harness queries both families.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Iterable, Sequence

from repro.core.entities import ActionLabel, RecommendationList, ScoredAction
from repro.exceptions import RecommendationError


class ItemIndex:
    """Bidirectional label <-> dense-integer-id mapping for items.

    The same role ``A-idx`` plays in the goal model, reused by every
    baseline so scoring can run over integer arrays.
    """

    def __init__(self) -> None:
        self._label_to_id: dict[ActionLabel, int] = {}
        self._labels: list[ActionLabel] = []

    def intern(self, label: ActionLabel) -> int:
        """Return the id of ``label``, assigning a new one if unseen."""
        item_id = self._label_to_id.get(label)
        if item_id is None:
            item_id = len(self._labels)
            self._label_to_id[label] = item_id
            self._labels.append(label)
        return item_id

    def get(self, label: ActionLabel) -> int | None:
        """Id of ``label`` or ``None`` when the label was never interned."""
        return self._label_to_id.get(label)

    def label(self, item_id: int) -> ActionLabel:
        """Label of ``item_id``."""
        return self._labels[item_id]

    def encode(self, labels: Iterable[ActionLabel]) -> frozenset[int]:
        """Ids of the known labels in ``labels``; unknown ones are dropped."""
        encoded: set[int] = set()
        for label in labels:
            item_id = self._label_to_id.get(label)
            if item_id is not None:
                encoded.add(item_id)
        return frozenset(encoded)

    def __len__(self) -> int:
        return len(self._labels)

    def __contains__(self, label: ActionLabel) -> bool:
        return label in self._label_to_id


class BaselineRecommender(ABC):
    """Base class of every baseline.

    Subclasses implement :meth:`_fit` and :meth:`_score`; this class owns
    validation, interning, determinism (score desc, item id asc) and the
    conversion to :class:`RecommendationList`.
    """

    #: Registry/display name; subclasses override.
    name: str = "baseline"

    def __init__(self) -> None:
        self.items = ItemIndex()
        self._fitted = False

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------

    def fit(
        self, activities: Sequence[Iterable[ActionLabel]]
    ) -> "BaselineRecommender":
        """Train on a corpus of user activities; returns ``self``."""
        if not activities:
            raise RecommendationError(
                f"{self.name}: cannot fit on an empty corpus"
            )
        encoded: list[frozenset[int]] = []
        for activity in activities:
            # Sorted interning keeps item ids (and so tie-breaking and any
            # id-ordered sampling) identical across processes regardless of
            # PYTHONHASHSEED.
            ids = frozenset(
                self.items.intern(label) for label in sorted(activity, key=str)
            )
            if ids:
                encoded.append(ids)
        if not encoded:
            raise RecommendationError(
                f"{self.name}: every training activity is empty"
            )
        self._fit(encoded)
        self._fitted = True
        return self

    @abstractmethod
    def _fit(self, activities: list[frozenset[int]]) -> None:
        """Subclass hook: train on id-encoded activities."""

    # ------------------------------------------------------------------
    # Recommending
    # ------------------------------------------------------------------

    @abstractmethod
    def _score(self, activity: frozenset[int]) -> dict[int, float]:
        """Subclass hook: score candidate item ids for an encoded activity.

        Must not include items of ``activity`` itself.
        """

    def recommend(
        self, activity: Iterable[ActionLabel], k: int = 10
    ) -> RecommendationList:
        """Top-``k`` items for ``activity`` (labels in, labels out).

        Unknown items in the activity carry no training signal and are
        ignored.  Raises :class:`RecommendationError` when called before
        :meth:`fit` or with a non-positive ``k``.
        """
        if not self._fitted:
            raise RecommendationError(f"{self.name}: recommend() before fit()")
        if k <= 0:
            raise RecommendationError(f"k must be positive, got {k}")
        encoded = self.items.encode(activity)
        scores = self._score(encoded)
        ranked = sorted(scores.items(), key=lambda item: (-item[1], item[0]))[:k]
        items = tuple(
            ScoredAction(action=self.items.label(item_id), score=score)
            for item_id, score in ranked
        )
        return RecommendationList(
            strategy=self.name, items=items, activity=frozenset(activity)
        )
