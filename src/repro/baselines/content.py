"""Content-based filtering over domain-specific item features.

The paper's content baseline represents every action (food product) by its
domain features — the 128 product (sub)categories in the grocery dataset —
builds the user profile as the aggregate of the features of the actions in
the activity, and ranks candidates by profile similarity.  It recommends
items *similar to what the user already chose*, which is exactly the
behaviour the goal-based strategies are contrasted with (Table 5: content
lists have by far the highest internal pairwise similarity).

Features are free-form strings; each item maps to a set of them (a product
typically carries its subcategory plus any extra tags).  Vectors live in the
full feature vocabulary; similarity is cosine.
"""

from __future__ import annotations

import math
from collections import defaultdict
from collections.abc import Iterable, Mapping

from repro.baselines.base import BaselineRecommender
from repro.core.entities import ActionLabel
from repro.exceptions import RecommendationError

FeatureMap = Mapping[ActionLabel, Iterable[str]]


def feature_cosine(a: frozenset[int], b: frozenset[int]) -> float:
    """Cosine similarity of two boolean feature sets."""
    if not a or not b:
        return 0.0
    return len(a & b) / math.sqrt(len(a) * len(b))


class ContentBasedRecommender(BaselineRecommender):
    """Rank items by cosine similarity to the user's feature profile.

    Args:
        item_features: mapping of every recommendable item to its feature
            strings.  Items missing from the map can still occur in training
            activities but are never recommended (they have no content
            signal) — mirroring the paper dropping products, like napkins,
            that match no recipe ingredient.

    The user profile is the feature-count vector aggregated over the
    activity's items (so features shared by many chosen items dominate);
    candidate items are boolean feature vectors.
    """

    name = "content"

    def __init__(self, item_features: FeatureMap) -> None:
        super().__init__()
        if not item_features:
            raise RecommendationError("content: item_features must not be empty")
        self._raw_features = {
            item: frozenset(features) for item, features in item_features.items()
        }
        self._feature_ids: dict[str, int] = {}
        self._item_feature_ids: dict[int, frozenset[int]] = {}

    def _feature_id(self, feature: str) -> int:
        fid = self._feature_ids.get(feature)
        if fid is None:
            fid = len(self._feature_ids)
            self._feature_ids[feature] = fid
        return fid

    def _fit(self, activities: list[frozenset[int]]) -> None:
        # Intern every featured item — including ones absent from the
        # training corpus; content-based methods can recommend cold items.
        for label, features in self._raw_features.items():
            item_id = self.items.intern(label)
            self._item_feature_ids[item_id] = frozenset(
                self._feature_id(f) for f in features
            )

    def profile(self, activity: frozenset[int]) -> dict[int, float]:
        """Feature-count profile of an encoded activity."""
        counts: dict[int, float] = defaultdict(float)
        for item in activity:
            for fid in self._item_feature_ids.get(item, frozenset()):
                counts[fid] += 1.0
        return dict(counts)

    def _score(self, activity: frozenset[int]) -> dict[int, float]:
        profile = self.profile(activity)
        if not profile:
            return {}
        profile_norm = math.sqrt(sum(v * v for v in profile.values()))
        scores: dict[int, float] = {}
        for item, features in self._item_feature_ids.items():
            if item in activity or not features:
                continue
            dot = sum(profile.get(fid, 0.0) for fid in features)
            if dot > 0.0:
                scores[item] = dot / (profile_norm * math.sqrt(len(features)))
        return scores

    def item_similarity(self, a: ActionLabel, b: ActionLabel) -> float:
        """Feature cosine similarity of two items (used by Table 5's metric).

        Items without features have similarity 0 to everything.
        """
        features_a = self._raw_features.get(a, frozenset())
        features_b = self._raw_features.get(b, frozenset())
        if not features_a or not features_b:
            return 0.0
        return len(features_a & features_b) / math.sqrt(
            len(features_a) * len(features_b)
        )
