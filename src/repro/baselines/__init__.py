"""Baseline recommenders the paper compares against (Section 6).

- :class:`CFKnnRecommender` — user-based nearest-neighbour collaborative
  filtering with Tanimoto (Jaccard) similarity over implicit feedback;
- :class:`CFMatrixFactorizationRecommender` — ALS with weighted-λ
  regularization (ALS-WR, the algorithm behind Mahout's factorizer);
- :class:`ContentBasedRecommender` — domain-feature vector profiles;
- :class:`AssociationRuleRecommender` — frequent-itemset rules, the
  popularity-driven contrast discussed in the paper's related work;
- :class:`PopularityRecommender` — trivial most-popular baseline.

All baselines share the :class:`BaselineRecommender` interface: ``fit`` on a
corpus of user activities, then ``recommend`` for an arbitrary (possibly
unseen) activity — the same input the goal-based strategies receive, so the
evaluation harness can drive every method uniformly.
"""

from repro.baselines.association_rules import AssociationRuleRecommender
from repro.baselines.base import BaselineRecommender, ItemIndex
from repro.baselines.bpr import BPRRecommender
from repro.baselines.cf_knn import CFKnnRecommender, tanimoto
from repro.baselines.cf_mf import CFMatrixFactorizationRecommender
from repro.baselines.content import ContentBasedRecommender
from repro.baselines.item_knn import ItemKnnRecommender
from repro.baselines.markov import MarkovRecommender
from repro.baselines.popularity import PopularityRecommender

__all__ = [
    "BaselineRecommender",
    "ItemIndex",
    "CFKnnRecommender",
    "ItemKnnRecommender",
    "BPRRecommender",
    "tanimoto",
    "CFMatrixFactorizationRecommender",
    "ContentBasedRecommender",
    "AssociationRuleRecommender",
    "MarkovRecommender",
    "PopularityRecommender",
]
