"""Item-based nearest-neighbour collaborative filtering.

The classic complement of user-KNN (Sarwar et al., WWW 2001; the
"customers who bought X also bought Y" scheme): precompute item-item
similarities from co-occurrence in training activities, then score a
candidate by its similarity to the items the query activity already holds.

Similarity is the Tanimoto coefficient over the items' user sets — the
item-side dual of :class:`~repro.baselines.cf_knn.CFKnnRecommender` — so the
two baselines differ only in which side of the matrix the neighbourhood is
built on.  Item-KNN precomputes more and answers faster, which is why it is
the deployment-favoured variant; both inherit the popularity bias the
paper's Table 3 measures.
"""

from __future__ import annotations

from collections import defaultdict

from repro.baselines.base import BaselineRecommender
from repro.baselines.cf_knn import tanimoto
from repro.utils.validation import require_positive


class ItemKnnRecommender(BaselineRecommender):
    """Tanimoto item-item CF over implicit feedback.

    Args:
        num_neighbors: per-item neighbourhood size kept after fitting.

    Scoring: ``score(i) = Σ_{j ∈ H} sim(i, j)`` over the stored neighbour
    lists of the query's items.
    """

    name = "item_knn"

    def __init__(self, num_neighbors: int = 20) -> None:
        super().__init__()
        require_positive(num_neighbors, "num_neighbors")
        self.num_neighbors = num_neighbors
        #: item id -> [(neighbour id, similarity)], best first.
        self._neighbors: dict[int, list[tuple[int, float]]] = {}

    def _fit(self, activities: list[frozenset[int]]) -> None:
        item_users: dict[int, set[int]] = defaultdict(set)
        for user, activity in enumerate(activities):
            for item in activity:
                item_users[item].add(user)
        # Candidate pairs: items sharing at least one user.  Enumerating
        # per-activity pairs keeps this O(Σ|H|²) instead of O(items²).
        pair_seen: set[tuple[int, int]] = set()
        neighbors: dict[int, list[tuple[int, float]]] = defaultdict(list)
        for activity in activities:
            items = sorted(activity)
            for index, a in enumerate(items):
                for b in items[index + 1 :]:
                    if (a, b) in pair_seen:
                        continue
                    pair_seen.add((a, b))
                    similarity = tanimoto(
                        frozenset(item_users[a]), frozenset(item_users[b])
                    )
                    if similarity > 0.0:
                        neighbors[a].append((b, similarity))
                        neighbors[b].append((a, similarity))
        self._neighbors = {}
        for item, candidates in neighbors.items():
            candidates.sort(key=lambda pair: (-pair[1], pair[0]))
            self._neighbors[item] = candidates[: self.num_neighbors]

    def item_neighbors(self, item_id: int) -> list[tuple[int, float]]:
        """The stored neighbour list of ``item_id`` (possibly empty)."""
        return list(self._neighbors.get(item_id, ()))

    def _score(self, activity: frozenset[int]) -> dict[int, float]:
        scores: dict[int, float] = defaultdict(float)
        for item in activity:
            for neighbor, similarity in self._neighbors.get(item, ()):
                if neighbor not in activity:
                    scores[neighbor] += similarity
        return dict(scores)
