"""Matrix-factorization collaborative filtering via ALS-WR (paper's "CF MF").

The paper uses Mahout's alternating-least-squares factorizer with
weighted-λ-regularization (Zhou et al., *Large-Scale Parallel Collaborative
Filtering for the Netflix Prize*, AAIM 2008).  This module is a from-scratch
NumPy implementation of the same algorithm on the binary (implicit) user-item
matrix:

- alternate between solving all user factors with item factors fixed and
  vice versa; each solve is ridge regression over the user's (item's)
  observed interactions;
- "weighted-λ" means the ridge term for user ``u`` is ``λ · n_u`` where
  ``n_u`` is the number of interactions of ``u`` (and symmetrically for
  items), which keeps regularization scale-free across activity sizes.

For implicit data the observed entries are the 1s; we additionally sample a
deterministic complement of 0-entries per row so the factors do not collapse
to the all-ones solution (the standard "negative sampling" treatment Mahout
applies for implicit ALS-WR usage).

A query activity that belongs to no training user is *folded in*: its factor
vector is obtained by one user-side least-squares solve against the learned
item factors, then items are ranked by the dot product.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaselineRecommender
from repro.utils.rng import SeedLike, make_rng
from repro.utils.validation import require_positive


class CFMatrixFactorizationRecommender(BaselineRecommender):
    """ALS-WR factorization of the binary activity matrix.

    Args:
        num_factors: latent dimensionality (paper-era defaults: 10-50).
        num_iterations: ALS sweeps; ALS-WR converges in a handful.
        regularization: the λ of weighted-λ-regularization.
        negative_ratio: sampled 0-entries per observed 1-entry.
        seed: RNG seed for factor initialization and negative sampling.
    """

    name = "cf_mf"

    def __init__(
        self,
        num_factors: int = 16,
        num_iterations: int = 10,
        regularization: float = 0.05,
        negative_ratio: int = 3,
        seed: SeedLike = 0,
    ) -> None:
        super().__init__()
        require_positive(num_factors, "num_factors")
        require_positive(num_iterations, "num_iterations")
        require_positive(regularization, "regularization")
        require_positive(negative_ratio, "negative_ratio")
        self.num_factors = num_factors
        self.num_iterations = num_iterations
        self.regularization = regularization
        self.negative_ratio = negative_ratio
        self._rng = make_rng(seed)
        self.user_factors: np.ndarray | None = None
        self.item_factors: np.ndarray | None = None
        self._user_items: list[np.ndarray] = []
        self._user_ratings: list[np.ndarray] = []

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------

    def _sample_training_entries(
        self, activities: list[frozenset[int]], num_items: int
    ) -> None:
        """Materialize per-user observed entries: 1s plus sampled 0s."""
        self._user_items = []
        self._user_ratings = []
        for activity in activities:
            positives = np.fromiter(sorted(activity), dtype=np.int64)
            num_negatives = min(
                len(positives) * self.negative_ratio,
                num_items - len(positives),
            )
            if num_negatives > 0:
                pool = np.setdiff1d(
                    np.arange(num_items, dtype=np.int64), positives
                )
                negatives = self._rng.choice(pool, size=num_negatives, replace=False)
            else:
                negatives = np.empty(0, dtype=np.int64)
            items = np.concatenate([positives, negatives])
            ratings = np.concatenate(
                [np.ones(len(positives)), np.zeros(len(negatives))]
            )
            self._user_items.append(items)
            self._user_ratings.append(ratings)

    @staticmethod
    def _solve_side(
        fixed: np.ndarray,
        entries_items: list[np.ndarray],
        entries_ratings: list[np.ndarray],
        regularization: float,
        num_factors: int,
    ) -> np.ndarray:
        """One ALS half-step: solve every row's ridge regression.

        ``fixed`` is the opposite side's factor matrix; each output row ``u``
        solves ``(Fᵀ F + λ n_u I) x = Fᵀ r`` over ``u``'s observed entries.
        """
        eye = np.eye(num_factors)
        solved = np.zeros((len(entries_items), num_factors))
        for row, (items, ratings) in enumerate(zip(entries_items, entries_ratings)):
            if len(items) == 0:
                continue
            factors = fixed[items]
            gram = factors.T @ factors + regularization * len(items) * eye
            rhs = factors.T @ ratings
            solved[row] = np.linalg.solve(gram, rhs)
        return solved

    def _fit(self, activities: list[frozenset[int]]) -> None:
        num_users = len(activities)
        num_items = len(self.items)
        self._sample_training_entries(activities, num_items)
        # Transpose the observed entries to the item side.
        item_users: list[list[int]] = [[] for _ in range(num_items)]
        item_ratings: list[list[float]] = [[] for _ in range(num_items)]
        for user, (items, ratings) in enumerate(
            zip(self._user_items, self._user_ratings)
        ):
            for item, rating in zip(items, ratings):
                item_users[item].append(user)
                item_ratings[item].append(rating)
        item_users_np = [np.array(users, dtype=np.int64) for users in item_users]
        item_ratings_np = [np.array(r) for r in item_ratings]

        self.user_factors = self._rng.normal(
            scale=0.1, size=(num_users, self.num_factors)
        )
        self.item_factors = self._rng.normal(
            scale=0.1, size=(num_items, self.num_factors)
        )
        for _ in range(self.num_iterations):
            self.user_factors = self._solve_side(
                self.item_factors,
                [np.asarray(i) for i in self._user_items],
                self._user_ratings,
                self.regularization,
                self.num_factors,
            )
            self.item_factors = self._solve_side(
                self.user_factors,
                item_users_np,
                item_ratings_np,
                self.regularization,
                self.num_factors,
            )

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------

    def fold_in(self, activity: frozenset[int]) -> np.ndarray:
        """Compute a factor vector for an unseen activity.

        One user-side ALS-WR solve over the activity's items, treating every
        item in the activity as a rating of 1.
        """
        assert self.item_factors is not None, "fold_in before fit"
        if not activity:
            return np.zeros(self.num_factors)
        items = np.fromiter(sorted(activity), dtype=np.int64)
        factors = self.item_factors[items]
        gram = (
            factors.T @ factors
            + self.regularization * len(items) * np.eye(self.num_factors)
        )
        rhs = factors.T @ np.ones(len(items))
        return np.linalg.solve(gram, rhs)

    def _score(self, activity: frozenset[int]) -> dict[int, float]:
        assert self.item_factors is not None
        user_vector = self.fold_in(activity)
        predictions = self.item_factors @ user_vector
        return {
            item: float(predictions[item])
            for item in range(len(self.items))
            if item not in activity
        }
