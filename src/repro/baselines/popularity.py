"""Most-popular baseline.

Ranks items by their raw frequency in the training corpus, excluding items
already in the query activity.  It is the degenerate case of collaborative
filtering (neighbourhood = everyone) and the natural yardstick for the
paper's Table 3 experiment: popularity *is* the collective behaviour the
goal-based strategies are shown not to perpetuate.
"""

from __future__ import annotations

from collections import defaultdict

from repro.baselines.base import BaselineRecommender


class PopularityRecommender(BaselineRecommender):
    """Rank items by training-corpus frequency."""

    name = "popularity"

    def __init__(self) -> None:
        super().__init__()
        self._counts: dict[int, int] = {}

    def _fit(self, activities: list[frozenset[int]]) -> None:
        counts: dict[int, int] = defaultdict(int)
        for activity in activities:
            for item in activity:
                counts[item] += 1
        self._counts = dict(counts)

    def item_count(self, item_id: int) -> int:
        """Raw training count of ``item_id`` (0 if never seen)."""
        return self._counts.get(item_id, 0)

    def _score(self, activity: frozenset[int]) -> dict[int, float]:
        return {
            item: float(count)
            for item, count in self._counts.items()
            if item not in activity
        }
