"""Association-rule recommender (the paper's Section 2 contrast).

The paper argues that association-rule mining cannot replicate goal-based
recommendations because rules only surface *popular* co-occurrences, whereas
goal implementations justify combinations regardless of how often users have
bought them together.  To make that argument measurable we implement the
classic pipeline:

1. Apriori mining of frequent itemsets up to ``max_itemset_size`` (pairs by
   default — the standard choice for recommendation rules) above a minimum
   support;
2. rule generation ``X → y`` with a minimum confidence;
3. scoring: for an activity ``H``, every rule with ``X ⊆ H`` votes for its
   consequent with weight ``confidence · support`` (so strong *and* popular
   rules dominate, which is precisely the popularity bias the paper
   criticizes and Table 3 quantifies).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from itertools import combinations

from repro.baselines.base import BaselineRecommender
from repro.utils.validation import require_positive, require_probability


@dataclass(frozen=True, slots=True)
class AssociationRule:
    """A mined rule ``antecedent → consequent`` with its statistics."""

    antecedent: frozenset[int]
    consequent: int
    support: float
    confidence: float


class AssociationRuleRecommender(BaselineRecommender):
    """Recommend consequents of rules whose antecedents the activity covers.

    Args:
        min_support: minimum fraction of training activities an itemset must
            appear in.
        min_confidence: minimum rule confidence.
        max_itemset_size: largest frequent itemset mined (2 = pair rules).
    """

    name = "assoc_rules"

    def __init__(
        self,
        min_support: float = 0.01,
        min_confidence: float = 0.1,
        max_itemset_size: int = 2,
    ) -> None:
        super().__init__()
        require_probability(min_support, "min_support")
        require_probability(min_confidence, "min_confidence")
        require_positive(max_itemset_size, "max_itemset_size")
        if max_itemset_size < 2:
            raise ValueError("max_itemset_size must be at least 2 to form rules")
        self.min_support = min_support
        self.min_confidence = min_confidence
        self.max_itemset_size = max_itemset_size
        self.rules: list[AssociationRule] = []
        self._rules_by_antecedent: dict[frozenset[int], list[AssociationRule]] = {}

    # ------------------------------------------------------------------
    # Mining (Apriori)
    # ------------------------------------------------------------------

    def _frequent_itemsets(
        self, activities: list[frozenset[int]]
    ) -> dict[frozenset[int], float]:
        """All frequent itemsets up to ``max_itemset_size`` with supports."""
        num_activities = len(activities)
        min_count = self.min_support * num_activities

        # Level 1.
        counts: dict[int, int] = defaultdict(int)
        for activity in activities:
            for item in activity:
                counts[item] += 1
        frequent: dict[frozenset[int], float] = {
            frozenset((item,)): count / num_activities
            for item, count in counts.items()
            if count >= min_count
        }
        current_level = {itemset for itemset in frequent if len(itemset) == 1}

        # Levels 2..max: candidate generation + counting, with activities
        # pruned to frequent singletons to keep combinations() small.
        frequent_items = {next(iter(s)) for s in current_level}
        for size in range(2, self.max_itemset_size + 1):
            level_counts: dict[frozenset[int], int] = defaultdict(int)
            for activity in activities:
                pruned = sorted(activity & frequent_items)
                if len(pruned) < size:
                    continue
                for combo in combinations(pruned, size):
                    candidate = frozenset(combo)
                    # Apriori pruning: all (size-1)-subsets must be frequent.
                    if size == 2 or all(
                        candidate - {item} in frequent for item in candidate
                    ):
                        level_counts[candidate] += 1
            next_level = {
                itemset: count / num_activities
                for itemset, count in level_counts.items()
                if count >= min_count
            }
            if not next_level:
                break
            frequent.update(next_level)
            current_level = set(next_level)
        return frequent

    def _fit(self, activities: list[frozenset[int]]) -> None:
        frequent = self._frequent_itemsets(activities)
        rules: list[AssociationRule] = []
        for itemset, support in frequent.items():
            if len(itemset) < 2:
                continue
            for consequent in itemset:
                antecedent = itemset - {consequent}
                antecedent_support = frequent.get(antecedent)
                if antecedent_support is None or antecedent_support == 0.0:
                    continue
                confidence = support / antecedent_support
                if confidence >= self.min_confidence:
                    rules.append(
                        AssociationRule(antecedent, consequent, support, confidence)
                    )
        rules.sort(
            key=lambda r: (-r.confidence, -r.support, sorted(r.antecedent), r.consequent)
        )
        self.rules = rules
        by_antecedent: dict[frozenset[int], list[AssociationRule]] = defaultdict(list)
        for rule in rules:
            by_antecedent[rule.antecedent].append(rule)
        self._rules_by_antecedent = dict(by_antecedent)

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------

    def _score(self, activity: frozenset[int]) -> dict[int, float]:
        scores: dict[int, float] = defaultdict(float)
        max_antecedent = self.max_itemset_size - 1
        items = sorted(activity)
        for size in range(1, min(max_antecedent, len(items)) + 1):
            for combo in combinations(items, size):
                for rule in self._rules_by_antecedent.get(frozenset(combo), ()):
                    if rule.consequent not in activity:
                        scores[rule.consequent] += rule.confidence * rule.support
        return dict(scores)
