"""Single-source package version.

``pyproject.toml`` is the authority.  In a source checkout (the common case
for this reproduction: ``PYTHONPATH=src``) the file sits two directories
above this module and is parsed directly; in an installed distribution the
version comes from package metadata.  Neither failing yields a sentinel
rather than an exception — version detection must never break imports.
"""

from __future__ import annotations

from pathlib import Path

_FALLBACK = "0.0.0+unknown"


def _from_pyproject() -> str | None:
    for parent in Path(__file__).resolve().parents:
        candidate = parent / "pyproject.toml"
        if not candidate.is_file():
            continue
        try:
            import tomllib

            with candidate.open("rb") as handle:
                project = tomllib.load(handle).get("project", {})
        except Exception:
            return None
        # Guard against an unrelated pyproject.toml higher up the tree.
        if project.get("name") != "repro":
            return None
        version = project.get("version")
        return version if isinstance(version, str) else None
    return None


def _from_metadata() -> str | None:
    try:
        from importlib.metadata import version

        return version("repro")
    except Exception:
        return None


def _detect_version() -> str:
    return _from_pyproject() or _from_metadata() or _FALLBACK


__version__ = _detect_version()
