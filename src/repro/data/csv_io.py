"""CSV import/export for libraries and activity logs.

Real deployments rarely start from our JSON schema; they have transaction
logs.  Two plain formats are supported:

- **Implementation CSV** — one row per ``(goal, action)`` membership with
  columns ``goal, action`` and optionally ``impl`` (an implementation key,
  for goals with several alternative implementations; rows sharing
  ``(goal, impl)`` form one implementation, rows without ``impl`` group by
  goal alone).
- **Activity CSV** — one row per ``(user, action)`` event with columns
  ``user, action``; row order within a user is preserved as the activity
  sequence.
"""

from __future__ import annotations

import csv
from collections import defaultdict
from pathlib import Path

from repro.core.library import ImplementationLibrary
from repro.data.schema import GeneratedUser
from repro.exceptions import DataError


def write_library_csv(library: ImplementationLibrary, path: str | Path) -> Path:
    """Export a library as ``goal, impl, action`` rows; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["goal", "impl", "action"])
        for impl in library:
            for action in sorted(map(str, impl.actions)):
                writer.writerow([str(impl.goal), impl.impl_id, action])
    return path


def read_library_csv(path: str | Path) -> ImplementationLibrary:
    """Import a library from an implementation CSV.

    Accepts headers ``goal, action`` or ``goal, impl, action`` (any column
    order).  Raises :class:`DataError` on missing files, missing required
    columns, or blank goal/action cells.
    """
    path = Path(path)
    if not path.exists():
        raise DataError(f"library CSV not found: {path}")
    groups: dict[tuple[str, str], list[str]] = defaultdict(list)
    order: list[tuple[str, str]] = []
    with path.open("r", encoding="utf-8", newline="") as handle:
        reader = csv.DictReader(handle)
        fields = set(reader.fieldnames or ())
        if not {"goal", "action"} <= fields:
            raise DataError(
                f"{path}: implementation CSV needs 'goal' and 'action' "
                f"columns; found {sorted(fields)}"
            )
        has_impl = "impl" in fields
        for line, row in enumerate(reader, start=2):
            goal = (row.get("goal") or "").strip()
            action = (row.get("action") or "").strip()
            if not goal or not action:
                raise DataError(f"{path}:{line}: blank goal or action")
            impl_key = (row.get("impl") or "").strip() if has_impl else ""
            key = (goal, impl_key)
            if key not in groups:
                order.append(key)
            groups[key].append(action)
    if not groups:
        raise DataError(f"{path}: no implementation rows")
    library = ImplementationLibrary()
    for key in order:
        goal, _ = key
        library.add_pair(goal, groups[key])
    return library


def write_activities_csv(
    users: list[GeneratedUser], path: str | Path
) -> Path:
    """Export user activities as ``user, action`` event rows.

    Users with a recorded sequence emit it in order; others emit their
    activity sorted by label.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["user", "action"])
        for user in users:
            actions = user.sequence or tuple(
                sorted(map(str, user.full_activity))
            )
            for action in actions:
                writer.writerow([user.user_id, str(action)])
    return path


def read_activities_csv(path: str | Path) -> list[GeneratedUser]:
    """Import user activities from an activity CSV.

    Rows group by ``user`` (order preserved as the sequence; duplicate
    events are kept once, at their first position).  Raises
    :class:`DataError` on malformed input.
    """
    path = Path(path)
    if not path.exists():
        raise DataError(f"activity CSV not found: {path}")
    sequences: dict[str, list[str]] = defaultdict(list)
    order: list[str] = []
    with path.open("r", encoding="utf-8", newline="") as handle:
        reader = csv.DictReader(handle)
        fields = set(reader.fieldnames or ())
        if not {"user", "action"} <= fields:
            raise DataError(
                f"{path}: activity CSV needs 'user' and 'action' columns; "
                f"found {sorted(fields)}"
            )
        for line, row in enumerate(reader, start=2):
            user = (row.get("user") or "").strip()
            action = (row.get("action") or "").strip()
            if not user or not action:
                raise DataError(f"{path}:{line}: blank user or action")
            if user not in sequences:
                order.append(user)
            if action not in sequences[user]:
                sequences[user].append(action)
    if not sequences:
        raise DataError(f"{path}: no activity rows")
    return [
        GeneratedUser(
            user_id=user,
            full_activity=frozenset(sequences[user]),
            sequence=tuple(sequences[user]),
        )
        for user in order
    ]
