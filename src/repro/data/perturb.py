"""Library perturbation for robustness studies.

Goal implementation libraries come from noisy sources — crawled recipes
miss ingredients, extracted stories hallucinate actions.  These helpers
inject controlled noise into a clean library so the robustness benches can
measure how gracefully the strategies degrade:

- ``drop``: each action of each implementation is removed with probability
  ``drop_prob`` (implementations never drop below one action);
- ``add``: with probability ``add_prob`` an implementation gains one
  uniformly random action from the library's vocabulary;
- ``relabel``: with probability ``relabel_prob`` an implementation's goal
  is replaced by another library goal (cross-goal contamination, the
  association-rule failure mode the paper's Section 2 describes).
"""

from __future__ import annotations

from repro.core.library import ImplementationLibrary
from repro.utils.rng import SeedLike, make_rng
from repro.utils.validation import require_probability


def perturb_library(
    library: ImplementationLibrary,
    drop_prob: float = 0.0,
    add_prob: float = 0.0,
    relabel_prob: float = 0.0,
    seed: SeedLike = 0,
) -> ImplementationLibrary:
    """Return a noisy copy of ``library``; deterministic per seed.

    The original library is never modified.  Deduplication may merge
    implementations that become identical under noise, so the result can be
    slightly smaller than the input.
    """
    require_probability(drop_prob, "drop_prob")
    require_probability(add_prob, "add_prob")
    require_probability(relabel_prob, "relabel_prob")
    rng = make_rng(seed)
    vocabulary = sorted(library.actions(), key=str)
    goals = sorted(library.goals(), key=str)
    noisy = ImplementationLibrary()
    for impl in library:
        actions = sorted(impl.actions, key=str)
        kept = [a for a in actions if rng.random() >= drop_prob]
        if not kept:  # never empty an implementation entirely
            kept = [actions[int(rng.integers(len(actions)))]]
        if vocabulary and rng.random() < add_prob:
            kept.append(vocabulary[int(rng.integers(len(vocabulary)))])
        goal = impl.goal
        if len(goals) > 1 and rng.random() < relabel_prob:
            alternatives = [g for g in goals if g != goal]
            goal = alternatives[int(rng.integers(len(alternatives)))]
        noisy.add_pair(goal, kept)
    return noisy
