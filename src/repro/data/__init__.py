"""Datasets: schema, synthetic generators, and (de)serialization.

The paper evaluates on two real datasets we cannot redistribute — FoodMart
purchase records joined with a 56.5K-recipe ontology, and an 18K-implementation
crawl of the 43Things goal-setting site.  :mod:`repro.data.synthetic` ships
generators whose outputs match the *published statistics* of those datasets
(sizes, connectivity, user-goal multiplicities), which is what the
algorithms' behaviour depends on; DESIGN.md documents the substitution.
"""

from repro.data.loaders import load_dataset, save_dataset
from repro.data.schema import Dataset, GeneratedUser
from repro.data.synthetic.foodmart import FoodMartConfig, generate_foodmart
from repro.data.synthetic.fortythree import FortyThreeConfig, generate_fortythree
from repro.data.synthetic.learning import LearningConfig, generate_learning

__all__ = [
    "Dataset",
    "GeneratedUser",
    "FoodMartConfig",
    "generate_foodmart",
    "FortyThreeConfig",
    "generate_fortythree",
    "LearningConfig",
    "generate_learning",
    "save_dataset",
    "load_dataset",
]
