"""JSON (de)serialization of datasets and libraries.

A dataset round-trips through a single JSON document so experiments can be
frozen to disk and reloaded bit-identically.  Labels must be strings for the
shipped loaders (all generators produce string labels); arbitrary hashable
labels remain supported in-memory.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.entities import GoalImplementation
from repro.core.library import ImplementationLibrary
from repro.data.schema import Dataset, GeneratedUser
from repro.exceptions import DataError

_FORMAT_VERSION = 1


def library_to_dict(library: ImplementationLibrary) -> dict:
    """Serialize a library to a JSON-compatible dict."""
    return {
        "implementations": [
            {"goal": str(impl.goal), "actions": sorted(map(str, impl.actions))}
            for impl in library
        ]
    }


def library_from_dict(payload: dict) -> ImplementationLibrary:
    """Deserialize a library produced by :func:`library_to_dict`."""
    try:
        rows = payload["implementations"]
    except KeyError:
        raise DataError("library payload missing 'implementations'") from None
    library = ImplementationLibrary()
    for row in rows:
        try:
            library.add(
                GoalImplementation(
                    goal=row["goal"], actions=frozenset(row["actions"])
                )
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise DataError(f"malformed implementation row {row!r}: {exc}") from exc
    return library


def dataset_to_dict(dataset: Dataset) -> dict:
    """Serialize a full dataset to a JSON-compatible dict."""
    payload: dict = {
        "format_version": _FORMAT_VERSION,
        "name": dataset.name,
        "library": library_to_dict(dataset.library),
        "users": [
            {
                "user_id": user.user_id,
                "full_activity": sorted(map(str, user.full_activity)),
                "goals": [str(g) for g in user.goals],
                "sequence": [str(a) for a in user.sequence],
            }
            for user in dataset.users
        ],
        "metadata": dataset.metadata,
    }
    if dataset.item_features is not None:
        payload["item_features"] = {
            str(item): sorted(features)
            for item, features in dataset.item_features.items()
        }
    return payload


def dataset_from_dict(payload: dict) -> Dataset:
    """Deserialize a dataset produced by :func:`dataset_to_dict`."""
    version = payload.get("format_version")
    if version != _FORMAT_VERSION:
        raise DataError(
            f"unsupported dataset format version {version!r} "
            f"(expected {_FORMAT_VERSION})"
        )
    try:
        users = [
            GeneratedUser(
                user_id=row["user_id"],
                full_activity=frozenset(row["full_activity"]),
                goals=tuple(row.get("goals", ())),
                sequence=tuple(row.get("sequence", ())),
            )
            for row in payload["users"]
        ]
        features_raw = payload.get("item_features")
        item_features = (
            {item: frozenset(values) for item, values in features_raw.items()}
            if features_raw is not None
            else None
        )
        return Dataset(
            name=payload["name"],
            library=library_from_dict(payload["library"]),
            users=users,
            item_features=item_features,
            metadata=payload.get("metadata", {}),
        )
    except (KeyError, TypeError) as exc:
        raise DataError(f"malformed dataset payload: {exc}") from exc


def save_dataset(dataset: Dataset, path: str | Path) -> Path:
    """Write a dataset to ``path`` as JSON; returns the path.

    A ``.gz`` suffix switches to gzip-compressed JSON transparently —
    paper-scale datasets shrink roughly tenfold.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = dataset_to_dict(dataset)
    if path.suffix == ".gz":
        import gzip

        with gzip.open(path, "wt", encoding="utf-8") as handle:
            json.dump(payload, handle)
    else:
        with path.open("w", encoding="utf-8") as handle:
            json.dump(payload, handle)
    return path


def load_dataset(path: str | Path) -> Dataset:
    """Read a dataset written by :func:`save_dataset` (plain or ``.gz``).

    Raises :class:`DataError` for missing files or malformed content.
    """
    path = Path(path)
    if not path.exists():
        raise DataError(f"dataset file not found: {path}")
    try:
        if path.suffix == ".gz":
            import gzip

            with gzip.open(path, "rt", encoding="utf-8") as handle:
                payload = json.load(handle)
        else:
            with path.open("r", encoding="utf-8") as handle:
                payload = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise DataError(f"invalid dataset file {path}: {exc}") from exc
    return dataset_from_dict(payload)
