"""Synthetic goal stories with extraction ground truth.

The 43Things pipeline starts from free text; to *measure* the action
extractor (precision/recall) we need stories whose true action set is
known.  This generator composes wikiHow-style success stories from
templates over a small verb-object vocabulary:

- every story narrates a known set of true actions, each rendered through a
  random surface form (imperative, first-person past, enumerated step,
  trailing punctuation/filler variation);
- *distractor* sentences (weather, feelings, commentary) that contain no
  action are interleaved, so precision is non-trivial;
- the gold label of each action is its canonical normalized form — exactly
  what the extractor should produce.

Used by ``tests/test_story_extraction.py`` and
``benchmarks/bench_extraction_quality.py`` to report extractor P/R/F1.
"""

from __future__ import annotations

from dataclasses import dataclass


from repro.text.extraction import GoalStory
from repro.text.tokenizer import normalize_phrase
from repro.utils.rng import SeedLike, make_rng
from repro.utils.validation import require_positive

#: (verb, object) pairs the stories draw actions from.  Verbs are all in
#: the extractor's lexicon; objects add surface variety.
_ACTION_VOCABULARY: tuple[tuple[str, str], ...] = (
    ("join", "a gym"),
    ("drink", "more water"),
    ("run", "every morning"),
    ("stop", "eating at restaurants"),
    ("cook", "at home"),
    ("track", "my spending"),
    ("read", "one book per month"),
    ("save", "ten percent of income"),
    ("meditate", "before bed"),
    ("walk", "to work"),
    ("learn", "basic spanish"),
    ("practice", "guitar daily"),
    ("sleep", "eight hours"),
    ("cut", "sugar from breakfast"),
    ("call", "family every week"),
    ("volunteer", "at the shelter"),
    ("plan", "meals on sunday"),
    ("study", "two hours daily"),
    ("swim", "twice per week"),
    ("write", "morning pages"),
)

#: Surface templates; ``{verb}``/``{object}`` slots, with past forms for
#: the first-person variants handled by the irregular/regular rules the
#: extractor itself knows.
_SURFACE_TEMPLATES = (
    "{verb} {object}",
    "{verb} {object}!",
    "I decided to {verb} {object}",
    "i {verb} {object} every single time",
    "First {verb} {object}",
    "then {verb} {object}",
)

#: Sentences that must NOT be extracted.
_DISTRACTORS = (
    "It was a very difficult year for me",
    "The weather was absolutely terrible",
    "My friends were supportive throughout",
    "Everything felt impossible at first",
    "There were many ups and downs",
    "Motivation is a strange thing",
)

_GOAL_NAMES = (
    "lose weight", "get fit", "save money", "be healthier", "learn more",
    "sleep better", "be happier", "run a marathon", "reduce stress",
    "get organized",
)


@dataclass(frozen=True, slots=True)
class LabelledStory:
    """A story plus its gold extraction labels."""

    story: GoalStory
    true_actions: frozenset[str]


def canonical_action(verb: str, obj: str) -> str:
    """The gold label the extractor should produce for ``verb object``."""
    return normalize_phrase(f"{verb} {obj}")


def generate_labelled_stories(
    count: int = 50,
    actions_per_story: int = 3,
    distractors_per_story: int = 2,
    seed: SeedLike = 0,
) -> list[LabelledStory]:
    """Generate ``count`` stories with known true action sets."""
    require_positive(count, "count")
    require_positive(actions_per_story, "actions_per_story")
    if distractors_per_story < 0:
        raise ValueError("distractors_per_story must be non-negative")
    rng = make_rng(seed)
    stories: list[LabelledStory] = []
    for index in range(count):
        goal = _GOAL_NAMES[int(rng.integers(len(_GOAL_NAMES)))]
        picks = rng.choice(
            len(_ACTION_VOCABULARY),
            size=min(actions_per_story, len(_ACTION_VOCABULARY)),
            replace=False,
        )
        sentences: list[str] = []
        gold: set[str] = set()
        for pick in picks:
            verb, obj = _ACTION_VOCABULARY[int(pick)]
            template = _SURFACE_TEMPLATES[
                int(rng.integers(len(_SURFACE_TEMPLATES)))
            ]
            sentences.append(template.format(verb=verb, object=obj))
            gold.add(canonical_action(verb, obj))
        for _ in range(distractors_per_story):
            sentences.append(
                _DISTRACTORS[int(rng.integers(len(_DISTRACTORS)))]
            )
        order = rng.permutation(len(sentences))
        text = ". ".join(sentences[int(i)] for i in order) + "."
        stories.append(
            LabelledStory(
                story=GoalStory(goal=f"{goal} #{index}", text=text),
                true_actions=frozenset(gold),
            )
        )
    return stories


@dataclass(frozen=True, slots=True)
class ExtractionQuality:
    """Micro-averaged extraction quality over a labelled corpus."""

    precision: float
    recall: float
    f1: float
    true_positives: int
    false_positives: int
    false_negatives: int


def evaluate_extractor(
    stories: list[LabelledStory], extractor=None
) -> ExtractionQuality:
    """Micro-averaged P/R/F1 of an extractor against gold labels."""
    from repro.text.extraction import ActionExtractor

    if not stories:
        raise ValueError("stories must not be empty")
    extractor = extractor or ActionExtractor()
    tp = fp = fn = 0
    for labelled in stories:
        predicted = set(extractor.extract(labelled.story))
        gold = set(labelled.true_actions)
        tp += len(predicted & gold)
        fp += len(predicted - gold)
        fn += len(gold - predicted)
    precision = tp / (tp + fp) if tp + fp else 0.0
    recall = tp / (tp + fn) if tp + fn else 0.0
    f1 = (
        2 * precision * recall / (precision + recall)
        if precision + recall
        else 0.0
    )
    return ExtractionQuality(
        precision=precision,
        recall=recall,
        f1=f1,
        true_positives=tp,
        false_positives=fp,
        false_negatives=fn,
    )
