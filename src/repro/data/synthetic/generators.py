"""Sampling primitives shared by the synthetic dataset generators.

Both scenarios need the same ingredients: Zipf-skewed popularity (a few
staples appear in very many recipes/activities, most items rarely), weighted
sampling of *distinct* elements, and integer sizes drawn around a mean.
Centralizing them keeps the generators small and their randomness uniform.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import require_positive


def zipf_weights(count: int, exponent: float = 1.0) -> np.ndarray:
    """Normalized Zipf weights ``w_r ∝ 1 / rank^exponent`` for ``count`` ranks.

    ``exponent=0`` degenerates to the uniform distribution.
    """
    require_positive(count, "count")
    if exponent < 0:
        raise ValueError(f"exponent must be non-negative, got {exponent}")
    ranks = np.arange(1, count + 1, dtype=np.float64)
    weights = ranks ** (-exponent)
    return weights / weights.sum()


def sample_distinct(
    rng: np.random.Generator,
    population: int,
    size: int,
    weights: np.ndarray | None = None,
) -> np.ndarray:
    """Draw ``size`` distinct indices from ``range(population)``.

    With ``weights`` the draw is popularity-biased (without replacement).
    ``size`` is clamped to the population, so callers can request "about
    this many" safely.
    """
    size = min(size, population)
    if size <= 0:
        return np.empty(0, dtype=np.int64)
    return rng.choice(population, size=size, replace=False, p=weights).astype(
        np.int64
    )


def sample_size(
    rng: np.random.Generator,
    mean: float,
    minimum: int,
    maximum: int,
) -> int:
    """Draw an integer set size around ``mean``, clamped to the given range.

    A Poisson draw gives realistic dispersion for basket/recipe sizes while
    keeping the configured mean interpretable.
    """
    require_positive(mean, "mean")
    if minimum > maximum:
        raise ValueError(f"minimum {minimum} exceeds maximum {maximum}")
    value = int(rng.poisson(mean))
    return max(minimum, min(maximum, value))


def partition_sizes(
    rng: np.random.Generator, total: int, buckets: int
) -> list[int]:
    """Split ``total`` elements into ``buckets`` positive random parts.

    Used to assign items to category "families" with realistic imbalance.
    Every bucket gets at least one element (requires ``total >= buckets``).
    """
    require_positive(total, "total")
    require_positive(buckets, "buckets")
    if total < buckets:
        raise ValueError(
            f"cannot split {total} elements into {buckets} non-empty buckets"
        )
    # Dirichlet proportions, floored at one element per bucket.
    proportions = rng.dirichlet(np.ones(buckets) * 2.0)
    sizes = np.maximum(1, np.round(proportions * total).astype(int))
    # Repair rounding drift by adjusting the largest buckets.
    drift = sizes.sum() - total
    order = np.argsort(-sizes)
    idx = 0
    while drift != 0:
        bucket = order[idx % buckets]
        if drift > 0 and sizes[bucket] > 1:
            sizes[bucket] -= 1
            drift -= 1
        elif drift < 0:
            sizes[bucket] += 1
            drift += 1
        idx += 1
    return sizes.tolist()
