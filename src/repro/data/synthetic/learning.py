"""Synthetic online-learning scenario (the introduction's third domain).

The paper motivates goal-based recommendation with online learning
platforms: *"Online learning platforms have specializations and degrees
that are implemented through courses.  Each specialization is associated
with one or more sets of courses indicating the actions required to achieve
the goal."*  This generator builds that world:

- **Courses** (the actions) belong to subjects ("math_012", ...), with a
  core of widely required service courses (intro programming, statistics)
  — the high-connectivity staples of this domain;
- **Specializations** (the goals) have one or more *tracks* (alternative
  implementations): a shared core plus track-specific electives, mostly
  from one or two subjects;
- **Students** (the users) enrol toward one or two specializations and have
  completed a random prefix of a track — the natural "which course next?"
  situation; completed courses are recorded in order (sequence baselines
  apply).

Course catalogues carry subject features, so the content baseline and the
hybrid strategy apply out of the box.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

import numpy as np

from repro.core.entities import ActionLabel
from repro.core.library import ImplementationLibrary
from repro.data.schema import Dataset, GeneratedUser
from repro.data.synthetic.generators import partition_sizes, zipf_weights
from repro.utils.rng import SeedLike, make_rng
from repro.utils.validation import require_positive, require_probability


@dataclass(frozen=True, slots=True)
class LearningConfig:
    """Parameters of the online-learning generator."""

    num_courses: int = 300
    num_subjects: int = 12
    num_specializations: int = 60
    tracks_per_specialization_max: int = 3
    core_courses: int = 10
    track_length_min: int = 4
    track_length_max: int = 8
    core_share: float = 0.3
    num_students: int = 500
    progress_min: float = 0.2
    progress_max: float = 0.8
    second_specialization_probability: float = 0.3

    def __post_init__(self) -> None:
        require_positive(self.num_courses, "num_courses")
        require_positive(self.num_subjects, "num_subjects")
        require_positive(self.num_specializations, "num_specializations")
        require_positive(
            self.tracks_per_specialization_max, "tracks_per_specialization_max"
        )
        require_positive(self.num_students, "num_students")
        require_probability(self.core_share, "core_share")
        require_probability(self.progress_min, "progress_min")
        require_probability(self.progress_max, "progress_max")
        require_probability(
            self.second_specialization_probability,
            "second_specialization_probability",
        )
        if self.num_subjects > self.num_courses:
            raise ValueError("more subjects than courses")
        if self.core_courses >= self.num_courses:
            raise ValueError("core_courses must be below num_courses")
        if self.track_length_min > self.track_length_max:
            raise ValueError("track_length_min exceeds track_length_max")
        if self.progress_min > self.progress_max:
            raise ValueError("progress_min exceeds progress_max")

    @classmethod
    def tiny(cls) -> "LearningConfig":
        """Minimal configuration for unit tests."""
        return cls(
            num_courses=60,
            num_subjects=6,
            num_specializations=15,
            core_courses=5,
            num_students=60,
        )


def _course_label(index: int) -> str:
    return f"course_{index:04d}"


def _subject_label(index: int) -> str:
    return f"subject_{index:03d}"


def _specialization_label(index: int) -> str:
    return f"specialization_{index:03d}"


def generate_learning(
    config: LearningConfig | None = None, seed: SeedLike = 2
) -> Dataset:
    """Generate an online-learning scenario; deterministic per seed."""
    config = config or LearningConfig()
    rng = make_rng(seed)

    # Subjects and the service core (course ids 0..core-1 are core).
    subject_sizes = partition_sizes(rng, config.num_courses, config.num_subjects)
    course_subject = np.zeros(config.num_courses, dtype=np.int64)
    start = 0
    for subject, size in enumerate(subject_sizes):
        course_subject[start : start + size] = subject
        start += size
    subject_members = [
        np.flatnonzero(course_subject == s) for s in range(config.num_subjects)
    ]
    core = np.arange(config.core_courses, dtype=np.int64)

    # Specializations: per track, core + subject-biased electives.
    library = ImplementationLibrary()
    track_courses: dict[int, list[frozenset[int]]] = {}
    for spec in range(config.num_specializations):
        num_tracks = int(rng.integers(1, config.tracks_per_specialization_max + 1))
        home_subjects = rng.choice(
            config.num_subjects, size=min(2, config.num_subjects), replace=False
        )
        tracks: list[frozenset[int]] = []
        for _ in range(num_tracks):
            length = int(
                rng.integers(config.track_length_min, config.track_length_max + 1)
            )
            num_core = max(1, int(round(config.core_share * length)))
            chosen: set[int] = {
                int(c)
                for c in rng.choice(core, size=min(num_core, len(core)), replace=False)
            }
            electives_pool = np.concatenate(
                [subject_members[s] for s in home_subjects]
            )
            electives_pool = electives_pool[electives_pool >= config.core_courses]
            while len(chosen) < length and len(electives_pool) > 0:
                chosen.add(int(rng.choice(electives_pool)))
            track = frozenset(chosen)
            if track not in tracks:
                tracks.append(track)
                library.add_pair(
                    _specialization_label(spec),
                    (_course_label(c) for c in sorted(track)),
                )
        track_courses[spec] = tracks

    # Students: pick 1-2 specializations, complete a prefix of one track each.
    spec_weights = zipf_weights(config.num_specializations, 0.8)
    users: list[GeneratedUser] = []
    for student in range(config.num_students):
        num_specs = 1 + int(
            rng.random() < config.second_specialization_probability
        )
        specs = rng.choice(
            config.num_specializations,
            size=num_specs,
            replace=False,
            p=spec_weights,
        )
        completed: list[int] = []
        for spec in specs:
            tracks = track_courses[int(spec)]
            track = tracks[int(rng.integers(len(tracks)))]
            progress = rng.uniform(config.progress_min, config.progress_max)
            take = max(1, int(round(progress * len(track))))
            ordered = sorted(track)
            picked = rng.choice(len(ordered), size=take, replace=False)
            for index in np.sort(picked):
                course = ordered[int(index)]
                if course not in completed:
                    completed.append(course)
        users.append(
            GeneratedUser(
                user_id=f"student_{student:05d}",
                full_activity=frozenset(
                    _course_label(c) for c in sorted(set(completed))
                ),
                goals=tuple(
                    _specialization_label(int(s)) for s in sorted(specs)
                ),
                sequence=tuple(_course_label(c) for c in completed),
            )
        )

    # Feature only the courses some track requires — the paper's rule of
    # dropping products "not included in any recipe, such as napkins".
    offered = library.actions()
    item_features: dict[ActionLabel, frozenset[str]] = {}
    for course in range(config.num_courses):
        label = _course_label(course)
        if label not in offered:
            continue
        features = {_subject_label(int(course_subject[course]))}
        if course < config.core_courses:
            features.add("core")
        item_features[label] = frozenset(features)

    return Dataset(
        name="learning",
        library=library,
        users=users,
        item_features=item_features,
        metadata={"config": asdict(config), "seed": repr(seed)},
    )
