"""Synthetic dataset generators calibrated to the paper's dataset profiles."""

from repro.data.synthetic.foodmart import FoodMartConfig, generate_foodmart
from repro.data.synthetic.fortythree import FortyThreeConfig, generate_fortythree
from repro.data.synthetic.learning import LearningConfig, generate_learning
from repro.data.synthetic.generators import (
    sample_distinct,
    sample_size,
    zipf_weights,
)

__all__ = [
    "FoodMartConfig",
    "generate_foodmart",
    "FortyThreeConfig",
    "generate_fortythree",
    "LearningConfig",
    "generate_learning",
    "zipf_weights",
    "sample_distinct",
    "sample_size",
]
