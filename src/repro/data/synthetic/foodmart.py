"""Synthetic grocery scenario matching the paper's FoodMart dataset profile.

The paper's first dataset joins 1 560 FoodMart products (in 128 subcategories
such as "baking goods" or "seafood") with 56.5K recipes from a food ontology,
giving an average action connectivity of about 1.2K — the *high-connectivity*
regime where single actions serve huge goal implementation spaces.  The user
inputs are 20.5K shopping carts.

This generator reproduces that structure synthetically:

- **Products** are split into categories with realistic imbalance; within
  the catalogue, popularity is Zipf-distributed so a handful of staples
  (flour, oil, salt analogues) appear in a large fraction of recipes.
- **Recipes** (the goal implementations) draw most ingredients from one or
  two "theme" categories plus popularity-weighted staples, so recipes
  overlap the way real cuisine does.
- **Carts** (the user activities) partially materialize one to three
  recipes — the shopper has some recipes in mind but has bought only part
  of the ingredients — plus popularity noise.  This is exactly the situation
  the goal-based recommender targets: carts contain evidence of goals
  without completing them.

``FoodMartConfig.paper_scale()`` matches the published counts;
``FoodMartConfig.small()`` is the CI-friendly default used by tests and
benchmarks (same shape, two orders of magnitude cheaper).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

import numpy as np

from repro.core.entities import ActionLabel
from repro.core.library import ImplementationLibrary
from repro.data.schema import Dataset, GeneratedUser
from repro.data.synthetic.generators import (
    partition_sizes,
    sample_distinct,
    sample_size,
    zipf_weights,
)
from repro.utils.rng import SeedLike, make_rng
from repro.utils.validation import require_positive, require_probability


@dataclass(frozen=True, slots=True)
class FoodMartConfig:
    """Parameters of the grocery generator.

    Attributes mirror the paper's dataset description; see module docstring.
    ``theme_bias`` is the probability an ingredient is drawn from the
    recipe's theme categories instead of the global staple pool.
    """

    num_products: int = 240
    num_categories: int = 24
    num_recipes: int = 1500
    num_carts: int = 400
    recipe_length_mean: float = 8.0
    recipe_length_min: int = 3
    recipe_length_max: int = 20
    cart_recipes_max: int = 3
    cart_fraction_min: float = 0.3
    cart_fraction_max: float = 0.8
    cart_noise_mean: float = 2.0
    popularity_exponent: float = 1.05
    theme_bias: float = 0.6

    def __post_init__(self) -> None:
        require_positive(self.num_products, "num_products")
        require_positive(self.num_categories, "num_categories")
        require_positive(self.num_recipes, "num_recipes")
        require_positive(self.num_carts, "num_carts")
        require_positive(self.recipe_length_mean, "recipe_length_mean")
        require_positive(self.cart_recipes_max, "cart_recipes_max")
        require_probability(self.cart_fraction_min, "cart_fraction_min")
        require_probability(self.cart_fraction_max, "cart_fraction_max")
        require_probability(self.theme_bias, "theme_bias")
        if self.num_categories > self.num_products:
            raise ValueError("more categories than products")
        if self.cart_fraction_min > self.cart_fraction_max:
            raise ValueError("cart_fraction_min exceeds cart_fraction_max")
        if self.recipe_length_min > self.recipe_length_max:
            raise ValueError("recipe_length_min exceeds recipe_length_max")

    @classmethod
    def paper_scale(cls) -> "FoodMartConfig":
        """The published dataset's counts (heavy: ~minutes to generate).

        1 560 products / 128 categories / 56 500 recipes / 20 500 carts; the
        recipe length targets the reported ~1.2K connectivity
        (``56 500 × 33 / 1 560 ≈ 1 195``).
        """
        return cls(
            num_products=1560,
            num_categories=128,
            num_recipes=56500,
            num_carts=20500,
            recipe_length_mean=33.0,
            recipe_length_min=5,
            recipe_length_max=60,
        )

    @classmethod
    def small(cls) -> "FoodMartConfig":
        """The default CI-scale configuration (same shape, fast)."""
        return cls()

    @classmethod
    def tiny(cls) -> "FoodMartConfig":
        """Minimal configuration for unit tests."""
        return cls(
            num_products=40,
            num_categories=8,
            num_recipes=120,
            num_carts=40,
            recipe_length_mean=5.0,
            recipe_length_min=2,
            recipe_length_max=10,
        )


def _product_label(index: int) -> str:
    return f"product_{index:05d}"


def _category_label(index: int) -> str:
    return f"category_{index:03d}"


def _recipe_label(index: int) -> str:
    return f"recipe_{index:05d}"


def generate_foodmart(
    config: FoodMartConfig | None = None, seed: SeedLike = 0
) -> Dataset:
    """Generate a grocery scenario; deterministic for a given seed."""
    config = config or FoodMartConfig.small()
    rng = make_rng(seed)

    # ------------------------------------------------------------------
    # Products and categories
    # ------------------------------------------------------------------
    category_sizes = partition_sizes(rng, config.num_products, config.num_categories)
    product_category = np.zeros(config.num_products, dtype=np.int64)
    next_product = 0
    for category, size in enumerate(category_sizes):
        product_category[next_product : next_product + size] = category
        next_product += size
    category_members: list[np.ndarray] = [
        np.flatnonzero(product_category == c) for c in range(config.num_categories)
    ]
    # Two *independent* Zipf rankings, both shuffled so popular products
    # spread across categories.  ``recipe_affinity`` drives how often an
    # ingredient occurs in recipes (flour, oil); ``purchase_popularity``
    # drives what shoppers routinely buy (milk, soda).  Real grocery data
    # decouples these, and the paper's Table 3 result (goal-based methods
    # do not recommend purchase-popular items) depends on that decoupling.
    recipe_affinity = zipf_weights(config.num_products, config.popularity_exponent)
    rng.shuffle(recipe_affinity)
    purchase_popularity = zipf_weights(
        config.num_products, config.popularity_exponent
    )
    rng.shuffle(purchase_popularity)

    # ------------------------------------------------------------------
    # Recipes (goal implementations)
    # ------------------------------------------------------------------
    library = ImplementationLibrary()
    recipe_products: list[np.ndarray] = []
    for recipe in range(config.num_recipes):
        length = sample_size(
            rng,
            config.recipe_length_mean,
            config.recipe_length_min,
            config.recipe_length_max,
        )
        num_themes = int(rng.integers(1, 3))
        themes = rng.choice(config.num_categories, size=num_themes, replace=False)
        theme_products = np.concatenate([category_members[t] for t in themes])
        chosen: set[int] = set()
        while len(chosen) < length:
            if rng.random() < config.theme_bias and len(chosen) < len(theme_products):
                pool = theme_products
                pool_weights = recipe_affinity[pool]
                pool_weights = pool_weights / pool_weights.sum()
                pick = int(rng.choice(pool, p=pool_weights))
            else:
                pick = int(
                    rng.choice(config.num_products, p=recipe_affinity)
                )
            chosen.add(pick)
        products = np.fromiter(sorted(chosen), dtype=np.int64)
        recipe_products.append(products)
        library.add_pair(
            _recipe_label(recipe),
            (_product_label(p) for p in products),
        )

    # ------------------------------------------------------------------
    # Carts (user activities)
    # ------------------------------------------------------------------
    recipe_weights = zipf_weights(config.num_recipes, 0.8)
    users: list[GeneratedUser] = []
    for cart in range(config.num_carts):
        num_recipes = int(rng.integers(1, config.cart_recipes_max + 1))
        picked = sample_distinct(
            rng, config.num_recipes, num_recipes, recipe_weights
        )
        items: set[int] = set()
        for rid in picked:
            products = recipe_products[rid]
            fraction = rng.uniform(config.cart_fraction_min, config.cart_fraction_max)
            take = max(1, int(round(fraction * len(products))))
            # Shoppers buy the popular staples of a recipe first; what is
            # still missing (and hence recommendable) skews niche — the
            # regime of the paper's motivating example (nutmeg, pickles).
            weights = purchase_popularity[products]
            weights = weights / weights.sum()
            items.update(
                int(p)
                for p in rng.choice(products, size=take, replace=False, p=weights)
            )
        noise = sample_size(rng, config.cart_noise_mean, 0, config.num_products)
        for p in sample_distinct(rng, config.num_products, noise, purchase_popularity):
            items.add(int(p))
        if not items:  # pragma: no cover - noise floor guarantees items
            items.add(int(rng.integers(config.num_products)))
        users.append(
            GeneratedUser(
                user_id=f"cart_{cart:05d}",
                full_activity=frozenset(_product_label(p) for p in sorted(items)),
            )
        )

    # ------------------------------------------------------------------
    # Item features: the product's category (plus a staple tag for the
    # most popular decile) — the content baseline's domain features.
    # ------------------------------------------------------------------
    staple_cutoff = np.quantile(recipe_affinity, 0.9)
    item_features: dict[ActionLabel, frozenset[str]] = {}
    for product in range(config.num_products):
        features = {_category_label(int(product_category[product]))}
        if recipe_affinity[product] >= staple_cutoff:
            features.add("staple")
        item_features[_product_label(product)] = frozenset(features)

    return Dataset(
        name="foodmart",
        library=library,
        users=users,
        item_features=item_features,
        metadata={"config": asdict(config), "seed": repr(seed)},
    )
