"""Synthetic life-goal scenario matching the paper's 43Things dataset profile.

The paper's second dataset was extracted from the 43Things goal-setting
platform: 18 047 goal implementations over 3 747 life goals (pay my debts,
lose weight, ...) and 5 456 actions, with a *very low* action connectivity of
3.84 — actions are useful only within narrow "families" of goals, the
opposite regime from the grocery dataset.  8 071 users pursue 1 goal (5 047
of them), 2 goals (1 806), 3 goals (623) or more (595); a user's activity is
the union of the actions they performed for all their goals.

This generator reproduces that structure:

- **Goal families**: goals are grouped into thematic families, and each
  family owns a disjoint pool of actions.  Implementations of a goal draw
  almost exclusively from the family pool (a small ``crossover`` probability
  lets an occasional action serve a second family), which is what keeps
  connectivity low.
- **Users** draw a goal count from the paper's multiplicity distribution,
  pick that many goals (Zipf-weighted: popular life goals exist), choose one
  or two implementations per goal and perform their union.

**Deviation from the published counts** (documented in DESIGN.md): the
published triple (18 047 implementations, 5 456 actions, connectivity 3.84)
implies an average implementation length of ~1.16 actions, under which the
association model degenerates (single-action implementations have an empty
action space, so nothing could ever be recommended — contradicting the
paper's own 43T results).  We therefore preserve the implementation count,
goal count and the *connectivity* (the quantity §5.4 identifies as the
complexity driver) and let the action count float: with mean length 3, the
paper-scale preset has ~14 100 actions.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

import numpy as np

from repro.core.library import ImplementationLibrary
from repro.data.schema import Dataset, GeneratedUser
from repro.data.synthetic.generators import (
    partition_sizes,
    sample_size,
    zipf_weights,
)
from repro.utils.rng import SeedLike, make_rng
from repro.utils.validation import require_positive, require_probability

#: The paper's user-goal multiplicity distribution:
#: 5 047 / 1 806 / 623 / 595 users out of 8 071 pursue 1 / 2 / 3 / >3 goals.
PAPER_GOAL_MULTIPLICITY = (0.6253, 0.2238, 0.0772, 0.0737)


@dataclass(frozen=True, slots=True)
class FortyThreeConfig:
    """Parameters of the life-goal generator.

    ``goal_multiplicity`` gives the probabilities of a user pursuing
    1, 2, 3 or >3 goals (paper values by default); users in the last bucket
    draw uniformly from 4-6 goals.  ``crossover`` is the probability an
    implementation action comes from a foreign family pool.
    """

    num_goals: int = 400
    num_actions: int = 1500
    num_implementations: int = 1900
    num_families: int = 40
    num_users: int = 800
    impl_length_mean: float = 3.0
    impl_length_min: int = 2
    impl_length_max: int = 8
    impls_per_user_goal_max: int = 2
    crossover: float = 0.05
    family_affinity: float = 0.4
    goal_popularity_exponent: float = 0.9
    goal_multiplicity: tuple[float, float, float, float] = field(
        default=PAPER_GOAL_MULTIPLICITY
    )

    def __post_init__(self) -> None:
        require_positive(self.num_goals, "num_goals")
        require_positive(self.num_actions, "num_actions")
        require_positive(self.num_implementations, "num_implementations")
        require_positive(self.num_families, "num_families")
        require_positive(self.num_users, "num_users")
        require_positive(self.impl_length_mean, "impl_length_mean")
        require_probability(self.crossover, "crossover")
        require_probability(self.family_affinity, "family_affinity")
        if self.num_families > self.num_goals:
            raise ValueError("more families than goals")
        if self.num_families > self.num_actions:
            raise ValueError("more families than actions")
        if self.impl_length_min > self.impl_length_max:
            raise ValueError("impl_length_min exceeds impl_length_max")
        if abs(sum(self.goal_multiplicity) - 1.0) > 1e-6:
            raise ValueError("goal_multiplicity must sum to 1")

    @classmethod
    def paper_scale(cls) -> "FortyThreeConfig":
        """Published counts, connectivity preserved (see module docstring)."""
        return cls(
            num_goals=3747,
            num_actions=14100,
            num_implementations=18047,
            num_families=350,
            num_users=8071,
        )

    @classmethod
    def small(cls) -> "FortyThreeConfig":
        """The default CI-scale configuration."""
        return cls()

    @classmethod
    def tiny(cls) -> "FortyThreeConfig":
        """Minimal configuration for unit tests."""
        return cls(
            num_goals=30,
            num_actions=120,
            num_implementations=140,
            num_families=6,
            num_users=60,
        )


def _goal_label(index: int) -> str:
    return f"goal_{index:04d}"


def _action_label(index: int) -> str:
    return f"action_{index:05d}"


def generate_fortythree(
    config: FortyThreeConfig | None = None, seed: SeedLike = 1
) -> Dataset:
    """Generate a life-goal scenario; deterministic for a given seed."""
    config = config or FortyThreeConfig.small()
    rng = make_rng(seed)

    # ------------------------------------------------------------------
    # Families: partition goals and actions into aligned pools.
    # ------------------------------------------------------------------
    goal_family = _assign_buckets(rng, config.num_goals, config.num_families)
    action_family = _assign_buckets(rng, config.num_actions, config.num_families)
    family_actions: list[np.ndarray] = [
        np.flatnonzero(action_family == f) for f in range(config.num_families)
    ]

    # ------------------------------------------------------------------
    # Implementations: every goal gets at least one; the remainder are
    # assigned to goals Zipf-weighted (popular goals collect many ways to
    # achieve them).
    # ------------------------------------------------------------------
    goal_weights = zipf_weights(config.num_goals, config.goal_popularity_exponent)
    impl_goals = list(range(config.num_goals))
    extra = config.num_implementations - config.num_goals
    if extra < 0:
        raise ValueError(
            "num_implementations must be at least num_goals so every goal "
            "has an implementation"
        )
    impl_goals.extend(
        int(g) for g in rng.choice(config.num_goals, size=extra, p=goal_weights)
    )

    library = ImplementationLibrary()
    goal_impl_actions: dict[int, list[frozenset[int]]] = {}
    for goal in impl_goals:
        family = int(goal_family[goal])
        pool = family_actions[family]
        length = sample_size(
            rng, config.impl_length_mean, config.impl_length_min,
            config.impl_length_max,
        )
        chosen: set[int] = set()
        guard = 0
        while len(chosen) < length and guard < 10 * length:
            guard += 1
            if rng.random() < config.crossover or len(pool) == 0:
                chosen.add(int(rng.integers(config.num_actions)))
            else:
                chosen.add(int(rng.choice(pool)))
        actions = frozenset(chosen)
        impl_id = library.add_pair(
            _goal_label(goal), (_action_label(a) for a in sorted(actions))
        )
        # Deduplicated implementations share an id; track per-goal variants.
        goal_impl_actions.setdefault(goal, [])
        stored = frozenset(
            int(label.rsplit("_", 1)[1]) for label in library[impl_id].actions
        )
        if stored not in goal_impl_actions[goal]:
            goal_impl_actions[goal].append(stored)

    # ------------------------------------------------------------------
    # Users: goal multiplicity from the paper's distribution; activity is
    # the union of one or two implementations per chosen goal.
    # ------------------------------------------------------------------
    multiplicity = np.asarray(config.goal_multiplicity)
    family_goals: list[np.ndarray] = [
        np.flatnonzero(goal_family == f) for f in range(config.num_families)
    ]
    users: list[GeneratedUser] = []
    for user in range(config.num_users):
        bucket = int(rng.choice(4, p=multiplicity))
        num_goals = bucket + 1 if bucket < 3 else int(rng.integers(4, 7))
        num_goals = min(num_goals, config.num_goals)
        # Goals cluster thematically: after the first (popularity-weighted)
        # goal, each further goal stays within the same family with
        # probability ``family_affinity`` — fitness goals attract fitness
        # goals.  This is what creates bridge actions between a user's
        # goals, the structure the goal-based strategies exploit.
        chosen_goals: list[int] = [
            int(rng.choice(config.num_goals, p=goal_weights))
        ]
        anchor_family = int(goal_family[chosen_goals[0]])
        while len(chosen_goals) < num_goals:
            pool = family_goals[anchor_family]
            in_family = [g for g in pool if g not in chosen_goals]
            if in_family and rng.random() < config.family_affinity:
                weights = goal_weights[in_family]
                weights = weights / weights.sum()
                chosen_goals.append(int(rng.choice(in_family, p=weights)))
            else:
                candidate = int(rng.choice(config.num_goals, p=goal_weights))
                if candidate not in chosen_goals:
                    chosen_goals.append(candidate)
        goals = np.asarray(chosen_goals, dtype=np.int64)
        activity: set[int] = set()
        sequence: list[int] = []
        for goal in goals:
            variants = goal_impl_actions[int(goal)]
            take = min(
                len(variants), int(rng.integers(1, config.impls_per_user_goal_max + 1))
            )
            picked = rng.choice(len(variants), size=take, replace=False)
            for index in picked:
                # Order of performing: goal by goal, implementation by
                # implementation — the natural temporal structure sequence
                # baselines can exploit.
                for action in sorted(variants[int(index)]):
                    if action not in activity:
                        sequence.append(action)
                        activity.add(action)
        users.append(
            GeneratedUser(
                user_id=f"user_{user:05d}",
                full_activity=frozenset(
                    _action_label(a) for a in sorted(activity)
                ),
                goals=tuple(_goal_label(int(g)) for g in sorted(goals)),
                sequence=tuple(_action_label(a) for a in sequence),
            )
        )

    return Dataset(
        name="43things",
        library=library,
        users=users,
        item_features=None,  # the paper: no accepted domain features for 43T
        metadata={"config": asdict(config), "seed": repr(seed)},
    )


def _assign_buckets(
    rng: np.random.Generator, count: int, buckets: int
) -> np.ndarray:
    """Assign ``count`` elements to ``buckets`` contiguous unequal groups."""
    sizes = partition_sizes(rng, count, buckets)
    assignment = np.zeros(count, dtype=np.int64)
    start = 0
    for bucket, size in enumerate(sizes):
        assignment[start : start + size] = bucket
        start += size
    return assignment
