"""Dataset schema shared by generators, loaders and the evaluation harness.

A :class:`Dataset` bundles everything one evaluation scenario needs:

- the goal implementation library ``L``;
- the user population with, per user, the *full* ground-truth activity (the
  evaluation protocol later hides 70% of it) and — when the generator knows
  them — the goals the user actually pursues (the 43Things scenario reports
  completeness only over the user's true goals);
- optional per-item feature sets (the grocery scenario's 128 product
  subcategories), consumed by the content-based baseline and the Table 5
  similarity metric.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.core.entities import ActionLabel, GoalLabel
from repro.core.library import ImplementationLibrary
from repro.exceptions import DataError


@dataclass(frozen=True, slots=True)
class GeneratedUser:
    """One user with ground truth attached.

    Attributes:
        user_id: stable identifier within the dataset.
        full_activity: every action the user has performed.
        goals: the goals the user pursues, when known (empty tuple when the
            scenario has no per-user goal ground truth, as in grocery carts).
        sequence: the actions in the order they were performed, when the
            scenario records order (consumed by sequence-based baselines
            such as :class:`~repro.baselines.markov.MarkovRecommender`);
            empty when order is unknown.  When present it must enumerate
            exactly ``full_activity``.
    """

    user_id: str
    full_activity: frozenset[ActionLabel]
    goals: tuple[GoalLabel, ...] = ()
    sequence: tuple[ActionLabel, ...] = ()

    def __post_init__(self) -> None:
        if not self.full_activity:
            raise DataError(f"user {self.user_id!r} has an empty activity")
        if self.sequence and frozenset(self.sequence) != self.full_activity:
            raise DataError(
                f"user {self.user_id!r}: sequence does not enumerate "
                "full_activity"
            )


@dataclass(slots=True)
class Dataset:
    """A complete evaluation scenario.

    Attributes:
        name: scenario identifier (``"foodmart"`` / ``"43things"`` / custom).
        library: the goal implementation library.
        users: the user population with ground truth.
        item_features: optional item -> feature-set map for content-based
            methods; ``None`` when the domain has no accepted features
            (the paper's 43Things case).
        metadata: free-form generator parameters, kept for provenance.
    """

    name: str
    library: ImplementationLibrary
    users: list[GeneratedUser]
    item_features: dict[ActionLabel, frozenset[str]] | None = None
    metadata: dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if len(self.library) == 0:
            raise DataError(f"dataset {self.name!r} has an empty library")
        if not self.users:
            raise DataError(f"dataset {self.name!r} has no users")

    def activities(self) -> list[frozenset[ActionLabel]]:
        """The users' full activities, in user order."""
        return [user.full_activity for user in self.users]

    def summary(self) -> str:
        """Human-readable one-paragraph description."""
        stats = self.library.stats()
        features = (
            f"{len(self.item_features)} featured items"
            if self.item_features is not None
            else "no item features"
        )
        return (
            f"dataset {self.name!r}: {stats}; {len(self.users)} users; {features}"
        )


def validate_dataset(dataset: Dataset) -> None:
    """Check referential integrity of a dataset.

    Every feature-map key must be a library action, and every user should
    share at least one action with the library (otherwise no recommender has
    any evidence for them).  Raises :class:`DataError` on violation.
    """
    library_actions = dataset.library.actions()
    if dataset.item_features is not None:
        unknown = set(dataset.item_features) - library_actions
        if unknown:
            sample = sorted(map(str, unknown))[:5]
            raise DataError(
                f"dataset {dataset.name!r}: {len(unknown)} featured items are "
                f"not library actions (e.g. {sample})"
            )
    for user in dataset.users:
        if not (user.full_activity & library_actions):
            raise DataError(
                f"dataset {dataset.name!r}: user {user.user_id!r} shares no "
                "action with the library"
            )


Features = Mapping[ActionLabel, frozenset[str]]
