"""A hand-curated home-cooking recipe library with shopper carts.

Forty real recipes over a ~70-ingredient pantry.  Ingredient names are the
action labels (the action being "buy <ingredient>"); each recipe is one goal
implementation.  Ingredients recur across cuisines exactly the way the
paper's grocery scenario needs: onions, garlic and olive oil are
high-connectivity staples, saffron and fish sauce are niche.

The carts are written to exercise the interesting regimes: partially started
single recipes, carts spanning two cuisines, and a staples-only cart with a
huge goal space.
"""

from __future__ import annotations

from repro.core.entities import ActionLabel
from repro.core.library import ImplementationLibrary
from repro.data.schema import Dataset, GeneratedUser

#: goal -> ingredient set.  Kept alphabetical by goal for stable ids.
RECIPES: dict[str, frozenset[str]] = {
    goal: frozenset(ingredients)
    for goal, ingredients in {
        "beef stew": {"beef", "onion", "carrot", "potato", "red wine", "thyme"},
        "bolognese": {"ground beef", "onion", "garlic", "tomato", "carrot",
                      "celery", "red wine"},
        "caesar salad": {"romaine", "parmesan", "anchovy", "egg", "olive oil",
                         "bread"},
        "caprese salad": {"tomato", "mozzarella", "basil", "olive oil"},
        "carbonara": {"spaghetti", "egg", "parmesan", "guanciale",
                      "black pepper"},
        "carrot cake": {"carrot", "flour", "egg", "sugar", "walnut",
                        "cinnamon"},
        "chicken curry": {"chicken", "onion", "garlic", "ginger",
                          "curry powder", "coconut milk", "rice"},
        "chicken noodle soup": {"chicken", "carrot", "celery", "onion",
                                "egg noodles", "thyme"},
        "chicken tikka": {"chicken", "yogurt", "garlic", "ginger",
                          "garam masala", "tomato", "cream"},
        "chili con carne": {"ground beef", "onion", "garlic", "kidney beans",
                            "tomato", "chili powder", "cumin"},
        "falafel": {"chickpeas", "onion", "garlic", "parsley", "cumin",
                    "flour"},
        "french onion soup": {"onion", "butter", "beef stock", "baguette",
                              "gruyere", "thyme"},
        "fried rice": {"rice", "egg", "soy sauce", "scallion", "peas",
                       "sesame oil"},
        "gazpacho": {"tomato", "cucumber", "bell pepper", "garlic",
                     "olive oil", "bread"},
        "greek salad": {"tomato", "cucumber", "feta", "olives", "red onion",
                        "olive oil"},
        "guacamole": {"avocado", "lime", "onion", "cilantro", "tomato"},
        "hummus": {"chickpeas", "tahini", "garlic", "lemon", "olive oil"},
        "lentil soup": {"lentils", "onion", "carrot", "garlic", "cumin",
                        "olive oil"},
        "margherita pizza": {"flour", "yeast", "tomato", "mozzarella",
                             "basil", "olive oil"},
        "mashed potatoes": {"potato", "butter", "milk", "nutmeg"},
        "minestrone": {"onion", "carrot", "celery", "tomato", "white beans",
                       "pasta", "olive oil"},
        "mushroom risotto": {"arborio rice", "mushroom", "onion",
                             "white wine", "parmesan", "butter"},
        "olivier salad": {"potato", "carrot", "pickles", "peas", "egg",
                          "mayonnaise"},
        "omelette": {"egg", "butter", "milk", "chives"},
        "pad thai": {"rice noodles", "egg", "tofu", "peanuts", "lime",
                     "fish sauce", "scallion"},
        "paella": {"rice", "chicken", "shrimp", "saffron", "bell pepper",
                   "peas", "olive oil"},
        "pancakes": {"flour", "egg", "milk", "butter", "sugar"},
        "pesto pasta": {"spaghetti", "basil", "pine nuts", "parmesan",
                        "garlic", "olive oil"},
        "pho": {"rice noodles", "beef", "onion", "ginger", "star anise",
                "fish sauce", "cilantro"},
        "potato leek soup": {"potato", "leek", "butter", "cream",
                             "chicken stock"},
        "ramen": {"noodles", "egg", "pork", "soy sauce", "scallion",
                  "chicken stock"},
        "ratatouille": {"eggplant", "zucchini", "tomato", "bell pepper",
                        "onion", "garlic", "olive oil"},
        "roast chicken": {"chicken", "butter", "lemon", "garlic", "thyme",
                          "potato"},
        "shakshuka": {"egg", "tomato", "onion", "bell pepper", "cumin",
                      "paprika"},
        "spanish tortilla": {"egg", "potato", "onion", "olive oil"},
        "tacos": {"ground beef", "tortillas", "onion", "tomato", "cilantro",
                  "lime", "cheddar"},
        "tiramisu": {"mascarpone", "egg", "coffee", "ladyfingers", "cocoa",
                     "sugar"},
        "tom yum": {"shrimp", "lemongrass", "lime", "fish sauce", "mushroom",
                    "chili"},
        "vegetable stir fry": {"broccoli", "bell pepper", "carrot", "garlic",
                               "ginger", "soy sauce", "sesame oil"},
        "wild mushroom omelette": {"egg", "mushroom", "butter", "chives",
                                   "gruyere"},
    }.items()
}

#: Named carts covering the interesting evaluation regimes.
CARTS: dict[str, frozenset[str]] = {
    # Two-thirds of the olivier salad; the paper's motivating situation.
    "cart_olivier": frozenset({"potato", "carrot", "peas", "egg"}),
    # Italian evening: partial carbonara + partial pesto.
    "cart_italian": frozenset({"spaghetti", "parmesan", "egg", "basil"}),
    # Asian week: stir fry + pad thai beginnings.
    "cart_asian": frozenset({"rice noodles", "soy sauce", "ginger", "lime"}),
    # Staples only: touches dozens of recipes, completes none.
    "cart_staples": frozenset({"onion", "garlic", "olive oil", "egg"}),
    # Breakfast baking.
    "cart_baking": frozenset({"flour", "egg", "milk", "sugar"}),
    # Soup season.
    "cart_soups": frozenset({"onion", "carrot", "celery", "chicken"}),
}

#: Coarse pantry features for the content baseline.
INGREDIENT_FEATURES: dict[str, frozenset[str]] = {}
_FEATURE_GROUPS = {
    "vegetable": {"onion", "carrot", "celery", "tomato", "potato", "leek",
                  "cucumber", "bell pepper", "eggplant", "zucchini",
                  "broccoli", "mushroom", "romaine", "scallion", "red onion",
                  "avocado", "peas", "olives", "lemongrass", "chili"},
    "protein": {"beef", "ground beef", "chicken", "pork", "shrimp", "egg",
                "tofu", "anchovy", "chickpeas", "lentils", "kidney beans",
                "white beans", "guanciale"},
    "dairy": {"butter", "milk", "cream", "parmesan", "mozzarella", "feta",
              "gruyere", "cheddar", "mascarpone", "yogurt", "mayonnaise"},
    "grain": {"flour", "bread", "baguette", "rice", "arborio rice",
              "spaghetti", "pasta", "noodles", "rice noodles", "egg noodles",
              "tortillas", "ladyfingers", "yeast"},
    "seasoning": {"garlic", "ginger", "thyme", "basil", "cilantro", "parsley",
                  "chives", "cumin", "paprika", "cinnamon", "nutmeg",
                  "black pepper", "curry powder", "garam masala",
                  "chili powder", "saffron", "star anise", "sugar", "cocoa",
                  "coffee", "lemon", "lime", "salt"},
    "oil_sauce": {"olive oil", "sesame oil", "soy sauce", "fish sauce",
                  "tahini", "coconut milk", "red wine", "white wine",
                  "beef stock", "chicken stock", "pickles", "pine nuts",
                  "peanuts", "walnut"},
}
for _feature, _members in _FEATURE_GROUPS.items():
    for _ingredient in _members:
        INGREDIENT_FEATURES.setdefault(_ingredient, frozenset())
        INGREDIENT_FEATURES[_ingredient] = (
            INGREDIENT_FEATURES[_ingredient] | {_feature}
        )


def recipes_library() -> ImplementationLibrary:
    """The recipe collection as an implementation library."""
    library = ImplementationLibrary()
    for goal in sorted(RECIPES):
        library.add_pair(goal, RECIPES[goal])
    return library


def recipes_dataset() -> Dataset:
    """Recipes plus the named carts as a ready-to-evaluate dataset.

    Item features cover every ingredient that appears in a recipe (unknown
    pantry items simply carry no features).
    """
    library = recipes_library()
    users = [
        GeneratedUser(user_id=name, full_activity=cart)
        for name, cart in sorted(CARTS.items())
    ]
    features: dict[ActionLabel, frozenset[str]] = {
        ingredient: INGREDIENT_FEATURES.get(ingredient, frozenset())
        for ingredient in library.actions()
    }
    return Dataset(
        name="sample_recipes",
        library=library,
        users=users,
        item_features=features,
        metadata={"source": "hand-curated sample"},
    )
