"""Small hand-curated sample datasets bundled with the library.

Synthetic generators (:mod:`repro.data.synthetic`) provide statistical
scale; these samples provide *readability* — real ingredient and life-goal
names — for documentation, examples and quick interactive exploration:

- :func:`recipes_library` / :func:`recipes_dataset` — ~40 home-cooking
  recipes over a realistic pantry, plus a handful of shopper carts;
- :func:`life_goal_stories` / :func:`life_goals_library` — 43Things-style
  free-text success stories (fed through :mod:`repro.text`) and the library
  extracted from them.
"""

from repro.data.samples.life_goals import life_goal_stories, life_goals_library
from repro.data.samples.recipes import recipes_dataset, recipes_library

__all__ = [
    "recipes_library",
    "recipes_dataset",
    "life_goal_stories",
    "life_goals_library",
]
