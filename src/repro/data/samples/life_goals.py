"""Hand-written 43Things-style success stories.

Thirty short first-person stories over a dozen life goals, written so the
rule-based extractor (:mod:`repro.text`) produces a connected library:
actions like "join gym", "drink water" and "track spending" recur across
goals, giving the association model real cross-goal structure.
"""

from __future__ import annotations

from repro.core.library import ImplementationLibrary
from repro.text.extraction import ActionExtractor, GoalStory, extract_implementations

STORIES: tuple[GoalStory, ...] = (
    GoalStory("lose weight",
              "I joined a gym. Started going three times a week. "
              "Stopped eating at restaurants. Drank more water every day."),
    GoalStory("lose weight",
              "Track calories in a notebook. Walk to work. "
              "Cut sugar from breakfast."),
    GoalStory("lose weight",
              "I drank more water, cooked at home, and slept eight hours."),
    GoalStory("get fit",
              "Join a gym. Run every morning. Stretch for ten minutes after."),
    GoalStory("get fit",
              "I swam twice per week. Biked to the office."),
    GoalStory("run a marathon",
              "Run every morning. I signed up for a local race first. "
              "Track my mileage in a spreadsheet."),
    GoalStory("run a marathon",
              "I joined a running club, ran long on sundays, and "
              "stretched daily."),
    GoalStory("save money",
              "Stop eating at restaurants; cook at home. "
              "Track spending in a notebook."),
    GoalStory("save money",
              "I cancelled unused subscriptions. Set a monthly budget. "
              "Walk to work."),
    GoalStory("save money",
              "Track spending in a notebook. I sold old furniture online."),
    GoalStory("pay my debts",
              "Set a monthly budget. I paid the smallest card first, "
              "then I cancelled unused subscriptions."),
    GoalStory("pay my debts",
              "Track spending in a notebook. Stop eating at restaurants."),
    GoalStory("learn spanish",
              "Study two hours daily. I practiced with a language partner "
              "and watched spanish films."),
    GoalStory("learn spanish",
              "I read childrens books in spanish. Listen to spanish radio "
              "every morning."),
    GoalStory("learn guitar",
              "Practice guitar daily. I took lessons every saturday. "
              "Learned three chords first."),
    GoalStory("learn guitar",
              "Watch tutorial videos. Practice guitar daily!"),
    GoalStory("read more books",
              "Read one book per month. I joined a book club. "
              "Deleted social media apps."),
    GoalStory("read more books",
              "Keep a book in my bag. Read before bed instead of scrolling."),
    GoalStory("sleep better",
              "Sleep eight hours. I stopped drinking coffee after noon "
              "and deleted social media apps."),
    GoalStory("sleep better",
              "Meditate before bed. Keep the bedroom cool and dark."),
    GoalStory("reduce stress",
              "Meditate before bed. Walk to work. I planned my week on "
              "sunday evenings."),
    GoalStory("reduce stress",
              "I joined a gym — exercise helps. Drink more water, "
              "sleep eight hours."),
    GoalStory("be healthier",
              "Cook at home. Drink more water. Walk to work every day."),
    GoalStory("be healthier",
              "I cut sugar from breakfast. Slept eight hours."),
    GoalStory("get organized",
              "Plan meals on sunday. I sorted my papers into folders. "
              "Cleaned one room per week."),
    GoalStory("get organized",
              "Keep a daily todo list. Plan my week on sunday evenings."),
    GoalStory("volunteer more",
              "I volunteered at the shelter every saturday and donated "
              "old clothes."),
    GoalStory("volunteer more",
              "Sign up at the food bank. Help neighbours with groceries."),
    GoalStory("write a novel",
              "Write morning pages. I planned the plot on index cards and "
              "joined a writers group."),
    GoalStory("write a novel",
              "Write five hundred words daily. Read one book per month."),
)


def life_goal_stories() -> list[GoalStory]:
    """The raw stories, in a fresh list."""
    return list(STORIES)


def life_goals_library(
    extractor: ActionExtractor | None = None,
) -> ImplementationLibrary:
    """The library extracted from the bundled stories."""
    return extract_implementations(STORIES, extractor)
