"""A minimal HTTP JSON service over the goal recommender (stdlib only).

Deployments usually front a recommender with a small service; this module
provides one with zero dependencies beyond the standard library, suitable
for demos and integration tests (it is *not* hardened for the open
internet).

Endpoints (all JSON):

- ``GET  /health`` — liveness plus model statistics;
- ``POST /recommend`` — body ``{"activity": [...], "k": 10,
  "strategy": "breadth"}`` → ranked actions with scores;
- ``POST /spaces`` — body ``{"activity": [...]}`` → the goal and action
  spaces of the activity (paper Equations 1-2);
- ``POST /explain`` — body ``{"activity": [...], "action": "..."}`` → the
  implementations grounding that candidate.

Usage::

    server = RecommenderService(model, port=0)   # 0 = ephemeral port
    server.start()
    ...  # requests against http://127.0.0.1:{server.port}
    server.stop()
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

from repro.core.model import AssociationGoalModel
from repro.core.recommender import GoalRecommender, PAPER_STRATEGIES
from repro.exceptions import ReproError

_MAX_BODY_BYTES = 1 << 20  # 1 MiB: an activity list, not a bulk upload


class _Handler(BaseHTTPRequestHandler):
    """Request handler bound to a service instance via the server object."""

    # Set by RecommenderService when the server is constructed.
    service: "RecommenderService"

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        """Silence per-request stderr logging (tests run many requests)."""

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------

    def _send_json(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self) -> dict | None:
        length = int(self.headers.get("Content-Length", 0))
        if length <= 0 or length > _MAX_BODY_BYTES:
            self._send_json(400, {"error": "missing or oversized body"})
            return None
        try:
            payload = json.loads(self.rfile.read(length))
        except json.JSONDecodeError:
            self._send_json(400, {"error": "invalid JSON body"})
            return None
        if not isinstance(payload, dict):
            self._send_json(400, {"error": "body must be a JSON object"})
            return None
        return payload

    def _activity_from(self, payload: dict) -> list | None:
        activity = payload.get("activity")
        if not isinstance(activity, list) or not all(
            isinstance(item, str) for item in activity
        ):
            self._send_json(
                400, {"error": "'activity' must be a list of strings"}
            )
            return None
        return activity

    # ------------------------------------------------------------------
    # Routes
    # ------------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
        if self.path != "/health":
            self._send_json(404, {"error": f"unknown path {self.path}"})
            return
        model = self.service.model
        self._send_json(
            200,
            {
                "status": "ok",
                "implementations": model.num_implementations,
                "goals": model.num_goals,
                "actions": model.num_actions,
                "strategies": list(PAPER_STRATEGIES),
            },
        )

    def do_POST(self) -> None:  # noqa: N802 (stdlib naming)
        handlers = {
            "/recommend": self._handle_recommend,
            "/spaces": self._handle_spaces,
            "/explain": self._handle_explain,
            "/goals": self._handle_goals,
            "/related": self._handle_related,
        }
        handler = handlers.get(self.path)
        if handler is None:
            self._send_json(404, {"error": f"unknown path {self.path}"})
            return
        payload = self._read_json()
        if payload is None:
            return
        try:
            handler(payload)
        except ReproError as exc:
            self._send_json(422, {"error": str(exc)})

    def _handle_recommend(self, payload: dict) -> None:
        activity = self._activity_from(payload)
        if activity is None:
            return
        k = payload.get("k", 10)
        strategy = payload.get("strategy", "breadth")
        if not isinstance(k, int):
            self._send_json(400, {"error": "'k' must be an integer"})
            return
        result = self.service.recommender.recommend(
            activity, k=k, strategy=strategy
        )
        self._send_json(
            200,
            {
                "strategy": result.strategy,
                "recommendations": [
                    {"action": str(item.action), "score": item.score}
                    for item in result
                ],
            },
        )

    def _handle_spaces(self, payload: dict) -> None:
        activity = self._activity_from(payload)
        if activity is None:
            return
        model = self.service.model
        self._send_json(
            200,
            {
                "goal_space": sorted(map(str, model.goal_space_labels(activity))),
                "action_space": sorted(
                    map(str, model.action_space_labels(activity))
                ),
            },
        )

    def _handle_goals(self, payload: dict) -> None:
        from repro.core.goal_inference import GoalInferencer

        activity = self._activity_from(payload)
        if activity is None:
            return
        scorer = payload.get("scorer", "coverage")
        top = payload.get("top", 10)
        if not isinstance(top, int) or top <= 0:
            self._send_json(400, {"error": "'top' must be a positive integer"})
            return
        try:
            inferencer = GoalInferencer(self.service.model, scorer=scorer)
        except ValueError as exc:
            self._send_json(400, {"error": str(exc)})
            return
        inferred = inferencer.infer(activity, top=top)
        self._send_json(
            200,
            {
                "scorer": scorer,
                "goals": [
                    {"goal": str(goal), "score": score}
                    for goal, score in inferred
                ],
            },
        )

    def _handle_related(self, payload: dict) -> None:
        from repro.core.related import related_actions

        action = payload.get("action")
        if not isinstance(action, str):
            self._send_json(400, {"error": "'action' must be a string"})
            return
        k = payload.get("k", 10)
        if not isinstance(k, int) or k <= 0:
            self._send_json(400, {"error": "'k' must be a positive integer"})
            return
        related = related_actions(self.service.model, action, k=k)
        self._send_json(
            200,
            {
                "action": action,
                "related": [
                    {"action": str(other), "similarity": similarity}
                    for other, similarity in related
                ],
            },
        )

    def _handle_explain(self, payload: dict) -> None:
        activity = self._activity_from(payload)
        if activity is None:
            return
        action = payload.get("action")
        if not isinstance(action, str):
            self._send_json(400, {"error": "'action' must be a string"})
            return
        evidence = self.service.recommender.explain(activity, action)
        self._send_json(
            200,
            {
                "action": action,
                "evidence": {
                    str(goal): [sorted(map(str, acts)) for acts in activities]
                    for goal, activities in evidence.items()
                },
            },
        )


class RecommenderService:
    """Threaded HTTP server wrapping a :class:`GoalRecommender`.

    Args:
        model: the goal model to serve.
        host: bind address (loopback by default).
        port: TCP port; 0 binds an ephemeral port (read :attr:`port` after
            construction).
    """

    def __init__(
        self,
        model: AssociationGoalModel,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.model = model
        self.recommender = GoalRecommender(model)
        handler = type("BoundHandler", (_Handler,), {"service": self})
        self._server = ThreadingHTTPServer((host, port), handler)
        self._thread: threading.Thread | None = None

    @property
    def port(self) -> int:
        """The bound TCP port (useful with ``port=0``)."""
        return self._server.server_address[1]

    def start(self) -> "RecommenderService":
        """Serve requests on a daemon thread; returns ``self``."""
        if self._thread is not None:
            raise RuntimeError("service already started")
        self._thread = threading.Thread(
            target=self._server.serve_forever, daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Shut the server down and join the serving thread."""
        if self._thread is None:
            return
        self._server.shutdown()
        self._thread.join()
        self._server.server_close()
        self._thread = None

    def __enter__(self) -> "RecommenderService":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
