"""A minimal HTTP JSON service over the goal recommender (stdlib only).

Deployments usually front a recommender with a small service; this module
provides one with zero dependencies beyond the standard library, suitable
for demos and integration tests (it is *not* hardened for the open
internet).

Endpoints (JSON unless noted):

- ``GET  /health`` — liveness plus version, model statistics and library
  size;
- ``GET  /metrics`` — Prometheus text exposition of the process metrics
  registry (request/error counters, per-strategy recommend latency
  histograms, model gauges);
- ``POST /recommend`` — body ``{"activity": [...], "k": 10,
  "strategy": "breadth"}`` → ranked actions with scores;
- ``POST /spaces`` — body ``{"activity": [...]}`` → the goal and action
  spaces of the activity (paper Equations 1-2);
- ``POST /explain`` — body ``{"activity": [...], "action": "..."}`` → the
  implementations grounding that candidate.

Conventions:

- errors share one shape, ``{"error": <message>, "detail": <context>}``;
- a known route hit with the wrong method answers ``405`` with an ``Allow``
  header (unknown paths answer ``404``);
- every response echoes an ``X-Request-Id`` header — the client's, when it
  sent one, else a freshly minted id — and the same id is bound to the
  structured-log context for the duration of the request.

Usage::

    server = RecommenderService(model, port=0)   # 0 = ephemeral port
    server.start()
    ...  # requests against http://127.0.0.1:{server.port}
    server.stop()

Constructing a service enables metric recording process-wide
(``obs.enable(metrics=True, tracing=False)``) — a service without request
accounting is not observable.  Pass ``enable_metrics=False`` to opt out.
"""

from __future__ import annotations

import dataclasses
import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

from repro import obs
from repro._version import __version__
from repro.core.model import AssociationGoalModel
from repro.core.recommender import GoalRecommender, PAPER_STRATEGIES
from repro.exceptions import ReproError

_MAX_BODY_BYTES = 1 << 20  # 1 MiB: an activity list, not a bulk upload

#: Known routes by supported method; wrong-method hits answer 405.
_GET_ROUTES = ("/health", "/metrics")
_POST_ROUTES = ("/recommend", "/spaces", "/explain", "/goals", "/related")

_LOG = obs.get_logger("repro.service")


class _Handler(BaseHTTPRequestHandler):
    """Request handler bound to a service instance via the server object."""

    # Set by RecommenderService when the server is constructed.
    service: "RecommenderService"

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        """Silence per-request stderr logging (structured logs replace it)."""

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------

    def _send_headers(
        self, status: int, content_type: str, length: int, allow: str | None
    ) -> None:
        self._status = status
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(length))
        self.send_header("X-Request-Id", self._request_id)
        if allow is not None:
            self.send_header("Allow", allow)
        self.end_headers()

    def _send_json(
        self, status: int, payload: dict, allow: str | None = None
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        self._send_headers(status, "application/json", len(body), allow)
        self.wfile.write(body)

    def _send_error(
        self,
        status: int,
        error: str,
        detail: object = None,
        allow: str | None = None,
    ) -> None:
        """Send the service's uniform error shape."""
        self._send_json(status, {"error": error, "detail": detail}, allow=allow)

    def _send_text(self, status: int, text: str, content_type: str) -> None:
        body = text.encode("utf-8")
        self._send_headers(status, content_type, len(body), None)
        self.wfile.write(body)

    def _read_json(self) -> dict | None:
        length = int(self.headers.get("Content-Length", 0))
        if length <= 0 or length > _MAX_BODY_BYTES:
            self._send_error(
                400,
                "missing or oversized body",
                detail=f"Content-Length must be in (0, {_MAX_BODY_BYTES}]",
            )
            return None
        try:
            payload = json.loads(self.rfile.read(length))
        except json.JSONDecodeError as exc:
            self._send_error(400, "invalid JSON body", detail=str(exc))
            return None
        if not isinstance(payload, dict):
            self._send_error(
                400,
                "body must be a JSON object",
                detail=f"got {type(payload).__name__}",
            )
            return None
        return payload

    def _activity_from(self, payload: dict) -> list | None:
        activity = payload.get("activity")
        if not isinstance(activity, list) or not all(
            isinstance(item, str) for item in activity
        ):
            self._send_error(
                400,
                "'activity' must be a list of strings",
                detail="body key 'activity'",
            )
            return None
        return activity

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802 (stdlib naming)
        self._dispatch("POST")

    def do_PUT(self) -> None:  # noqa: N802 (stdlib naming)
        self._dispatch("PUT")

    def do_DELETE(self) -> None:  # noqa: N802 (stdlib naming)
        self._dispatch("DELETE")

    def _dispatch(self, method: str) -> None:
        """Route one request with request-id, metrics and error envelope."""
        path = self.path.split("?", 1)[0]
        self._request_id = self.headers.get(
            "X-Request-Id"
        ) or obs.new_request_id()
        self._status = 0
        endpoint = (
            path if path in _GET_ROUTES or path in _POST_ROUTES else "<unknown>"
        )
        start = time.perf_counter()
        with obs.request_context(self._request_id):
            try:
                self._route(method, path)
            except ReproError as exc:
                self._send_error(422, str(exc), detail=type(exc).__name__)
            except (BrokenPipeError, ConnectionResetError):  # client went away
                raise
            except Exception as exc:  # keep the handler thread alive
                obs.log_event(
                    _LOG, "http.error", level=40,
                    endpoint=endpoint, error=f"{type(exc).__name__}: {exc}",
                )
                if not self._status:
                    self._send_error(
                        500,
                        "internal server error",
                        detail=f"{type(exc).__name__}: {exc}",
                    )
            finally:
                # Record inside the request context so the http.request log
                # line carries the request_id for correlation.
                elapsed = time.perf_counter() - start
                self.service._record_request(
                    endpoint, method, self._status, elapsed
                )

    def _route(self, method: str, path: str) -> None:
        if path in _GET_ROUTES:
            if method != "GET":
                self._send_error(
                    405,
                    "method not allowed",
                    detail=f"{path} supports GET",
                    allow="GET",
                )
                return
            if path == "/health":
                self._handle_health()
            else:
                self._handle_metrics()
            return
        if path in _POST_ROUTES:
            if method != "POST":
                self._send_error(
                    405,
                    "method not allowed",
                    detail=f"{path} supports POST",
                    allow="POST",
                )
                return
            payload = self._read_json()
            if payload is None:
                return
            handlers = {
                "/recommend": self._handle_recommend,
                "/spaces": self._handle_spaces,
                "/explain": self._handle_explain,
                "/goals": self._handle_goals,
                "/related": self._handle_related,
            }
            handlers[path](payload)
            return
        self._send_error(
            404,
            f"unknown path {path}",
            detail={"get": list(_GET_ROUTES), "post": list(_POST_ROUTES)},
        )

    # ------------------------------------------------------------------
    # Routes
    # ------------------------------------------------------------------

    def _handle_health(self) -> None:
        model = self.service.model
        self._send_json(
            200,
            {
                "status": "ok",
                "version": __version__,
                "implementations": model.num_implementations,
                "goals": model.num_goals,
                "actions": model.num_actions,
                "strategies": list(PAPER_STRATEGIES),
                "library": dataclasses.asdict(model.stats()),
            },
        )

    def _handle_metrics(self) -> None:
        self._send_text(
            200,
            self.service.registry.render(),
            "text/plain; version=0.0.4; charset=utf-8",
        )

    def _handle_recommend(self, payload: dict) -> None:
        activity = self._activity_from(payload)
        if activity is None:
            return
        k = payload.get("k", 10)
        strategy = payload.get("strategy", "breadth")
        if not isinstance(k, int):
            self._send_error(
                400, "'k' must be an integer", detail=f"got {k!r}"
            )
            return
        result = self.service.recommender.recommend(
            activity, k=k, strategy=strategy
        )
        self._send_json(
            200,
            {
                "strategy": result.strategy,
                "recommendations": [
                    {"action": str(item.action), "score": item.score}
                    for item in result
                ],
            },
        )

    def _handle_spaces(self, payload: dict) -> None:
        activity = self._activity_from(payload)
        if activity is None:
            return
        model = self.service.model
        self._send_json(
            200,
            {
                "goal_space": sorted(map(str, model.goal_space_labels(activity))),
                "action_space": sorted(
                    map(str, model.action_space_labels(activity))
                ),
            },
        )

    def _handle_goals(self, payload: dict) -> None:
        from repro.core.goal_inference import GoalInferencer

        activity = self._activity_from(payload)
        if activity is None:
            return
        scorer = payload.get("scorer", "coverage")
        top = payload.get("top", 10)
        if not isinstance(top, int) or top <= 0:
            self._send_error(
                400, "'top' must be a positive integer", detail=f"got {top!r}"
            )
            return
        try:
            inferencer = GoalInferencer(self.service.model, scorer=scorer)
        except ValueError as exc:
            self._send_error(400, str(exc), detail="body key 'scorer'")
            return
        inferred = inferencer.infer(activity, top=top)
        self._send_json(
            200,
            {
                "scorer": scorer,
                "goals": [
                    {"goal": str(goal), "score": score}
                    for goal, score in inferred
                ],
            },
        )

    def _handle_related(self, payload: dict) -> None:
        from repro.core.related import related_actions

        action = payload.get("action")
        if not isinstance(action, str):
            self._send_error(
                400, "'action' must be a string", detail=f"got {action!r}"
            )
            return
        k = payload.get("k", 10)
        if not isinstance(k, int) or k <= 0:
            self._send_error(
                400, "'k' must be a positive integer", detail=f"got {k!r}"
            )
            return
        related = related_actions(self.service.model, action, k=k)
        self._send_json(
            200,
            {
                "action": action,
                "related": [
                    {"action": str(other), "similarity": similarity}
                    for other, similarity in related
                ],
            },
        )

    def _handle_explain(self, payload: dict) -> None:
        activity = self._activity_from(payload)
        if activity is None:
            return
        action = payload.get("action")
        if not isinstance(action, str):
            self._send_error(
                400, "'action' must be a string", detail=f"got {action!r}"
            )
            return
        evidence = self.service.recommender.explain(activity, action)
        self._send_json(
            200,
            {
                "action": action,
                "evidence": {
                    str(goal): [sorted(map(str, acts)) for acts in activities]
                    for goal, activities in evidence.items()
                },
            },
        )


class RecommenderService:
    """Threaded HTTP server wrapping a :class:`GoalRecommender`.

    Args:
        model: the goal model to serve.
        host: bind address (loopback by default).
        port: TCP port; 0 binds an ephemeral port (read :attr:`port` after
            construction).
        registry: metrics registry backing ``GET /metrics`` and the request
            accounting; defaults to the process-wide registry (resolved at
            request time), which is also where the recommend-path
            instrumentation records.
        enable_metrics: turn on process-wide metric recording at
            construction (tracing is left as-is).
    """

    def __init__(
        self,
        model: AssociationGoalModel,
        host: str = "127.0.0.1",
        port: int = 0,
        registry: obs.MetricsRegistry | None = None,
        enable_metrics: bool = True,
    ) -> None:
        self.model = model
        self.recommender = GoalRecommender(model)
        self._registry = registry
        if enable_metrics:
            obs.enable(metrics=True, tracing=False)
        handler = type("BoundHandler", (_Handler,), {"service": self})
        self._server = ThreadingHTTPServer((host, port), handler)
        self._thread: threading.Thread | None = None

    @property
    def registry(self) -> obs.MetricsRegistry:
        """The registry served by ``GET /metrics``."""
        return self._registry if self._registry is not None else obs.get_registry()

    @property
    def port(self) -> int:
        """The bound TCP port (useful with ``port=0``)."""
        return self._server.server_address[1]

    def _record_request(
        self, endpoint: str, method: str, status: int, elapsed: float
    ) -> None:
        """Account one handled request in the registry and the logs."""
        registry = self.registry
        registry.counter(
            "repro_http_requests_total",
            "HTTP requests served, by endpoint, method and status.",
            endpoint=endpoint, method=method, status=str(status),
        ).inc()
        if status >= 400:
            registry.counter(
                "repro_http_errors_total",
                "HTTP error responses (status >= 400), by endpoint and status.",
                endpoint=endpoint, status=str(status),
            ).inc()
        registry.histogram(
            "repro_http_request_seconds",
            "Wall-clock request handling time, by endpoint.",
            endpoint=endpoint,
        ).observe(elapsed)
        obs.log_event(
            _LOG, "http.request", level=20,
            endpoint=endpoint, method=method, status=status,
            seconds=round(elapsed, 6),
        )

    def start(self) -> "RecommenderService":
        """Serve requests on a daemon thread; returns ``self``."""
        if self._thread is not None:
            raise RuntimeError("service already started")
        self._thread = threading.Thread(
            target=self._server.serve_forever, daemon=True
        )
        self._thread.start()
        obs.log_event(
            _LOG, "service.start", version=__version__,
            port=self.port, implementations=self.model.num_implementations,
        )
        return self

    def stop(self) -> None:
        """Shut the server down and join the serving thread."""
        if self._thread is None:
            return
        self._server.shutdown()
        self._thread.join()
        self._server.server_close()
        self._thread = None
        obs.log_event(_LOG, "service.stop")

    def __enter__(self) -> "RecommenderService":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
