"""An HTTP JSON service over the goal recommender (stdlib only).

Deployments usually front a recommender with a small service; this module
provides one with zero dependencies beyond the standard library, suitable
for demos and integration tests (it is *not* hardened for the open
internet).

Endpoints (JSON unless noted):

- ``GET  /health`` — liveness plus version, model statistics, library size
  and the current model generation;
- ``GET  /metrics`` — Prometheus text exposition of the process metrics
  registry (request/error counters, per-strategy recommend latency
  histograms, cache hit/miss/eviction counters, model gauges); with
  ``Accept: application/openmetrics-text`` the OpenMetrics 1.0 rendering
  is served instead, carrying per-bucket request-id exemplars;
- ``GET  /model`` — the serving state: generation counter, live model
  sizes, and per-cache statistics (hits, misses, evictions, hit rate);
- ``GET  /debug/vars`` — introspection snapshot: uptime, model generation,
  cache statistics, in-flight requests, span-buffer occupancy, per-stage
  latency breakdown (p50/p95/p99), slow-log and profile-session state;
- ``GET  /debug/slow`` — the N slowest requests above the configured
  threshold, each with its full span tree;
- ``GET  /debug/quality`` — the recommendation-quality snapshot: per-
  strategy request/empty/below-threshold counts, OOV and catalog-coverage
  rates, drift-detector state (PSI score, alert flag, baseline
  generation), SLO burn rates and flight-recorder statistics (see
  ``docs/quality.md``);
- ``GET  /debug/locks`` — the lock-sanitizer snapshot: manifest in
  force, per-site acquisition/contention/hold statistics and detected
  violations (``{"enabled": false}`` unless started with
  ``--lock-sanitizer`` / ``REPRO_LOCK_SANITIZER=1``);
- ``GET  /debug/history`` — the metrics-history index (captured families,
  retention math, memory estimate); with ``?family=...`` (plus optional
  ``window=`` / ``step=`` seconds and ``quantiles=``) an aligned
  time-series view: counters as rates, gauges as last values, histograms
  as windowed p50/p95/p99 (see ``docs/monitoring.md``);
- ``GET  /debug/trace/<request-id>`` — every retained trace of that
  request (or trace id): matching span trees still in the tracer's ring
  buffer and matching slow-log entries;
- ``POST /debug/profile`` / ``DELETE /debug/profile`` — start/stop a
  guarded on-demand cProfile session (409 when already active, 404 when
  none is); DELETE returns the :mod:`pstats` report as plain text and
  accepts ``?sort=...&limit=...``;
- ``POST /recommend`` — body ``{"activity": [...], "k": 10,
  "strategy": "breadth"}`` → ranked actions with scores (served through
  the recommendation LRU; the response carries ``"cached"``);
- ``POST /recommend/batch`` — body ``{"activities": [[...], ...], "k": 10,
  "strategy": "breadth"}`` → one ranked list per activity, scored in bulk
  by the CSR :class:`~repro.core.vectorized.BatchRecommender` (built once
  per model generation, reused across requests);
- ``POST /spaces`` — body ``{"activity": [...]}`` → the goal and action
  spaces of the activity (paper Equations 1-2);
- ``POST /explain`` — body ``{"activity": [...], "action": "..."}`` → the
  implementations grounding that candidate;
- ``PUT    /model/implementations`` — body ``{"implementations":
  [{"goal": g, "actions": [...]}, ...]}`` → hot-add implementations;
- ``DELETE /model/implementations/<id>`` — hot-remove one implementation
  by its (stable, incremental) id.

Hot reload semantics: the service owns an
:class:`~repro.core.incremental.IncrementalGoalModel` behind a
readers-writer lock.  Mutations take the write lock, update the incremental
indexes, refreeze a serving snapshot and bump the **generation counter**;
the swap invalidates the recommendation and implementation-space LRUs and
drops the CSR matrices, so no ``ThreadingHTTPServer`` worker thread ever
observes a half-updated index.  Reads resolve the current snapshot under
the read lock and then run lock-free against immutable state; the
generation is part of every cache key, so a request still in flight on a
retired snapshot can finish (and even store its result) without ever
being visible to the new generation.

Conventions:

- errors share one shape, ``{"error": <message>, "detail": <context>}``;
- invalid client input (bad ``k``, malformed ``Content-Length``, wrong
  body shapes) answers ``400``; domain errors (unknown strategy, unknown
  action) answer ``422``; a removal of an unknown implementation id
  answers ``404``;
- a known route hit with the wrong method answers ``405`` with an ``Allow``
  header (unknown paths answer ``404``); ``HEAD`` is accepted on every
  ``GET`` route and answers the same status and headers with no body;
- a client that disconnects mid-request is recorded in the metrics under
  the nginx-style ``499`` sentinel status (no response is written);
- every response echoes an ``X-Request-Id`` header — the client's, when it
  sent one, else a freshly minted id — and the same id is bound to the
  structured-log context for the duration of the request;
- every response likewise carries a W3C ``traceparent`` header: an
  incoming valid ``traceparent`` pins the trace id (and flags), otherwise
  a fresh trace id is minted; the ``parent-id`` field is the span id this
  service minted for the request.  The trace id is stamped on the root
  ``http.request`` span, slow-log entries and flight-recorder records,
  and ``GET /debug/trace/<request-id>`` joins them back together.  Shed
  (429), drain (503) and error responses carry both headers — they all
  flow through the same header path.

Resilience (see ``docs/resilience.md``):

- work routes sit behind an :class:`~repro.resilience.AdmissionController`
  — past ``max_inflight`` executing plus ``max_queue`` briefly-waiting
  requests, excess traffic is shed with ``429`` + ``Retry-After`` (the ops
  routes ``/health``, ``/metrics`` and ``/debug/*`` bypass admission so an
  overloaded server stays observable);
- a request may carry ``X-Request-Deadline-Ms`` (or inherit
  ``default_deadline_ms``); the deadline is checked entering every
  pipeline stage and per chunk in the batch path, and an expired request
  answers ``504`` naming the stage reached (also recorded on the request
  span as ``deadline_stage``);
- :meth:`RecommenderService.drain` flips ``/health`` to ``draining``
  (work routes answer ``503`` + ``Retry-After``), stops accepting, waits
  for in-flight requests up to a timeout, then tears the server down —
  the CLI wires SIGTERM/SIGINT to it.

Usage::

    server = RecommenderService(model, port=0)   # 0 = ephemeral port
    server.start()
    ...  # requests against http://127.0.0.1:{server.port}
    server.stop()

Constructing a service enables metrics, tracing, exemplar capture and
trace detail process-wide — a service without request accounting is not
observable, and its ``/debug/slow`` span trees and ``/metrics`` exemplars
need spans and request ids recorded.  Pass ``enable_metrics=False`` /
``enable_tracing=False`` / ``enable_exemplars=False`` /
``trace_detail=False`` to opt out piecewise.
"""

from __future__ import annotations

import dataclasses
import json
import socket
import threading
import time
from collections.abc import Callable, Iterable
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - the runtime import is lazy (optional dep)
    from repro.core.vectorized import BatchRecommender

from repro import obs
from repro._version import __version__
from repro.core.approximate import PrunedBreadthStrategy
from repro.core.caching import CachedModelView, CachingRecommender, LRUCache
from repro.core.entities import ActionLabel, GoalLabel, RecommendationList
from repro.core.incremental import IncrementalGoalModel
from repro.core.model import AssociationGoalModel
from repro.core.recommender import GoalRecommender, PAPER_STRATEGIES
from repro.core.strategies import create_strategy
from repro.exceptions import ModelError, ReproError
from repro.resilience import (
    Deadline,
    DeadlineExceededError,
    active_deadline,
    deadline_scope,
    record_deadline_exceeded,
    record_shed,
)
from repro.resilience.admission import AdmissionController
from repro.resilience.faults import inject
from repro.utils.concurrency import (
    RWLock,
    lock_sanitizer_snapshot,
    make_condition,
    make_lock,
)

_MAX_BODY_BYTES = 1 << 20  # 1 MiB: an activity list, not a bulk upload
_MAX_BATCH_BODY_BYTES = 8 << 20  # batch scoring legitimately ships more
_MAX_BATCH_ACTIVITIES = 50_000  # backstop against unbounded fan-out

#: Serving tiers of ``POST /recommend``: ``exact`` runs the requested
#: strategy as-is, ``approx`` swaps Breadth for its budgeted pruning tier
#: (``breadth_pruned``) — see docs/performance.md.
_TIERS = ("exact", "approx")

#: Known routes by supported method; wrong-method hits answer 405.
_GET_ROUTES = (
    "/health", "/metrics", "/model", "/debug/vars", "/debug/slow",
    "/debug/quality", "/debug/locks", "/debug/history",
)
_POST_ROUTES = (
    "/recommend", "/recommend/batch", "/spaces", "/explain", "/goals",
    "/related",
)
_PUT_ROUTES = ("/model/implementations",)
#: The cProfile session route: POST starts, DELETE stops.  Routed before
#: the generic blocks because it is the one POST route without a JSON body.
_PROFILE_ROUTE = "/debug/profile"
#: ``?sort=`` values accepted by ``DELETE /debug/profile`` (pstats keys).
_PROFILE_SORTS = (
    "cumulative", "tottime", "time", "calls", "ncalls", "filename",
    "line", "name", "module", "pcalls", "stdname",
)
#: Prefix for the parametrized DELETE route; the trailing segment is the
#: implementation id.  Metrics label it with the literal ``<id>`` placeholder
#: to keep cardinality bounded.
_DELETE_PREFIX = "/model/implementations/"
_DELETE_ENDPOINT = "/model/implementations/<id>"
#: Prefix for the parametrized trace-lookup route; the trailing segment is
#: a request id (or trace id).  Collapsed to one metrics label like the
#: DELETE route above.
_TRACE_PREFIX = "/debug/trace/"
_TRACE_ENDPOINT = "/debug/trace/<request-id>"

_LOG = obs.get_logger("repro.service")

#: Lock discipline, machine-checked by ``repro-lint`` (rule RL001, see
#: docs/static-analysis.md).  ``ModelManager`` methods either take the
#: RWLock themselves or carry the ``_locked`` suffix marking that their
#: caller already holds it.
_GUARDED_BY = {
    "ModelSnapshot._batch": "_batch_lock",
    "ModelSnapshot._batch_lock": "<final>",
    "ModelManager._incremental": "_lock",
    "ModelManager._generation": "_lock",
    "ModelManager._snapshot": "_lock",
    "ModelManager._base_recommender": "_lock",
    "ModelManager._lock": "<final>",
    # Set once during single-threaded worker bootstrap, before the server
    # thread exists; read-only afterwards.
    "ModelManager._mutation_router": "<caller>",
    "RecommenderService._inflight": "_inflight_lock",
    "RecommenderService._draining": "_inflight_lock",
    "RecommenderService._inflight_lock": "<final>",
}

#: Routes exempt from admission control and drain shedding: an overloaded
#: or draining server must stay observable, and the drain sequence itself
#: relies on ``/health`` flipping to ``draining``.
_OPS_ROUTES = ("/health", "/metrics")


class ModelSnapshot:
    """One immutable model generation plus its lazily built scorers.

    Everything a read path needs hangs off the snapshot, so a handler
    resolves it once (under the read lock) and then runs against state that
    no writer will ever mutate.  ``frozen`` is ``None`` for the empty model
    (every implementation removed) — read endpoints degrade to empty
    results instead of erroring.
    """

    __slots__ = (
        "generation", "frozen", "recommender", "caching_recommender",
        "_batch", "_batch_lock",
    )

    def __init__(
        self,
        generation: int,
        frozen: AssociationGoalModel | None,
        recommender: GoalRecommender | None,
        caching_recommender: CachingRecommender | None,
    ) -> None:
        self.generation = generation
        self.frozen = frozen
        self.recommender = recommender
        self.caching_recommender = caching_recommender
        self._batch: BatchRecommender | None = None
        self._batch_lock = make_lock("ModelSnapshot._batch_lock")

    def batch(self) -> "BatchRecommender | None":
        """The CSR :class:`BatchRecommender` for this generation.

        Built on first use and reused for every later batch request of the
        same generation; returns ``None`` when the model is empty or the
        vectorized engine's dependencies (NumPy/SciPy) are unavailable.
        The engine is shared with the single-request hot path: when the
        recommender's model view exposes ``csr_engine()`` (the serving
        layer's :class:`~repro.core.caching.CachedModelView` does), both
        paths score through the same precomputed matrices.
        """
        if self.frozen is None:
            return None
        if self.recommender is not None:
            factory = getattr(self.recommender.model, "csr_engine", None)
            if factory is not None:
                engine: BatchRecommender | None = factory()
                return engine
        with self._batch_lock:
            if self._batch is None:
                try:
                    from repro.core.vectorized import BatchRecommender
                except ImportError:
                    return None
                self._batch = BatchRecommender(self.frozen)
            return self._batch


class ModelManager:
    """The mutable serving state: incremental model, caches, generation.

    Readers call :meth:`snapshot` (read lock, O(1)) and work against the
    returned :class:`ModelSnapshot`.  Writers (:meth:`add_implementations`,
    :meth:`remove_implementation`) take the write lock for the whole
    mutate-refreeze-invalidate-swap sequence, so the generation counter,
    the caches and the indexes always change together.
    """

    def __init__(
        self,
        incremental: IncrementalGoalModel,
        cache_size: int = 1024,
        space_cache_size: int = 4096,
        on_swap: Callable[[ModelSnapshot], None] | None = None,
        approx_budget: int = 128,
        initial_generation: int = 0,
        engine_factory: Callable[[], Any] | None = None,
    ) -> None:
        self._lock = RWLock(site="ModelManager._lock")
        self._incremental = incremental
        # ``initial_generation`` lets a respawned multi-worker process
        # (forked from the parent's *current* model state) report the same
        # generation as its surviving siblings instead of restarting at 0.
        self._generation = initial_generation
        self._initial_generation = initial_generation
        self._approx_budget = approx_budget
        # Builds the CSR engine of the *initial* snapshot only — workers
        # pass a shared-memory reconstruction here; after the first
        # mutation the frozen model changes and the normal per-generation
        # build takes over.
        self._engine_factory = engine_factory
        # When set (multi-worker mode), public mutations are forwarded to
        # the parent for serialization instead of applied locally — see
        # set_mutation_router().
        self._mutation_router: Any = None
        # Invoked (under the write lock) with every snapshot published by
        # a hot mutation — the service uses it to refreeze the drift
        # baseline per generation.  NOT called for the initial snapshot
        # built here; the service seeds that itself after construction.
        self._on_swap = on_swap
        self.recommendation_cache = LRUCache(cache_size, name="recommendations")
        self.space_cache = LRUCache(space_cache_size, name="implementation_space")
        self._base_recommender: GoalRecommender | None = None
        self._snapshot = self._build_snapshot_locked()
        self._publish_generation_locked()

    def set_mutation_router(self, router: Any) -> None:
        """Route public mutations through ``router`` (multi-worker mode).

        ``router`` needs ``route_add(pairs)`` and ``route_remove(pid)``
        with the same return contracts as :meth:`add_implementations` /
        :meth:`remove_implementation`.  A worker's router forwards the
        mutation to the parent supervisor, which serializes it across the
        pool and broadcasts an ordered apply command back to every worker
        (this one included) — the local application then happens through
        :meth:`apply_add_implementations` / :meth:`apply_remove_implementation`.
        Must be called before the worker starts serving (single-threaded
        bootstrap), never while requests are in flight.
        """
        self._mutation_router = router

    # ------------------------------------------------------------------
    # Snapshot construction and swap (callers hold the write lock, or are
    # still single-threaded in __init__)
    # ------------------------------------------------------------------

    def _build_snapshot_locked(self) -> ModelSnapshot:
        if self._incremental.num_implementations == 0:
            return ModelSnapshot(self._generation, None, None, None)
        frozen = self._incremental.freeze()
        # The caches are shared across generations; the generation baked
        # into every key keeps a late store from an in-flight request of a
        # retired snapshot unreachable from this one.
        factory = (
            self._engine_factory
            if self._generation == self._initial_generation
            else None
        )
        cached_view = CachedModelView(
            frozen, cache=self.space_cache, generation=self._generation,
            engine_factory=factory,
        )
        if self._base_recommender is None:
            recommender = GoalRecommender(cached_view)
            # The approximate tier's budget is service configuration, not a
            # registry default; the pin lives in the shared strategy cache,
            # so it survives generation swaps.
            recommender.use_strategy(
                PrunedBreadthStrategy(budget=self._approx_budget)
            )
        else:
            # Rebind instead of rebuilding so strategy instances survive
            # generation swaps.
            recommender = self._base_recommender.with_model(cached_view)
        self._base_recommender = recommender
        return ModelSnapshot(
            self._generation,
            frozen,
            recommender,
            CachingRecommender(
                recommender,
                self.recommendation_cache,
                generation=self._generation,
            ),
        )

    def _publish_generation_locked(self) -> None:
        if obs.metrics_enabled():
            obs.get_registry().gauge(
                "repro_model_generation",
                "Current model generation of the serving layer.",
            ).set(self._generation)

    def _swap_locked(self, op: str) -> ModelSnapshot:
        self._generation += 1
        # Invalidate both caches before the new snapshot becomes visible:
        # every entry was computed against the previous generation.
        self.recommendation_cache.clear()
        self.space_cache.clear()
        self._snapshot = self._build_snapshot_locked()
        self._publish_generation_locked()
        if obs.metrics_enabled():
            obs.get_registry().counter(
                "repro_model_reloads_total",
                "Hot model mutations applied, by operation.",
                op=op,
            ).inc()
        obs.log_event(
            _LOG, "model.reload", op=op, generation=self._generation,
            implementations=self._incremental.num_implementations,
        )
        if self._on_swap is not None:
            self._on_swap(self._snapshot)
        return self._snapshot

    # ------------------------------------------------------------------
    # Read side
    # ------------------------------------------------------------------

    @property
    def generation(self) -> int:
        """The current generation counter."""
        with self._lock.read_locked():
            return self._generation

    def snapshot(self) -> ModelSnapshot:
        """The current immutable serving snapshot."""
        # Fault seam: snapshot resolution is the one point every read path
        # (recommend, batch, spaces, explain) passes through.
        inject("model")
        with self._lock.read_locked():
            return self._snapshot

    def stats(self) -> dict[str, Any]:
        """Live model statistics for ``/health`` (consistent read)."""
        with self._lock.read_locked():
            model = self._incremental
            return {
                "generation": self._generation,
                "implementations": model.num_implementations,
                "goals": model.num_goals,
                "actions": model.num_actions,
                "library": dataclasses.asdict(model.stats()),
            }

    def describe(self) -> dict[str, Any]:
        """Serving-state summary for ``GET /model``."""
        with self._lock.read_locked():
            model = self._incremental
            generation = self._generation
            live = model.live_implementation_ids()
        caches = {}
        for cache in (self.recommendation_cache, self.space_cache):
            stats = cache.stats()
            payload = dataclasses.asdict(stats)
            payload["hit_rate"] = stats.hit_rate
            caches[stats.name] = payload
        return {
            "generation": generation,
            "implementations": len(live),
            "max_implementation_id": live[-1] if live else None,
            "caches": caches,
        }

    def recommend(
        self,
        activity: Iterable[ActionLabel],
        k: int,
        strategy: str,
    ) -> tuple[RecommendationList, bool, int]:
        """One cached recommendation: ``(result, cache_hit, generation)``."""
        activity = list(activity)
        snap = self.snapshot()
        if snap.caching_recommender is None:
            # Validate the request exactly as the live path would, so the
            # answer for bad input does not depend on the model state:
            # an unknown strategy is 422 whether or not implementations
            # are loaded.
            create_strategy(strategy)
            return (
                RecommendationList(strategy=strategy, items=(),
                                   activity=frozenset(activity)),
                False,
                snap.generation,
            )
        result, hit = snap.caching_recommender.recommend(
            activity, k=k, strategy=strategy
        )
        # Request-level quality hook: unlike the GoalRecommender hook this
        # one sees cache hits too, and it has the labels + snapshot needed
        # for OOV, drift and coverage accounting.
        if obs.quality_enabled() and snap.frozen is not None:
            obs.get_quality_monitor().observe_traffic(
                activity, snap.frozen, result, generation=snap.generation
            )
        return result, hit, snap.generation

    # ------------------------------------------------------------------
    # Write side
    # ------------------------------------------------------------------

    def add_implementations(
        self, pairs: list[tuple[GoalLabel, list[ActionLabel]]]
    ) -> tuple[list[int], ModelSnapshot]:
        """Hot-add implementations; returns their ids and the new snapshot.

        The batch is atomic from the serving layer's point of view: every
        pair is validated before the first index mutation (an empty action
        set raises :class:`ModelError` with nothing applied), and if an add
        still fails mid-list the already-applied ones are published through
        the normal invalidate-and-swap so serving state never diverges from
        the incremental model.
        """
        inject("model")
        materialized = [(goal, list(actions)) for goal, actions in pairs]
        for goal, actions in materialized:
            if not actions:
                raise ModelError(f"implementation of {goal!r} has no actions")
        if self._mutation_router is not None:
            result: tuple[list[int], ModelSnapshot] = (
                self._mutation_router.route_add(materialized)
            )
            return result
        return self.apply_add_implementations(materialized)

    def apply_add_implementations(
        self, pairs: list[tuple[GoalLabel, list[ActionLabel]]]
    ) -> tuple[list[int], ModelSnapshot]:
        """Apply a (pre-validated) add batch to the local model.

        The local half of :meth:`add_implementations`: in single-process
        mode it is called directly; in multi-worker mode every worker's
        control thread calls it with the parent's broadcast, so each
        process's incremental model replays the identical mutation
        sequence.
        """
        with self._lock.write_locked():
            ids: list[int] = []
            try:
                for goal, actions in pairs:
                    ids.append(
                        self._incremental.add_implementation(goal, actions)
                    )
            except BaseException:
                if ids:
                    self._swap_locked("add")
                raise
            return ids, self._swap_locked("add")

    def remove_implementation(self, pid: int) -> ModelSnapshot:
        """Hot-remove implementation ``pid``; returns the new snapshot.

        Raises :class:`ModelError` when ``pid`` is not live (mapped to 404
        by the HTTP layer).
        """
        inject("model")
        if self._mutation_router is not None:
            snapshot: ModelSnapshot = self._mutation_router.route_remove(pid)
            return snapshot
        return self.apply_remove_implementation(pid)

    def apply_remove_implementation(self, pid: int) -> ModelSnapshot:
        """Apply one removal to the local model (see
        :meth:`apply_add_implementations` for the single- vs multi-worker
        split)."""
        with self._lock.write_locked():
            self._incremental.remove_implementation(pid)
            return self._swap_locked("remove")

    def num_implementations(self) -> int:
        """Live implementation count, read consistently under the lock.

        The previous ``incremental`` property handed the unsynchronized
        model out to callers; every remaining use only ever needed this
        one number, so expose exactly that instead of the mutable object.
        """
        with self._lock.read_locked():
            return self._incremental.num_implementations


class _Handler(BaseHTTPRequestHandler):
    """Request handler bound to a service instance via the server object."""

    # Set by RecommenderService when the server is constructed.
    service: "RecommenderService"

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        """Silence per-request stderr logging (structured logs replace it)."""

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------

    def _send_headers(
        self,
        status: int,
        content_type: str,
        length: int,
        allow: str | None,
        retry_after: float | None = None,
    ) -> None:
        self._status = status
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(length))
        self.send_header("X-Request-Id", self._request_id)
        # Every response — including 429 shed, 503 drain, 504 deadline and
        # error envelopes — flows through here, so the trace context echo
        # holds unconditionally, mirroring X-Request-Id.
        self.send_header(
            "traceparent",
            obs.format_traceparent(
                self._trace_id, self._span_id, self._trace_flags
            ),
        )
        if allow is not None:
            self.send_header("Allow", allow)
        if retry_after is not None:
            # Retry-After takes integer seconds; round up so "0.5s" does
            # not tell clients to retry immediately.
            self.send_header("Retry-After", str(max(1, int(retry_after + 0.999))))
        self.end_headers()

    def _send_json(
        self,
        status: int,
        payload: dict,
        allow: str | None = None,
        retry_after: float | None = None,
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        self._send_headers(
            status, "application/json", len(body), allow,
            retry_after=retry_after,
        )
        # A HEAD response mirrors the GET headers (including the
        # Content-Length of the body that a GET would have carried) but
        # must not write the body itself.
        if self.command != "HEAD":
            self.wfile.write(body)

    def _send_error(
        self,
        status: int,
        error: str,
        detail: object = None,
        allow: str | None = None,
        retry_after: float | None = None,
    ) -> None:
        """Send the service's uniform error shape."""
        self._send_json(
            status,
            {"error": error, "detail": detail},
            allow=allow,
            retry_after=retry_after,
        )

    def _send_text(self, status: int, text: str, content_type: str) -> None:
        body = text.encode("utf-8")
        self._send_headers(status, content_type, len(body), None)
        if self.command != "HEAD":
            self.wfile.write(body)

    def _read_json(self, max_bytes: int = _MAX_BODY_BYTES) -> dict | None:
        raw_length = self.headers.get("Content-Length", "0")
        try:
            length = int(raw_length)
        except (TypeError, ValueError):
            # A malformed header is client error, not a reason to take the
            # handler thread down with a ValueError.
            self._send_error(
                400,
                "malformed Content-Length header",
                detail=f"got {raw_length!r}",
            )
            return None
        if length <= 0 or length > max_bytes:
            self._send_error(
                400,
                "missing or oversized body",
                detail=f"Content-Length must be in (0, {max_bytes}]",
            )
            return None
        try:
            payload = json.loads(self.rfile.read(length))
        except json.JSONDecodeError as exc:
            self._send_error(400, "invalid JSON body", detail=str(exc))
            return None
        if not isinstance(payload, dict):
            self._send_error(
                400,
                "body must be a JSON object",
                detail=f"got {type(payload).__name__}",
            )
            return None
        return payload

    def _activity_from(self, payload: dict) -> list | None:
        activity = payload.get("activity")
        if not isinstance(activity, list) or not all(
            isinstance(item, str) for item in activity
        ):
            self._send_error(
                400,
                "'activity' must be a list of strings",
                detail="body key 'activity'",
            )
            return None
        return activity

    def _positive_int_from(
        self, payload: dict, key: str, default: int
    ) -> int | None:
        """Validate an optional positive-integer body key, else answer 400.

        Booleans are rejected explicitly — ``True`` is an ``int`` to
        ``isinstance`` but never a meaningful ``k``.
        """
        value = payload.get(key, default)
        if (
            isinstance(value, bool)
            or not isinstance(value, int)
            or value <= 0
        ):
            self._send_error(
                400,
                f"'{key}' must be a positive integer",
                detail=f"got {value!r}",
            )
            return None
        return value

    def _strategy_from(self, payload: dict) -> str | None:
        strategy = payload.get("strategy", "breadth")
        if not isinstance(strategy, str):
            self._send_error(
                400, "'strategy' must be a string", detail=f"got {strategy!r}"
            )
            return None
        return strategy

    def _tier_from(self, payload: dict) -> str | None:
        """The requested serving tier: ``exact`` (default) or ``approx``.

        Read from the query string (``?tier=approx``, which wins) or the
        body key ``tier``; anything else answers 400 and returns ``None``.
        """
        params = dict(
            part.split("=", 1)
            for part in self._query.split("&")
            if "=" in part
        )
        tier = params.get("tier", payload.get("tier", "exact"))
        if tier not in _TIERS:
            self._send_error(
                400,
                f"'tier' must be one of {', '.join(_TIERS)}",
                detail=f"got {tier!r}",
            )
            return None
        return str(tier)

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
        self._dispatch("GET")

    def do_HEAD(self) -> None:  # noqa: N802 (stdlib naming)
        # Without this the stdlib answers 501 with no envelope and no
        # X-Request-Id.  HEAD routes exactly like GET; the send helpers
        # suppress the body (self.command == "HEAD") while keeping the
        # status and headers — including Content-Length — identical.
        self._dispatch("HEAD")

    def do_POST(self) -> None:  # noqa: N802 (stdlib naming)
        self._dispatch("POST")

    def do_PUT(self) -> None:  # noqa: N802 (stdlib naming)
        self._dispatch("PUT")

    def do_DELETE(self) -> None:  # noqa: N802 (stdlib naming)
        self._dispatch("DELETE")

    @staticmethod
    def _endpoint_label(path: str) -> str:
        """Metrics endpoint label; parametrized paths collapse to one label."""
        if (
            path in _GET_ROUTES or path in _POST_ROUTES
            or path in _PUT_ROUTES or path == _PROFILE_ROUTE
        ):
            return path
        if path.startswith(_DELETE_PREFIX):
            return _DELETE_ENDPOINT
        if path.startswith(_TRACE_PREFIX):
            return _TRACE_ENDPOINT
        return "<unknown>"

    def _dispatch(self, method: str) -> None:
        """Route one request with request-id, span, metrics and error envelope."""
        path, _, self._query = self.path.partition("?")
        self._request_id = self.headers.get(
            "X-Request-Id"
        ) or obs.new_request_id()
        # W3C trace context: a valid incoming traceparent pins the trace
        # id and flags; otherwise mint a fresh trace.  The span id is
        # always ours — it names this hop in the echoed header.
        incoming_trace = obs.parse_traceparent(self.headers.get("traceparent"))
        if incoming_trace is not None:
            self._trace_id = incoming_trace.trace_id
            self._trace_flags = incoming_trace.flags
        else:
            self._trace_id = obs.new_trace_id()
            self._trace_flags = "01"
        self._span_id = obs.new_span_id()
        self._status = 0
        self._deadline_stage: str | None = None
        endpoint = self._endpoint_label(path)
        start = time.perf_counter()
        self.service._publish_inflight(1)
        root: obs.Span | None = None
        with obs.request_context(self._request_id), \
                obs.trace_context(self._trace_id):
            try:
                try:
                    with obs.trace_span(
                        "http.request", endpoint=endpoint, method=method,
                        request_id=self._request_id,
                        trace_id=self._trace_id,
                    ) as span:
                        if isinstance(span, obs.Span):
                            root = span
                        try:
                            if path.startswith("/debug/"):
                                # Never profile the debug surface: DELETE
                                # /debug/profile must not wait on itself,
                                # and the report should show serving work.
                                self._route(method, path)
                            else:
                                self._route_resilient(method, path)
                        except DeadlineExceededError as exc:
                            # Before the ReproError arm: an expired
                            # deadline is 504 with the stage reached, not
                            # a 422 domain error.
                            self._deadline_stage = exc.stage
                            record_deadline_exceeded(exc.stage)
                            self._send_error(
                                504, "deadline exceeded", detail=str(exc)
                            )
                        except ReproError as exc:
                            self._send_error(
                                422, str(exc), detail=type(exc).__name__
                            )
                        except (BrokenPipeError, ConnectionResetError):
                            raise  # handled below, bypassing the 500 path
                        except Exception as exc:  # keep the handler thread alive
                            obs.log_event(
                                _LOG, "http.error", level=40,
                                endpoint=endpoint,
                                error=f"{type(exc).__name__}: {exc}",
                            )
                            if not self._status:
                                self._send_error(
                                    500,
                                    "internal server error",
                                    detail=f"{type(exc).__name__}: {exc}",
                                )
                        span.set_attr("status", self._status)
                        if self._deadline_stage is not None:
                            span.set_attr(
                                "deadline_stage", self._deadline_stage
                            )
                except (BrokenPipeError, ConnectionResetError):
                    # The client went away mid-request (possibly while an
                    # error response was being written): there is nobody
                    # left to answer, and propagating would make
                    # socketserver print a traceback.  Record the
                    # nginx-style 499 sentinel instead of the meaningless
                    # initial 0.
                    self._status = 499
            finally:
                # Record inside the request context so the http.request log
                # line carries the request_id for correlation (and the
                # latency histograms pick it up as their exemplar).
                elapsed = time.perf_counter() - start
                self.service._record_request(
                    endpoint, method, self._status, elapsed
                )
                self.service._record_slow(
                    self._request_id, endpoint, method, self._status,
                    elapsed, [root.to_dict()] if root is not None else [],
                    trace_id=self._trace_id,
                )
                self.service._record_telemetry(
                    self._request_id, endpoint, method, self._status,
                    elapsed, root, trace_id=self._trace_id,
                )
                self.service._publish_inflight(-1)

    # ------------------------------------------------------------------
    # Resilience front: draining, admission, deadlines
    # ------------------------------------------------------------------

    _INVALID_DEADLINE = object()

    def _deadline_from_header(self) -> object:
        """The request's deadline: a :class:`Deadline`, ``None``, or the
        ``_INVALID_DEADLINE`` sentinel after a 400 was already sent.

        ``X-Request-Deadline-Ms`` must be a positive, finite number of
        milliseconds; absent, the service's ``default_deadline_ms``
        applies (itself possibly ``None`` = no deadline).
        """
        raw = self.headers.get("X-Request-Deadline-Ms")
        if raw is None:
            default = self.service.default_deadline_ms
            if default is None:
                return None
            return Deadline.after_ms(default)
        try:
            budget_ms = float(raw)
        except ValueError:
            budget_ms = float("nan")
        if not budget_ms > 0 or budget_ms == float("inf"):
            self._send_error(
                400,
                "malformed X-Request-Deadline-Ms header",
                detail=f"must be a positive number of milliseconds, "
                       f"got {raw!r}",
            )
            return self._INVALID_DEADLINE
        return Deadline.after_ms(budget_ms)

    def _route_resilient(self, method: str, path: str) -> None:
        """Route a non-debug request through the resilience front.

        Ops routes bypass everything — an overloaded or draining server
        must keep answering ``/health`` and ``/metrics``.  Work routes are
        shed with ``503`` while draining and ``429`` once the admission
        controller is saturated (both with ``Retry-After``); admitted
        requests run under their deadline scope so every pipeline
        checkpoint below can see it.
        """
        service = self.service
        if path in _OPS_ROUTES:
            service.profile_session.profile_call(self._route, method, path)
            return
        if service.is_draining():
            record_shed("draining")
            self._send_error(
                503,
                "service is draining",
                detail="shutting down; not accepting new work",
                retry_after=service.retry_after_seconds,
            )
            return
        deadline = self._deadline_from_header()
        if deadline is self._INVALID_DEADLINE:
            return
        assert deadline is None or isinstance(deadline, Deadline)
        admitted, reason = service.admission.try_acquire(deadline)
        if not admitted:
            record_shed(reason or "saturated")
            self._send_error(
                429,
                "server overloaded",
                detail=f"request shed: {reason}",
                retry_after=service.retry_after_seconds,
            )
            return
        try:
            with deadline_scope(deadline):
                if deadline is not None:
                    deadline.check("admission")
                service.profile_session.profile_call(
                    self._route, method, path
                )
        finally:
            service.admission.release()

    def _method_not_allowed(self, path: str, allow: str) -> None:
        self._send_error(
            405,
            "method not allowed",
            detail=f"{path} supports {allow}",
            allow=allow,
        )

    def _route(self, method: str, path: str) -> None:
        if path in _GET_ROUTES:
            if method not in ("GET", "HEAD"):
                self._method_not_allowed(path, "GET, HEAD")
                return
            if path == "/health":
                self._handle_health()
            elif path == "/model":
                self._handle_model_info()
            elif path == "/debug/vars":
                self._handle_debug_vars()
            elif path == "/debug/slow":
                self._handle_debug_slow()
            elif path == "/debug/quality":
                self._handle_debug_quality()
            elif path == "/debug/locks":
                self._handle_debug_locks()
            elif path == "/debug/history":
                self._handle_debug_history()
            else:
                self._handle_metrics()
            return
        if path.startswith(_TRACE_PREFIX):
            if method not in ("GET", "HEAD"):
                self._method_not_allowed(_TRACE_ENDPOINT, "GET, HEAD")
                return
            self._handle_debug_trace(path[len(_TRACE_PREFIX):])
            return
        if path == _PROFILE_ROUTE:
            if method == "POST":
                self._handle_profile_start()
            elif method == "DELETE":
                self._handle_profile_stop()
            else:
                self._method_not_allowed(path, "POST, DELETE")
            return
        if path in _POST_ROUTES:
            if method != "POST":
                self._method_not_allowed(path, "POST")
                return
            payload = self._read_json(
                _MAX_BATCH_BODY_BYTES if path == "/recommend/batch"
                else _MAX_BODY_BYTES
            )
            if payload is None:
                return
            handlers = {
                "/recommend": self._handle_recommend,
                "/recommend/batch": self._handle_recommend_batch,
                "/spaces": self._handle_spaces,
                "/explain": self._handle_explain,
                "/goals": self._handle_goals,
                "/related": self._handle_related,
            }
            handlers[path](payload)
            return
        if path in _PUT_ROUTES:
            if method != "PUT":
                self._method_not_allowed(path, "PUT")
                return
            payload = self._read_json()
            if payload is None:
                return
            self._handle_put_implementations(payload)
            return
        if path.startswith(_DELETE_PREFIX):
            if method != "DELETE":
                self._method_not_allowed(_DELETE_ENDPOINT, "DELETE")
                return
            self._handle_delete_implementation(path[len(_DELETE_PREFIX):])
            return
        self._send_error(
            404,
            f"unknown path {path}",
            detail={
                "get": [*_GET_ROUTES, _TRACE_ENDPOINT],
                "post": [*_POST_ROUTES, _PROFILE_ROUTE],
                "put": list(_PUT_ROUTES),
                "delete": [_DELETE_ENDPOINT, _PROFILE_ROUTE],
            },
        )

    # ------------------------------------------------------------------
    # Routes
    # ------------------------------------------------------------------

    def _handle_health(self) -> None:
        stats = self.service.manager.stats()
        draining = self.service.is_draining()
        self._send_json(
            200,
            {
                "status": "draining" if draining else "ok",
                "draining": draining,
                "version": __version__,
                "strategies": list(PAPER_STRATEGIES),
                **stats,
            },
        )

    def _handle_metrics(self) -> None:
        if "application/openmetrics-text" in self.headers.get("Accept", ""):
            self._send_text(
                200,
                self.service.registry.render_openmetrics(),
                "application/openmetrics-text; version=1.0.0; charset=utf-8",
            )
            return
        self._send_text(
            200,
            self.service.registry.render(),
            "text/plain; version=0.0.4; charset=utf-8",
        )

    def _handle_model_info(self) -> None:
        self._send_json(200, self.service.manager.describe())

    # ------------------------------------------------------------------
    # Debug surface
    # ------------------------------------------------------------------

    def _handle_debug_vars(self) -> None:
        self._send_json(200, self.service.debug_vars())

    def _handle_debug_slow(self) -> None:
        log = self.service.slow_log
        self._send_json(
            200,
            {
                "threshold_seconds": log.threshold_seconds,
                "capacity": log.size,
                "count": len(log),
                "requests": log.snapshot(),
            },
        )

    def _handle_debug_quality(self) -> None:
        self._send_json(200, self.service.debug_quality())

    def _handle_debug_locks(self) -> None:
        self._send_json(200, self.service.debug_locks())

    def _handle_debug_history(self) -> None:
        history = self.service.history
        if history is None:
            self._send_json(200, {"enabled": False})
            return
        params = dict(
            part.split("=", 1) for part in self._query.split("&") if "=" in part
        )
        family = params.get("family")
        if family is None:
            self._send_json(200, {"enabled": True, **history.index()})
            return
        try:
            window = float(params["window"]) if "window" in params else None
            step = float(params["step"]) if "step" in params else None
        except ValueError:
            self._send_error(
                400,
                "'window' and 'step' must be numbers of seconds",
                detail=f"got window={params.get('window')!r} "
                       f"step={params.get('step')!r}",
            )
            return
        try:
            series = history.series(family, window=window, step=step)
        except ValueError as exc:
            self._send_error(400, "invalid history query", detail=str(exc))
            return
        if series is None:
            self._send_error(
                404,
                f"no history for family {family!r}",
                detail={"families": history.families()},
            )
            return
        self._send_json(200, series)

    def _handle_debug_trace(self, key: str) -> None:
        found = self.service.debug_trace(key)
        if not found["spans"] and not found["slow"]:
            self._send_error(
                404,
                f"no retained trace for {key!r}",
                detail="the span ring buffer and slow log hold a bounded "
                       "window; older requests age out",
            )
            return
        self._send_json(200, found)

    def _handle_profile_start(self) -> None:
        try:
            self.service.profile_session.start()
        except RuntimeError as exc:
            self._send_error(409, str(exc), detail="ProfileSession")
            return
        self.service._set_profile_active(1)
        obs.log_event(_LOG, "profile.start")
        self._send_json(200, {"profiling": True})

    def _handle_profile_stop(self) -> None:
        params = dict(
            part.split("=", 1) for part in self._query.split("&") if "=" in part
        )
        sort = params.get("sort", "cumulative")
        if sort not in _PROFILE_SORTS:
            self._send_error(
                400,
                f"'sort' must be one of {', '.join(_PROFILE_SORTS)}",
                detail=f"got {sort!r}",
            )
            return
        raw_limit = params.get("limit", "40")
        try:
            limit = int(raw_limit)
        except ValueError:
            limit = 0
        if limit <= 0:
            self._send_error(
                400,
                "'limit' must be a positive integer",
                detail=f"got {raw_limit!r}",
            )
            return
        try:
            report = self.service.profile_session.stop(sort=sort, limit=limit)
        except RuntimeError as exc:
            self._send_error(404, str(exc), detail="ProfileSession")
            return
        self.service._set_profile_active(0)
        obs.log_event(_LOG, "profile.stop", sort=sort, limit=limit)
        self._send_text(200, report, "text/plain; charset=utf-8")

    def _handle_recommend(self, payload: dict) -> None:
        activity = self._activity_from(payload)
        if activity is None:
            return
        k = self._positive_int_from(payload, "k", 10)
        if k is None:
            return
        strategy = self._strategy_from(payload)
        if strategy is None:
            return
        tier = self._tier_from(payload)
        if tier is None:
            return
        if tier == "approx":
            # Only Breadth has a pruned tier; a request pairing
            # tier=approx with another strategy is a contradiction, not a
            # silent fallback to exact.
            if strategy != "breadth":
                self._send_error(
                    400,
                    "tier 'approx' requires strategy 'breadth'",
                    detail=f"got strategy {strategy!r}",
                )
                return
            strategy = "breadth_pruned"
        result, cached, generation = self.service.manager.recommend(
            activity, k=k, strategy=strategy
        )
        self._send_json(
            200,
            {
                "strategy": result.strategy,
                "tier": tier,
                "cached": cached,
                "generation": generation,
                "recommendations": [
                    {"action": str(item.action), "score": item.score}
                    for item in result
                ],
            },
        )

    def _handle_recommend_batch(self, payload: dict) -> None:
        activities = payload.get("activities")
        if not isinstance(activities, list) or not all(
            isinstance(activity, list)
            and all(isinstance(item, str) for item in activity)
            for activity in activities
        ):
            self._send_error(
                400,
                "'activities' must be a list of lists of strings",
                detail="body key 'activities'",
            )
            return
        if len(activities) > _MAX_BATCH_ACTIVITIES:
            self._send_error(
                400,
                "batch too large",
                detail=f"at most {_MAX_BATCH_ACTIVITIES} activities "
                       f"per request, got {len(activities)}",
            )
            return
        k = self._positive_int_from(payload, "k", 10)
        if k is None:
            return
        strategy = self._strategy_from(payload)
        if strategy is None:
            return
        if strategy not in PAPER_STRATEGIES:
            self._send_error(
                400,
                f"'strategy' must be one of {', '.join(PAPER_STRATEGIES)}",
                detail=f"got {strategy!r}",
            )
            return
        snap = self.service.manager.snapshot()
        start = time.perf_counter()
        if snap.frozen is None:
            results: list[list[dict]] = [[] for _ in activities]
        else:
            batch = snap.batch()
            if batch is None:
                self._send_error(
                    501,
                    "batch scoring unavailable",
                    detail="the vectorized engine requires numpy and scipy",
                )
                return
            deadline = active_deadline()
            checkpoint = None
            if deadline is not None:
                def checkpoint(_start: int, _d: Deadline = deadline) -> None:
                    _d.check("batch")
            ranked = batch.recommend_many(
                [frozenset(activity) for activity in activities],
                k=k,
                strategy=strategy,
                checkpoint=checkpoint,
            )
            results = [
                [
                    {"action": str(item.action), "score": item.score}
                    for item in result
                ]
                for result in ranked
            ]
        elapsed = time.perf_counter() - start
        self.service._record_batch(strategy, len(activities), elapsed)
        self._send_json(
            200,
            {
                "strategy": strategy,
                "k": k,
                "generation": snap.generation,
                "count": len(results),
                "results": results,
            },
        )

    def _handle_spaces(self, payload: dict) -> None:
        activity = self._activity_from(payload)
        if activity is None:
            return
        snap = self.service.manager.snapshot()
        if snap.recommender is None:
            self._send_json(200, {"goal_space": [], "action_space": []})
            return
        model = snap.recommender.model
        self._send_json(
            200,
            {
                "goal_space": sorted(map(str, model.goal_space_labels(activity))),
                "action_space": sorted(
                    map(str, model.action_space_labels(activity))
                ),
            },
        )

    def _handle_goals(self, payload: dict) -> None:
        from repro.core.goal_inference import GoalInferencer

        activity = self._activity_from(payload)
        if activity is None:
            return
        scorer = payload.get("scorer", "coverage")
        top = self._positive_int_from(payload, "top", 10)
        if top is None:
            return
        snap = self.service.manager.snapshot()
        if snap.frozen is None:
            self._send_json(200, {"scorer": scorer, "goals": []})
            return
        try:
            inferencer = GoalInferencer(snap.recommender.model, scorer=scorer)
        except ValueError as exc:
            self._send_error(400, str(exc), detail="body key 'scorer'")
            return
        inferred = inferencer.infer(activity, top=top)
        self._send_json(
            200,
            {
                "scorer": scorer,
                "goals": [
                    {"goal": str(goal), "score": score}
                    for goal, score in inferred
                ],
            },
        )

    def _handle_related(self, payload: dict) -> None:
        from repro.core.related import related_actions

        action = payload.get("action")
        if not isinstance(action, str):
            self._send_error(
                400, "'action' must be a string", detail=f"got {action!r}"
            )
            return
        k = self._positive_int_from(payload, "k", 10)
        if k is None:
            return
        snap = self.service.manager.snapshot()
        if snap.frozen is None:
            self._send_error(
                422,
                "model has no live implementations",
                detail="ModelError",
            )
            return
        related = related_actions(snap.recommender.model, action, k=k)
        self._send_json(
            200,
            {
                "action": action,
                "related": [
                    {"action": str(other), "similarity": similarity}
                    for other, similarity in related
                ],
            },
        )

    def _handle_explain(self, payload: dict) -> None:
        activity = self._activity_from(payload)
        if activity is None:
            return
        action = payload.get("action")
        if not isinstance(action, str):
            self._send_error(
                400, "'action' must be a string", detail=f"got {action!r}"
            )
            return
        snap = self.service.manager.snapshot()
        if snap.recommender is None:
            self._send_error(
                422,
                "model has no live implementations",
                detail="ModelError",
            )
            return
        evidence = snap.recommender.explain(activity, action)
        self._send_json(
            200,
            {
                "action": action,
                "evidence": {
                    str(goal): [sorted(map(str, acts)) for acts in activities]
                    for goal, activities in evidence.items()
                },
            },
        )

    # ------------------------------------------------------------------
    # Hot reload routes
    # ------------------------------------------------------------------

    def _handle_put_implementations(self, payload: dict) -> None:
        raw = payload.get("implementations")
        if not isinstance(raw, list) or not raw:
            self._send_error(
                400,
                "'implementations' must be a non-empty list",
                detail="body key 'implementations'",
            )
            return
        pairs: list[tuple[GoalLabel, list[ActionLabel]]] = []
        for index, item in enumerate(raw):
            if (
                not isinstance(item, dict)
                or not isinstance(item.get("goal"), str)
                or not isinstance(item.get("actions"), list)
                or not item["actions"]
                or not all(isinstance(a, str) for a in item["actions"])
            ):
                self._send_error(
                    400,
                    "each implementation needs a 'goal' string and a "
                    "non-empty 'actions' list of strings",
                    detail=f"implementations[{index}]",
                )
                return
            pairs.append((item["goal"], item["actions"]))
        ids, snap = self.service.manager.add_implementations(pairs)
        self._send_json(
            200,
            {
                "added": ids,
                "generation": snap.generation,
                "implementations":
                    self.service.manager.num_implementations(),
            },
        )

    def _handle_delete_implementation(self, suffix: str) -> None:
        try:
            pid = int(suffix)
        except ValueError:
            self._send_error(
                400,
                "implementation id must be an integer",
                detail=f"got {suffix!r}",
            )
            return
        try:
            snap = self.service.manager.remove_implementation(pid)
        except ModelError as exc:
            self._send_error(404, str(exc), detail=type(exc).__name__)
            return
        self._send_json(
            200,
            {
                "removed": pid,
                "generation": snap.generation,
                "implementations":
                    self.service.manager.num_implementations(),
            },
        )


def _build_server(
    host: str,
    port: int,
    handler: type,
    reuse_port: bool = False,
    listen_socket: socket.socket | None = None,
) -> ThreadingHTTPServer:
    """Construct the HTTP server, with the multi-worker socket options.

    - default: the stdlib bind-and-activate path, unchanged;
    - ``reuse_port``: bind with ``SO_REUSEPORT`` so N worker processes
      can each bind the *same* explicit port and let the kernel spread
      accepted connections across them (raises :class:`OSError` where the
      platform lacks the option — the supervisor falls back to an
      inherited listener);
    - ``listen_socket``: adopt an already-bound, already-listening socket
      (the pre-fork parent's), skipping bind/listen entirely.
    """
    if listen_socket is not None:
        server = ThreadingHTTPServer((host, port), handler,
                                     bind_and_activate=False)
        server.socket.close()
        server.socket = listen_socket
        bound_host, bound_port = listen_socket.getsockname()[:2]
        server.server_address = (bound_host, bound_port)
        server.server_name = socket.getfqdn(bound_host)
        server.server_port = bound_port
        return server
    if reuse_port:
        if not hasattr(socket, "SO_REUSEPORT"):
            raise OSError("SO_REUSEPORT is not available on this platform")
        server = ThreadingHTTPServer((host, port), handler,
                                     bind_and_activate=False)
        try:
            server.socket.setsockopt(
                socket.SOL_SOCKET, socket.SO_REUSEPORT, 1
            )
            server.server_bind()
            server.server_activate()
        except BaseException:
            server.server_close()
            raise
        return server
    return ThreadingHTTPServer((host, port), handler)


class RecommenderService:
    """Threaded HTTP server wrapping the cached, hot-reloadable serving layer.

    Args:
        model: the goal model to serve — either a frozen
            :class:`AssociationGoalModel` (re-indexed into an incremental
            model so hot reload works) or an
            :class:`IncrementalGoalModel` used as-is.
        host: bind address (loopback by default).
        port: TCP port; 0 binds an ephemeral port (read :attr:`port` after
            construction).
        registry: metrics registry backing ``GET /metrics`` and the request
            accounting; defaults to the process-wide registry (resolved at
            request time), which is also where the recommend-path
            instrumentation records.
        enable_metrics: turn on process-wide metric recording at
            construction.
        enable_tracing: turn on process-wide span recording — required for
            the ``/debug/slow`` span trees and the per-stage breakdown in
            ``/debug/vars``.
        enable_exemplars: capture per-bucket request-id exemplars on the
            latency histograms (rendered by the OpenMetrics ``/metrics``
            variant); implies nothing unless metrics are on.
        trace_detail: recommend spans additionally carry the space sizes
            |IS|, |GS|, |AS| and the candidate count (three extra index
            queries per request); implies nothing unless tracing is on.
        cache_size: capacity of the ``(generation, strategy, activity, k)``
            recommendation LRU; 0 disables result caching.
        approx_budget: per-action posting-list cap of the ``tier=approx``
            recommend path (``breadth_pruned``) — see docs/performance.md
            for the recall/latency trade-off.
        space_cache_size: capacity of the memoized ``implementation_space``
            LRU; 0 disables the memo.
        slow_threshold_seconds: requests at least this slow are logged in
            ``/debug/slow`` and counted in ``repro_slow_requests_total``.
        slow_log_size: how many slow requests ``/debug/slow`` retains (the
            slowest seen, not the most recent).
        max_inflight: how many work-route requests may execute
            concurrently before admission control starts queueing.
        max_queue: how many more may wait briefly for an execution slot;
            beyond this, requests are shed with ``429`` + ``Retry-After``.
        queue_timeout_seconds: longest a request waits in the admission
            queue before being shed.
        retry_after_seconds: the ``Retry-After`` hint on ``429``/``503``.
        default_deadline_ms: deadline applied to work requests that carry
            no ``X-Request-Deadline-Ms`` header (``None`` = no default).
        quality_window: sliding-window size (requests) of the quality
            monitor's catalog-coverage accounting.
        score_threshold: top scores below this count toward the
            below-threshold-result rate.
        drift_window: sliding-window size (requests) of the live activity
            profile the drift detector compares against the baseline.
        drift_threshold: PSI value at which the drift alert gauge raises
            and a ``quality.drift`` event is logged.
        slo_availability: availability objective (fraction of requests
            that must not be 5xx) behind the availability burn-rate gauge.
        slo_latency_ms: latency objective in milliseconds — requests
            slower than this are "slow" for the latency SLO.
        slo_latency_target: fraction of requests that must meet the
            latency objective.
        telemetry_dir: directory for the durable flight recorder's rotating
            JSONL files (``None`` disables the recorder).
        telemetry_sample_rate: fraction of requests whose span trees the
            recorder persists (head-based, deterministic per request id).
        reuse_port: bind with ``SO_REUSEPORT`` so several worker
            processes can share one explicit port (multi-worker mode).
        listen_socket: adopt an already-bound, already-listening socket
            instead of binding — the pre-fork parent's inherited
            listener (``host``/``port`` are then ignored).
        initial_generation: starting value of the model generation
            counter — a respawned worker resumes at the pool's current
            generation instead of 0.
        engine_factory: builds the initial generation's CSR engine; the
            multi-worker bootstrap passes the zero-copy shared-memory
            reconstruction so workers skip the sparse products.
    """

    def __init__(
        self,
        model: AssociationGoalModel | IncrementalGoalModel,
        host: str = "127.0.0.1",
        port: int = 0,
        registry: obs.MetricsRegistry | None = None,
        enable_metrics: bool = True,
        enable_tracing: bool = True,
        enable_exemplars: bool = True,
        trace_detail: bool = True,
        cache_size: int = 1024,
        space_cache_size: int = 4096,
        approx_budget: int = 128,
        slow_threshold_seconds: float = 0.1,
        slow_log_size: int = 32,
        max_inflight: int = 64,
        max_queue: int = 128,
        queue_timeout_seconds: float = 0.5,
        retry_after_seconds: float = 1.0,
        default_deadline_ms: float | None = None,
        quality_window: int = 512,
        score_threshold: float = 0.05,
        drift_window: int = 256,
        drift_threshold: float = 0.25,
        slo_availability: float = 0.999,
        slo_latency_ms: float = 250.0,
        slo_latency_target: float = 0.99,
        telemetry_dir: Path | str | None = None,
        telemetry_sample_rate: float = 1.0,
        history_interval_seconds: float = obs.DEFAULT_INTERVAL_SECONDS,
        history_window_seconds: float = obs.DEFAULT_WINDOW_SECONDS,
        history_enabled: bool = True,
        reuse_port: bool = False,
        listen_socket: socket.socket | None = None,
        initial_generation: int = 0,
        engine_factory: Callable[[], Any] | None = None,
    ) -> None:
        self._registry = registry
        obs.enable(
            metrics=enable_metrics,
            tracing=enable_tracing,
            exemplars=enable_metrics and enable_exemplars,
            trace_detail=enable_tracing and trace_detail,
            quality=enable_metrics,
        )
        # Quality telemetry is wired before the manager: the swap callback
        # below references the monitor's drift detector.
        self.recorder: obs.FlightRecorder | None = None
        if telemetry_dir is not None:
            self.recorder = obs.FlightRecorder(
                Path(telemetry_dir), sample_rate=telemetry_sample_rate
            )
        self.quality = obs.QualityMonitor(
            window_size=quality_window,
            score_threshold=score_threshold,
            drift=obs.DriftDetector(
                window_size=drift_window, threshold=drift_threshold
            ),
        )
        if self.recorder is not None:
            self.quality.set_event_sink(self.recorder.record_event)
        obs.set_quality_monitor(self.quality)
        self.slo = obs.SLOTracker(
            availability_objective=slo_availability,
            latency_objective_seconds=slo_latency_ms / 1000.0,
            latency_target=slo_latency_target,
        )
        if isinstance(model, IncrementalGoalModel):
            incremental = model
        else:
            incremental = IncrementalGoalModel.from_library(model.to_library())
        self.manager = ModelManager(
            incremental,
            cache_size=cache_size,
            space_cache_size=space_cache_size,
            on_swap=self._on_model_swap,
            approx_budget=approx_budget,
            initial_generation=initial_generation,
            engine_factory=engine_factory,
        )
        # The manager's constructor built the generation-0 snapshot before
        # the swap callback could see it; freeze the initial baseline now.
        self._on_model_swap(self.manager.snapshot())
        self._started_at = time.time()
        self.slow_log = obs.SlowRequestLog(
            size=slow_log_size, threshold_seconds=slow_threshold_seconds
        )
        self.profile_session = obs.ProfileSession()
        # A Condition (its lock taken with the same ``with`` statement the
        # old plain Lock used) so drain() can wait for in-flight == 0.
        self._inflight_lock = make_condition(
            "RecommenderService._inflight_lock"
        )
        self._inflight = 0
        self._draining = False
        self.admission = AdmissionController(
            max_inflight=max_inflight,
            max_queue=max_queue,
            queue_timeout_seconds=queue_timeout_seconds,
        )
        self.retry_after_seconds = retry_after_seconds
        self.default_deadline_ms = default_deadline_ms
        # The metrics history snapshots whatever registry /metrics serves
        # (the private one in tests, the process-wide one otherwise); its
        # capture thread starts in start() and stops in stop()/drain().
        self.history: obs.MetricsHistory | None = None
        if history_enabled:
            self.history = obs.MetricsHistory(
                interval_seconds=history_interval_seconds,
                window_seconds=history_window_seconds,
                registry_getter=lambda: self.registry,
            )
        # Feed every finished root span into the process stage profiler so
        # /debug/vars serves a per-stage breakdown; removed again in stop().
        self._tracer = obs.get_tracer()
        self._tracer.add_sink(obs.get_profiler().observe_span)
        handler = type("BoundHandler", (_Handler,), {"service": self})
        self._server = _build_server(
            host, port, handler,
            reuse_port=reuse_port, listen_socket=listen_socket,
        )
        self._thread: threading.Thread | None = None

    @property
    def model(self) -> AssociationGoalModel | None:
        """The frozen model of the current generation (``None`` if empty)."""
        return self.manager.snapshot().frozen

    @property
    def recommender(self) -> GoalRecommender | None:
        """The reference recommender of the current generation."""
        return self.manager.snapshot().recommender

    @property
    def registry(self) -> obs.MetricsRegistry:
        """The registry served by ``GET /metrics``."""
        return self._registry if self._registry is not None else obs.get_registry()

    @property
    def port(self) -> int:
        """The bound TCP port (useful with ``port=0``)."""
        return self._server.server_address[1]

    def _on_model_swap(self, snapshot: ModelSnapshot) -> None:
        """Re-freeze the drift baseline for a newly published generation.

        Registered as the manager's ``on_swap`` callback (invoked under the
        write lock, so it must stay cheap) and called once by ``__init__``
        for the generation the manager constructed before the callback was
        wired.
        """
        if snapshot.frozen is None:
            baseline = obs.BaselineProfile({}, generation=snapshot.generation)
        else:
            baseline = obs.BaselineProfile.from_model(
                snapshot.frozen, generation=snapshot.generation
            )
        self.quality.drift.set_baseline(baseline)

    def _record_request(
        self, endpoint: str, method: str, status: int, elapsed: float
    ) -> None:
        """Account one handled request in the registry and the logs."""
        if obs.quality_enabled():
            # 5xx burns the availability budget; client errors and the 499
            # client-went-away sentinel do not.
            self.slo.observe(status >= 500, elapsed)
        registry = self.registry
        registry.counter(
            "repro_http_requests_total",
            "HTTP requests served, by endpoint, method and status.",
            endpoint=endpoint, method=method, status=str(status),
        ).inc()
        if status >= 400:
            registry.counter(
                "repro_http_errors_total",
                "HTTP error responses (status >= 400), by endpoint and status.",
                endpoint=endpoint, status=str(status),
            ).inc()
        registry.histogram(
            "repro_http_request_seconds",
            "Wall-clock request handling time, by endpoint.",
            endpoint=endpoint,
        ).observe(elapsed)
        obs.log_event(
            _LOG, "http.request", level=20,
            endpoint=endpoint, method=method, status=status,
            seconds=round(elapsed, 6),
        )

    def _publish_inflight(self, delta: int) -> None:
        """Track one request entering (+1) or leaving (-1) the handler."""
        with self._inflight_lock:
            self._inflight += delta
            inflight = self._inflight
            if inflight == 0:
                # drain() may be waiting for the last request to finish.
                self._inflight_lock.notify_all()
        if obs.metrics_enabled():
            self.registry.gauge(
                "repro_http_inflight_requests",
                "HTTP requests currently being handled.",
            ).set(inflight)

    @property
    def inflight_requests(self) -> int:
        """Requests currently inside the handler (including this one)."""
        with self._inflight_lock:
            return self._inflight

    def is_draining(self) -> bool:
        """``True`` once :meth:`drain` has started shedding new work."""
        with self._inflight_lock:
            return self._draining

    def _publish_draining(self, value: int) -> None:
        if obs.metrics_enabled():
            self.registry.gauge(
                "repro_service_draining",
                "1 while the service is draining (shedding new work).",
            ).set(value)

    def drain(self, timeout: float = 10.0, grace: float = 0.0) -> bool:
        """Gracefully wind the service down; returns ``True`` if clean.

        The sequence (see ``docs/resilience.md``):

        1. flip the draining flag — ``/health`` reports ``draining`` and
           work routes answer ``503`` + ``Retry-After`` from here on;
        2. after an optional ``grace`` window (time for a load balancer
           polling ``/health`` to stop routing here), stop accepting new
           connections;
        3. wait up to ``timeout`` seconds for the in-flight requests to
           finish — they complete normally, nothing is killed;
        4. tear the server down.

        Returns ``False`` when requests were still in flight at the
        timeout (the socket is closed anyway; their daemon threads die
        with the process).  Safe to call more than once and safe to
        follow with :meth:`stop`.
        """
        with self._inflight_lock:
            self._draining = True
        self._publish_draining(1)
        self._stop_history()
        obs.log_event(
            _LOG, "service.drain.start", timeout=timeout, grace=grace,
        )
        if grace > 0:
            time.sleep(grace)
        if self._thread is None:
            self._close_recorder()
            obs.log_event(_LOG, "service.drain.done", drained=True, dropped=0)
            return True
        self._server.shutdown()
        self._thread.join()
        with self._inflight_lock:
            end = time.monotonic() + timeout
            while self._inflight > 0:
                remaining = end - time.monotonic()
                if remaining <= 0:
                    break
                self._inflight_lock.wait(remaining)
            dropped = self._inflight
        if dropped:
            # Don't let server_close() join the stuck handler threads —
            # the drain timeout is the contract; the daemon threads die
            # with the process.
            self._server.block_on_close = False
        self._server.server_close()
        self._thread = None
        self._tracer.remove_sink(obs.get_profiler().observe_span)
        self._close_recorder()
        obs.log_event(
            _LOG, "service.drain.done", drained=not dropped, dropped=dropped,
        )
        return not dropped

    def _record_telemetry(
        self,
        request_id: str,
        endpoint: str,
        method: str,
        status: int,
        elapsed: float,
        root: "obs.Span | None",
        trace_id: str | None = None,
    ) -> None:
        """Offer one finished request to the flight recorder (if configured).

        The span tree is serialized only for requests the head-based
        sampler admits — ``to_dict()`` walks the whole tree and would
        otherwise dominate the exporter's overhead budget.
        """
        recorder = self.recorder
        if recorder is None:
            return
        spans = None
        if root is not None and recorder.should_sample(request_id):
            spans = [root.to_dict()]
        recorder.record_request(
            request_id, endpoint, method, status, elapsed, spans=spans,
            trace_id=trace_id,
        )

    def _record_slow(
        self,
        request_id: str,
        endpoint: str,
        method: str,
        status: int,
        elapsed: float,
        spans: list[dict[str, object]],
        trace_id: str | None = None,
    ) -> None:
        """Log and count one request if it crossed the slow threshold."""
        if elapsed < self.slow_log.threshold_seconds:
            return
        self.slow_log.offer(
            request_id, endpoint, method, status, elapsed, spans,
            trace_id=trace_id,
        )
        if obs.metrics_enabled():
            self.registry.counter(
                "repro_slow_requests_total",
                "Requests at or above the slow-log threshold, by endpoint.",
                endpoint=endpoint,
            ).inc()

    def _set_profile_active(self, value: int) -> None:
        """Publish the cProfile-session state gauge (1 active, 0 idle)."""
        if obs.metrics_enabled():
            self.registry.gauge(
                "repro_profile_active",
                "1 while an on-demand cProfile session is running.",
            ).set(value)

    def debug_vars(self) -> dict[str, Any]:
        """The ``GET /debug/vars`` introspection snapshot."""
        tracer = obs.get_tracer()
        profiler = obs.get_profiler()
        return {
            "version": __version__,
            "uptime_seconds": round(time.time() - self._started_at, 3),
            "generation": self.manager.generation,
            "implementations": self.manager.num_implementations(),
            "inflight_requests": self.inflight_requests,
            "caches": self.manager.describe()["caches"],
            "span_buffer": {
                "occupancy": tracer.occupancy(),
                "capacity": tracer.capacity,
                "dropped": tracer.dropped(),
            },
            "telemetry": (
                self.recorder.snapshot()
                if self.recorder is not None
                else {"enabled": False}
            ),
            "history": (
                {"enabled": True, **self.history.index()}
                if self.history is not None
                else {"enabled": False}
            ),
            "slow_log": {
                "count": len(self.slow_log),
                "capacity": self.slow_log.size,
                "threshold_seconds": self.slow_log.threshold_seconds,
            },
            "profile": {
                "active": self.profile_session.active,
                "calls": self.profile_session.calls,
            },
            "stages": profiler.breakdown(),
            "resilience": {
                "draining": self.is_draining(),
                "admission": {
                    "active": self.admission.active(),
                    "waiting": self.admission.waiting(),
                    "max_inflight": self.admission.max_inflight,
                    "max_queue": self.admission.max_queue,
                    "queue_timeout_seconds":
                        self.admission.queue_timeout_seconds,
                },
                "default_deadline_ms": self.default_deadline_ms,
                "retry_after_seconds": self.retry_after_seconds,
            },
            "flags": {
                "metrics": obs.metrics_enabled(),
                "tracing": obs.tracing_enabled(),
                "exemplars": obs.exemplars_enabled(),
                "trace_detail": obs.trace_detail_enabled(),
                "quality": obs.quality_enabled(),
            },
        }

    def debug_quality(self) -> dict[str, Any]:
        """The ``GET /debug/quality`` recommendation-quality snapshot."""
        return {
            "quality": self.quality.snapshot(),
            "slo": self.slo.snapshot(),
            "telemetry": (
                self.recorder.snapshot()
                if self.recorder is not None
                else {"enabled": False}
            ),
        }

    def debug_locks(self) -> dict[str, Any]:
        """The ``GET /debug/locks`` lock-sanitizer snapshot.

        ``{"enabled": false, ...}`` when the sanitizer is off; otherwise
        the manifest in force, per-site acquisition/contention/hold
        statistics and every violation detected so far.
        """
        return lock_sanitizer_snapshot()

    def debug_trace(self, key: str) -> dict[str, Any]:
        """Everything retained about one request id (or trace id).

        Searches the tracer's root-span ring buffer and the slow-request
        log for entries stamped with ``key`` as either ``request_id`` or
        ``trace_id``.  Both buffers are bounded, so this is a window into
        recent traffic, not an archive — the flight recorder
        (``repro telemetry report``) is the durable tail.
        """
        spans = []
        for root in obs.get_tracer().spans():
            attributes = root.get("attributes", {})
            if key in (
                attributes.get("request_id"), attributes.get("trace_id")
            ):
                spans.append(root)
        slow = [
            entry for entry in self.slow_log.snapshot()
            if key in (entry.get("request_id"), entry.get("trace_id"))
        ]
        trace_id: object = None
        for source in (*spans, *slow):
            attributes = source.get("attributes", source)
            if isinstance(attributes, dict) and attributes.get("trace_id"):
                trace_id = attributes["trace_id"]
                break
        return {
            "key": key,
            "trace_id": trace_id,
            "spans": spans,
            "slow": slow,
        }

    def _record_batch(
        self, strategy: str, activities: int, elapsed: float
    ) -> None:
        """Account one batch scoring pass."""
        registry = self.registry
        registry.counter(
            "repro_batch_requests_total",
            "Batch recommendation requests served, by strategy.",
            strategy=strategy,
        ).inc()
        registry.counter(
            "repro_batch_activities_total",
            "Activities scored through /recommend/batch, by strategy.",
            strategy=strategy,
        ).inc(activities)
        registry.histogram(
            "repro_batch_scoring_seconds",
            "Bulk scoring time of one /recommend/batch request, by strategy.",
            strategy=strategy,
        ).observe(elapsed)

    def start(self) -> "RecommenderService":
        """Serve requests on a daemon thread; returns ``self``."""
        if self._thread is not None:
            raise RuntimeError("service already started")
        self._thread = threading.Thread(
            target=self._server.serve_forever, daemon=True
        )
        self._thread.start()
        if self.history is not None:
            # After the server thread: the first capture then already sees
            # a live registry, and /debug/history has a baseline point.
            self.history.start()
        obs.log_event(
            _LOG, "service.start", version=__version__,
            port=self.port,
            implementations=self.manager.num_implementations(),
        )
        return self

    def _close_recorder(self) -> None:
        """Flush and close the flight recorder (idempotent, ``None``-safe)."""
        if self.recorder is not None:
            self.recorder.close()

    def _stop_history(self) -> None:
        """Stop the history capture thread (idempotent, ``None``-safe)."""
        if self.history is not None:
            self.history.stop()

    def stop(self) -> None:
        """Shut the server down and join the serving thread."""
        self._stop_history()
        if self._thread is None:
            self._close_recorder()
            return
        self._server.shutdown()
        self._thread.join()
        self._server.server_close()
        self._thread = None
        self._tracer.remove_sink(obs.get_profiler().observe_span)
        self._close_recorder()
        obs.log_event(_LOG, "service.stop")

    def __enter__(self) -> "RecommenderService":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
