"""The paper's evaluation protocol (Section 6, around Table 1).

User activities record *all* actions a user performed, so to evaluate a
recommender the paper hides part of each activity: the actions are shuffled
and 30% are kept as the *observed* activity handed to the recommenders,
while the remaining 70% stay *hidden* and serve as ground truth (e.g. for
the Figure 4 true-positive-rate experiment).  Observed actions may span
several of the user's goals with uneven evidence, and whole goals can end up
entirely hidden — exactly the situation described in the paper's example.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass

from repro.core.entities import ActionLabel
from repro.data.schema import Dataset, GeneratedUser
from repro.exceptions import EvaluationError
from repro.utils.rng import SeedLike, make_rng
from repro.utils.validation import require_probability


@dataclass(frozen=True, slots=True)
class UserSplit:
    """One user's observed/hidden partition plus ground truth."""

    user: GeneratedUser
    observed: frozenset[ActionLabel]
    hidden: frozenset[ActionLabel]

    def __post_init__(self) -> None:
        if self.observed & self.hidden:
            raise EvaluationError(
                f"user {self.user.user_id!r}: observed and hidden overlap"
            )


@dataclass(frozen=True, slots=True)
class EvaluationSplit:
    """The dataset-wide split the harness evaluates under."""

    dataset_name: str
    observed_fraction: float
    users: tuple[UserSplit, ...]

    def __len__(self) -> int:
        return len(self.users)

    def __iter__(self) -> Iterator[UserSplit]:
        return iter(self.users)

    def observed_activities(self) -> list[frozenset[ActionLabel]]:
        """Observed parts of every user, in split order.

        This is what the collaborative baselines are trained on: the
        recommenders only ever see the observed world.
        """
        return [user.observed for user in self.users]


def make_split(
    dataset: Dataset,
    observed_fraction: float = 0.3,
    seed: SeedLike = 0,
    min_activity: int = 2,
    max_users: int | None = None,
) -> EvaluationSplit:
    """Partition every user's activity into observed/hidden parts.

    Args:
        dataset: the scenario to split.
        observed_fraction: fraction kept observed (the paper uses 0.3).
        seed: shuffle seed; a fixed seed freezes the split across methods so
            every recommender answers the identical requests.
        min_activity: users with fewer actions are skipped — they cannot
            receive a non-degenerate split.
        max_users: optional cap (keeps CI benchmarks fast); the first
            ``max_users`` eligible users in dataset order are used.

    Every eligible user keeps at least one observed and one hidden action.
    Raises :class:`EvaluationError` when no user is eligible.
    """
    require_probability(observed_fraction, "observed_fraction")
    if not 0.0 < observed_fraction < 1.0:
        raise EvaluationError(
            "observed_fraction must be strictly between 0 and 1 so both "
            f"parts are non-empty; got {observed_fraction}"
        )
    if min_activity < 2:
        raise EvaluationError(
            f"min_activity must be at least 2, got {min_activity}"
        )
    rng = make_rng(seed)
    splits: list[UserSplit] = []
    for user in dataset.users:
        if len(user.full_activity) < min_activity:
            continue
        actions = sorted(user.full_activity, key=str)
        rng.shuffle(actions)
        cut = max(1, round(observed_fraction * len(actions)))
        cut = min(cut, len(actions) - 1)  # keep at least one hidden action
        splits.append(
            UserSplit(
                user=user,
                observed=frozenset(actions[:cut]),
                hidden=frozenset(actions[cut:]),
            )
        )
        if max_users is not None and len(splits) >= max_users:
            break
    if not splits:
        raise EvaluationError(
            f"no user of dataset {dataset.name!r} has >= {min_activity} actions"
        )
    return EvaluationSplit(
        dataset_name=dataset.name,
        observed_fraction=observed_fraction,
        users=tuple(splits),
    )
