"""Evaluation: the paper's protocol, metrics, harness and timing studies.

- :mod:`repro.eval.protocol` — the 30%-observed / 70%-hidden activity split
  (paper Section 6, Table 1's description);
- :mod:`repro.eval.metrics` — every quantity reported in Section 6.1
  (C.1.1-C.2.2): list overlap, popularity correlation, usefulness (goal
  completeness), pairwise similarity, average TPR, frequency profiles;
- :mod:`repro.eval.harness` — runs all goal-based strategies and baselines
  over a dataset under one split, producing per-user recommendation lists;
- :mod:`repro.eval.report` — plain-text tables mirroring the paper's;
- :mod:`repro.eval.timing` — the Figure 7 scalability study.
"""

from repro.eval.beyond import (
    average_intra_list_distance,
    catalog_coverage,
    gini_concentration,
    intra_list_distance,
    novelty,
)
from repro.eval.cold_goal import (
    ColdGoalCase,
    ColdGoalResult,
    build_cold_goal_cases,
    evaluate_cold_goal,
)
from repro.eval.error_analysis import (
    bucketed_metric,
    compare_methods_bucketed,
    goal_count,
    make_implementation_space_size,
    observed_size,
)
from repro.eval.harness import ExperimentHarness, ExperimentResult
from repro.eval.metrics import (
    average_list_overlap,
    average_pairwise_similarity,
    average_true_positive_rate,
    frequency_histogram,
    goal_completeness_after,
    library_frequencies,
    list_overlap,
    pairwise_similarity,
    pearson,
    popularity_correlation,
    recommendation_frequencies,
    true_positive_rate,
    usefulness_summary,
)
from repro.eval.protocol import EvaluationSplit, UserSplit, make_split
from repro.eval.ranking_metrics import (
    average_over_users,
    average_precision,
    ndcg_at,
    precision_at,
    recall_at,
    reciprocal_rank,
)
from repro.eval.repeated import RepeatedResult, repeated_evaluation, tpr_metric
from repro.eval.report import ascii_bar_chart, format_table
from repro.eval.stats import (
    ConfidenceInterval,
    PairedTestResult,
    bootstrap_ci,
    paired_bootstrap_test,
)

__all__ = [
    "ColdGoalCase",
    "ColdGoalResult",
    "build_cold_goal_cases",
    "evaluate_cold_goal",
    "bucketed_metric",
    "compare_methods_bucketed",
    "observed_size",
    "goal_count",
    "make_implementation_space_size",
    "precision_at",
    "recall_at",
    "ndcg_at",
    "average_precision",
    "reciprocal_rank",
    "average_over_users",
    "repeated_evaluation",
    "RepeatedResult",
    "tpr_metric",
    "ascii_bar_chart",
    "intra_list_distance",
    "average_intra_list_distance",
    "novelty",
    "catalog_coverage",
    "gini_concentration",
    "ConfidenceInterval",
    "PairedTestResult",
    "bootstrap_ci",
    "paired_bootstrap_test",
    "EvaluationSplit",
    "UserSplit",
    "make_split",
    "ExperimentHarness",
    "ExperimentResult",
    "list_overlap",
    "average_list_overlap",
    "pearson",
    "popularity_correlation",
    "goal_completeness_after",
    "usefulness_summary",
    "pairwise_similarity",
    "average_pairwise_similarity",
    "true_positive_rate",
    "average_true_positive_rate",
    "recommendation_frequencies",
    "library_frequencies",
    "frequency_histogram",
    "format_table",
]
