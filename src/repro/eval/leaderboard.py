"""Leaderboard assembly: every method, every headline metric, one table.

:func:`build_leaderboard` drives a harness over any mix of goal-based
strategies and baselines and assembles the standard comparison table (TPR,
NDCG@k, MRR, goal completeness, popularity correlation).  Sequence-based
methods (``markov``) are fitted on the split users' recorded sequences when
the dataset carries them.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.baselines.markov import MarkovRecommender
from repro.core.entities import RecommendationList
from repro.core.recommender import PAPER_STRATEGIES
from repro.eval.harness import ExperimentHarness
from repro.eval.metrics import (
    average_true_positive_rate,
    goal_completeness_after,
    popularity_correlation,
    usefulness_summary,
)
from repro.eval.ranking_metrics import (
    average_over_users,
    ndcg_at,
    reciprocal_rank,
)
from repro.exceptions import EvaluationError


@dataclass(frozen=True, slots=True)
class LeaderboardRow:
    """One method's headline numbers."""

    method: str
    avg_tpr: float
    ndcg: float
    mrr: float
    completeness: float
    popularity_corr: float

    def as_list(self) -> list[object]:
        """Row form for :func:`repro.eval.report.format_table`."""
        return [
            self.method,
            self.avg_tpr,
            self.ndcg,
            self.mrr,
            self.completeness,
            self.popularity_corr,
        ]

    @staticmethod
    def headers() -> list[str]:
        """Column headers matching :meth:`as_list`."""
        return ["method", "avg_tpr", "ndcg@k", "mrr", "completeness", "pop_corr"]


def _markov_lists(harness: ExperimentHarness) -> list[RecommendationList]:
    """Fit Markov on observed *sequences* and answer every request.

    The observed part of a user's sequence preserves the recorded order of
    the observed actions.  Raises :class:`EvaluationError` when the dataset
    records no sequences.
    """
    sequences = []
    for user in harness.split:
        ordered = [a for a in user.user.sequence if a in user.observed]
        if ordered:
            sequences.append(ordered)
    if not sequences:
        raise EvaluationError(
            f"dataset {harness.dataset.name!r} records no action sequences; "
            "the markov method is not applicable"
        )
    markov = MarkovRecommender().fit(sequences)
    lists = []
    for user in harness.split:
        ordered = [a for a in user.user.sequence if a in user.observed]
        lists.append(markov.recommend(ordered, k=harness.k))
    return lists


def method_lists(
    harness: ExperimentHarness, method: str
) -> list[RecommendationList]:
    """Lists for any method name: goal strategy, baseline, or ``markov``."""
    if method in PAPER_STRATEGIES:
        return harness.run_goal_method(method)
    if method == "markov":
        if "markov" in harness.result:
            return harness.result.lists("markov")
        lists = _markov_lists(harness)
        harness.result.add("markov", lists)
        return lists
    return harness.run_baseline(method)


def build_leaderboard(
    harness: ExperimentHarness,
    methods: Sequence[str],
) -> list[LeaderboardRow]:
    """Assemble the leaderboard for ``methods``, in the given order."""
    if not methods:
        raise EvaluationError("methods must not be empty")
    hidden = harness.hidden_sets()
    activities = harness.observed_activities()
    ndcg = ndcg_at(harness.k)
    rows: list[LeaderboardRow] = []
    for method in methods:
        lists = method_lists(harness, method)
        completeness = usefulness_summary(
            [
                goal_completeness_after(
                    harness.model, user.observed, rec,
                    goals=user.user.goals or None,
                )
                for user, rec in zip(harness.split, lists)
            ]
        )
        rows.append(
            LeaderboardRow(
                method=method,
                avg_tpr=average_true_positive_rate(lists, hidden),
                ndcg=average_over_users(ndcg, lists, hidden),
                mrr=average_over_users(reciprocal_rank, lists, hidden),
                completeness=completeness.avg_avg,
                popularity_corr=popularity_correlation(activities, lists),
            )
        )
    return rows
