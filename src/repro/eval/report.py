"""Plain-text table rendering for the benchmark drivers.

The benchmarks print tables shaped like the paper's so a reader can line
them up side by side; this module owns the (deliberately simple) layout:
left-aligned first column, right-aligned numbers, a rule under the header.
"""

from __future__ import annotations

from collections.abc import Sequence


def format_cell(value: object, precision: int = 3) -> str:
    """Render one cell: floats get fixed precision, the rest ``str()``."""
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
    precision: int = 3,
    style: str = "plain",
) -> str:
    """Render ``rows`` under ``headers`` as a text table.

    ``style="plain"`` (default) gives the aligned terminal layout;
    ``style="markdown"`` gives a GitHub-flavoured pipe table (the title, if
    any, becomes a bold first line).
    """
    if style not in ("plain", "markdown"):
        raise ValueError(f"style must be 'plain' or 'markdown', got {style!r}")
    rendered = [
        [format_cell(value, precision) for value in row] for row in rows
    ]
    for row in rendered:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
    if style == "markdown":
        lines = [f"**{title}**", ""] if title else []
        lines.append("| " + " | ".join(headers) + " |")
        lines.append("|" + "|".join("---" for _ in headers) + "|")
        for row in rendered:
            lines.append("| " + " | ".join(row) + " |")
        return "\n".join(lines)
    widths = [len(h) for h in headers]
    for row in rendered:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(
        h.ljust(w) if i == 0 else h.rjust(w)
        for i, (h, w) in enumerate(zip(headers, widths))
    )
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in rendered:
        lines.append(
            "  ".join(
                cell.ljust(w) if i == 0 else cell.rjust(w)
                for i, (cell, w) in enumerate(zip(row, widths))
            )
        )
    return "\n".join(lines)


def ascii_bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 40,
    title: str | None = None,
) -> str:
    """Render a horizontal bar chart in plain text.

    Bars scale to ``width`` characters at the maximum value; each row shows
    the label, the bar and the numeric value — the terminal stand-in for
    the paper's bar figures (Figures 3 and 4).
    """
    if len(labels) != len(values):
        raise ValueError(
            f"labels and values must align: {len(labels)} vs {len(values)}"
        )
    if not labels:
        raise ValueError("nothing to chart")
    if width < 1:
        raise ValueError(f"width must be positive, got {width}")
    peak = max(values)
    if peak < 0:
        raise ValueError("bar charts need non-negative values")
    label_width = max(len(str(label)) for label in labels)
    lines: list[str] = []
    if title:
        lines.append(title)
    for label, value in zip(labels, values):
        if value < 0:
            raise ValueError("bar charts need non-negative values")
        bar = "#" * (round(value / peak * width) if peak > 0 else 0)
        lines.append(f"{str(label).ljust(label_width)} |{bar} {value:.3f}")
    return "\n".join(lines)
