"""Standard ranking metrics against the hidden activity.

The paper reports its own metrics (TPR, completeness); a recommender
library should also speak the standard evaluation vocabulary.  All metrics
take one ranked list and the user's hidden relevant set:

- :func:`precision_at` / :func:`recall_at` — set overlap at a cutoff;
- :func:`average_precision` — precision averaged at each relevant hit (MAP
  when averaged over users);
- :func:`reciprocal_rank` — 1/rank of the first hit (MRR when averaged);
- :func:`ndcg_at` — DCG with binary relevance against the ideal ordering.

``average_over_users`` pools any of them across a split.  Note the paper's
caveat applies verbatim: the user never saw the lists, so these measure
*retrieval of actions the user independently performed*, not click-through
quality.
"""

from __future__ import annotations

import math
from collections.abc import Callable, Iterable, Sequence

from repro.core.entities import ActionLabel, RecommendationList
from repro.exceptions import EvaluationError

RankingMetric = Callable[[RecommendationList, frozenset[ActionLabel]], float]


def _relevant(hidden: Iterable[ActionLabel]) -> frozenset[ActionLabel]:
    relevant = frozenset(hidden)
    if not relevant:
        raise EvaluationError("hidden relevant set must not be empty")
    return relevant


def precision_at(
    k: int,
) -> RankingMetric:
    """Metric factory: fraction of the top-``k`` that is relevant.

    Lists shorter than ``k`` are penalized (divisor stays ``k``) — an
    empty slot retrieves nothing.
    """
    if k <= 0:
        raise EvaluationError(f"k must be positive, got {k}")

    def metric(
        recommendation: RecommendationList, hidden: frozenset[ActionLabel]
    ) -> float:
        relevant = _relevant(hidden)
        top = recommendation.actions()[:k]
        return sum(1 for action in top if action in relevant) / k

    metric.__name__ = f"precision_at_{k}"
    return metric


def recall_at(k: int) -> RankingMetric:
    """Metric factory: fraction of the relevant set found in the top-``k``."""
    if k <= 0:
        raise EvaluationError(f"k must be positive, got {k}")

    def metric(
        recommendation: RecommendationList, hidden: frozenset[ActionLabel]
    ) -> float:
        relevant = _relevant(hidden)
        top = recommendation.actions()[:k]
        return sum(1 for action in top if action in relevant) / len(relevant)

    metric.__name__ = f"recall_at_{k}"
    return metric


def reciprocal_rank(
    recommendation: RecommendationList, hidden: frozenset[ActionLabel]
) -> float:
    """``1 / rank`` of the first relevant action (0 when none appears)."""
    relevant = _relevant(hidden)
    for rank, action in enumerate(recommendation.actions(), start=1):
        if action in relevant:
            return 1.0 / rank
    return 0.0


def average_precision(
    recommendation: RecommendationList, hidden: frozenset[ActionLabel]
) -> float:
    """Precision averaged over the ranks of the relevant hits.

    Normalized by ``min(|relevant|, list length)`` so a short list is not
    punished for relevants it could never have held.
    """
    relevant = _relevant(hidden)
    actions = recommendation.actions()
    if not actions:
        return 0.0
    hits = 0
    total = 0.0
    for rank, action in enumerate(actions, start=1):
        if action in relevant:
            hits += 1
            total += hits / rank
    denominator = min(len(relevant), len(actions))
    return total / denominator if denominator else 0.0


def ndcg_at(k: int) -> RankingMetric:
    """Metric factory: binary-relevance NDCG at cutoff ``k``."""
    if k <= 0:
        raise EvaluationError(f"k must be positive, got {k}")

    def metric(
        recommendation: RecommendationList, hidden: frozenset[ActionLabel]
    ) -> float:
        relevant = _relevant(hidden)
        top = recommendation.actions()[:k]
        dcg = sum(
            1.0 / math.log2(rank + 1)
            for rank, action in enumerate(top, start=1)
            if action in relevant
        )
        ideal_hits = min(len(relevant), k)
        ideal = sum(
            1.0 / math.log2(rank + 1) for rank in range(1, ideal_hits + 1)
        )
        return dcg / ideal if ideal else 0.0

    metric.__name__ = f"ndcg_at_{k}"
    return metric


def average_over_users(
    metric: RankingMetric,
    recommendations: Sequence[RecommendationList],
    hidden_sets: Sequence[Iterable[ActionLabel]],
) -> float:
    """Mean of ``metric`` over aligned (list, hidden) pairs.

    Users with an empty hidden set are skipped (no relevance ground truth);
    raises :class:`EvaluationError` when none remains.
    """
    if len(recommendations) != len(hidden_sets):
        raise EvaluationError(
            f"mismatched counts: {len(recommendations)} lists vs "
            f"{len(hidden_sets)} hidden sets"
        )
    values: list[float] = []
    for recommendation, hidden in zip(recommendations, hidden_sets):
        relevant = frozenset(hidden)
        if not relevant:
            continue
        values.append(metric(recommendation, relevant))
    if not values:
        raise EvaluationError("no user with a non-empty hidden set")
    return sum(values) / len(values)
