"""Statistical support for experiment comparisons.

The paper reports point estimates; a reproduction should also say when a
difference between two methods is noise.  This module provides the two
standard tools for per-user paired metrics (TPR, completeness, overlap):

- :func:`bootstrap_ci` — percentile bootstrap confidence interval of a mean;
- :func:`paired_bootstrap_test` — one-sided paired bootstrap: the
  probability that method A's mean per-user score does not exceed method
  B's under resampling of users.  Small values (< 0.05) mean A's advantage
  is stable across the user population.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.exceptions import EvaluationError
from repro.utils.rng import SeedLike, make_rng
from repro.utils.validation import require_positive, require_probability


@dataclass(frozen=True, slots=True)
class ConfidenceInterval:
    """A mean with its percentile-bootstrap interval."""

    mean: float
    lower: float
    upper: float
    confidence: float

    def __str__(self) -> str:
        return (
            f"{self.mean:.4f} "
            f"[{self.lower:.4f}, {self.upper:.4f}] @ {self.confidence:.0%}"
        )


def bootstrap_ci(
    values: Sequence[float],
    confidence: float = 0.95,
    resamples: int = 2000,
    seed: SeedLike = 0,
) -> ConfidenceInterval:
    """Percentile bootstrap CI of the mean of ``values``."""
    if len(values) < 2:
        raise EvaluationError("bootstrap needs at least two values")
    require_probability(confidence, "confidence")
    require_positive(resamples, "resamples")
    rng = make_rng(seed)
    data = np.asarray(values, dtype=np.float64)
    indices = rng.integers(0, len(data), size=(resamples, len(data)))
    means = data[indices].mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    return ConfidenceInterval(
        mean=float(data.mean()),
        lower=float(np.quantile(means, alpha)),
        upper=float(np.quantile(means, 1.0 - alpha)),
        confidence=confidence,
    )


@dataclass(frozen=True, slots=True)
class PairedTestResult:
    """Outcome of a one-sided paired bootstrap comparison."""

    mean_difference: float
    p_value: float
    resamples: int

    def significant(self, alpha: float = 0.05) -> bool:
        """``True`` when A's advantage is stable at level ``alpha``."""
        return self.p_value < alpha


def paired_bootstrap_test(
    scores_a: Sequence[float],
    scores_b: Sequence[float],
    resamples: int = 2000,
    seed: SeedLike = 0,
) -> PairedTestResult:
    """One-sided paired bootstrap: is method A's mean reliably above B's?

    ``scores_a[i]`` and ``scores_b[i]`` must measure the same user.  The
    returned p-value is the fraction of user-resamples where A's mean does
    not exceed B's (with the +1 small-sample correction).
    """
    if len(scores_a) != len(scores_b):
        raise EvaluationError(
            f"paired test needs aligned scores: {len(scores_a)} vs {len(scores_b)}"
        )
    if len(scores_a) < 2:
        raise EvaluationError("paired test needs at least two users")
    require_positive(resamples, "resamples")
    rng = make_rng(seed)
    differences = np.asarray(scores_a, dtype=np.float64) - np.asarray(
        scores_b, dtype=np.float64
    )
    indices = rng.integers(0, len(differences), size=(resamples, len(differences)))
    resampled_means = differences[indices].mean(axis=1)
    failures = int(np.count_nonzero(resampled_means <= 0.0))
    return PairedTestResult(
        mean_difference=float(differences.mean()),
        p_value=(failures + 1) / (resamples + 1),
        resamples=resamples,
    )
