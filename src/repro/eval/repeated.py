"""Repeated-split evaluation: metric stability across protocol seeds.

One 30%-observed split is one random draw; the paper reports single-split
numbers.  :func:`repeated_evaluation` reruns the harness under several
split seeds and reports, per method, the mean of a per-user metric with its
bootstrap confidence interval — the difference between "Breadth beats
CF-KNN" and "Breadth beats CF-KNN *on this shuffle*".
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass

from repro.core.entities import RecommendationList
from repro.core.recommender import PAPER_STRATEGIES
from repro.data.schema import Dataset
from repro.eval.harness import ExperimentHarness
from repro.eval.metrics import true_positive_rate
from repro.eval.protocol import UserSplit
from repro.eval.stats import ConfidenceInterval, bootstrap_ci
from repro.exceptions import EvaluationError

#: A per-user metric: (user split, that user's recommendation list) -> value.
PerUserMetric = Callable[[UserSplit, RecommendationList], float]


def tpr_metric(user: UserSplit, recommendation: RecommendationList) -> float:
    """Per-user true positive rate (the Figure 4 quantity)."""
    return true_positive_rate(recommendation, user.hidden)


@dataclass(frozen=True, slots=True)
class RepeatedResult:
    """A method's metric across splits."""

    method: str
    per_split_means: tuple[float, ...]
    interval: ConfidenceInterval

    @property
    def mean(self) -> float:
        """Grand mean over all users of all splits."""
        return self.interval.mean


def repeated_evaluation(
    dataset: Dataset,
    methods: Sequence[str] = PAPER_STRATEGIES,
    metric: PerUserMetric = tpr_metric,
    seeds: Sequence[int] = (0, 1, 2),
    k: int = 10,
    observed_fraction: float = 0.3,
    max_users: int | None = 100,
    confidence: float = 0.95,
) -> list[RepeatedResult]:
    """Evaluate ``methods`` under several split seeds.

    For every seed a fresh harness is built (fresh split, fresh baseline
    fits); ``metric`` is computed per user and pooled across splits, and the
    pooled values get a percentile-bootstrap CI.  Results are returned in
    ``methods`` order.
    """
    if not seeds:
        raise EvaluationError("seeds must not be empty")
    if not methods:
        raise EvaluationError("methods must not be empty")
    pooled: dict[str, list[float]] = {method: [] for method in methods}
    split_means: dict[str, list[float]] = {method: [] for method in methods}
    for seed in seeds:
        harness = ExperimentHarness(
            dataset,
            k=k,
            observed_fraction=observed_fraction,
            seed=seed,
            max_users=max_users,
        )
        for method in methods:
            if method in PAPER_STRATEGIES:
                lists = harness.run_goal_method(method)
            else:
                lists = harness.run_baseline(method)
            values = [
                metric(user, rec) for user, rec in zip(harness.split, lists)
            ]
            pooled[method].extend(values)
            split_means[method].append(sum(values) / len(values))
    return [
        RepeatedResult(
            method=method,
            per_split_means=tuple(split_means[method]),
            interval=bootstrap_ci(pooled[method], confidence=confidence, seed=0),
        )
        for method in methods
    ]
