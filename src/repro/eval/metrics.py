"""Every metric of the paper's Section 6.1 (experiments C.1.1 - C.2.2).

All functions are pure: they take recommendation lists / activities / a
model and return numbers, so the benchmark drivers stay declarative.  Where
the paper averages a per-user quantity over all users ("AvgAvg", "Avg TPR",
average overlap), a companion ``average_*`` function does the aggregation.
"""

from __future__ import annotations

import math
from collections import Counter, defaultdict
from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass

from repro.core.entities import ActionLabel, GoalLabel, RecommendationList
from repro.core.model import AssociationGoalModel
from repro.exceptions import EvaluationError

SimilarityFunc = Callable[[ActionLabel, ActionLabel], float]


# ---------------------------------------------------------------------------
# C.1.1 / C.2.2 — Result overlapping (Tables 2 and 6)
# ---------------------------------------------------------------------------

def list_overlap(a: RecommendationList, b: RecommendationList) -> float:
    """Fraction of common actions between two lists.

    Normalized by the longer list so a truncated list cannot inflate the
    overlap; two empty lists overlap fully only vacuously (returns 0).
    """
    set_a, set_b = a.action_set(), b.action_set()
    denominator = max(len(set_a), len(set_b))
    if denominator == 0:
        return 0.0
    return len(set_a & set_b) / denominator


def average_list_overlap(
    lists_a: Sequence[RecommendationList], lists_b: Sequence[RecommendationList]
) -> float:
    """Mean pairwise overlap across users (paper Tables 2/6 cell value).

    ``lists_a[i]`` and ``lists_b[i]`` must answer the same user request.
    """
    if len(lists_a) != len(lists_b):
        raise EvaluationError(
            f"mismatched list counts: {len(lists_a)} vs {len(lists_b)}"
        )
    if not lists_a:
        raise EvaluationError("cannot average over zero users")
    return sum(
        list_overlap(a, b) for a, b in zip(lists_a, lists_b)
    ) / len(lists_a)


# ---------------------------------------------------------------------------
# C.1.2 — Popularity correlation (Table 3)
# ---------------------------------------------------------------------------

def pearson(x: Sequence[float], y: Sequence[float]) -> float:
    """Pearson correlation coefficient; 0 when either side is constant."""
    if len(x) != len(y):
        raise EvaluationError(f"length mismatch: {len(x)} vs {len(y)}")
    n = len(x)
    if n < 2:
        raise EvaluationError("pearson needs at least two points")
    mean_x = sum(x) / n
    mean_y = sum(y) / n
    cov = sum((a - mean_x) * (b - mean_y) for a, b in zip(x, y))
    var_x = sum((a - mean_x) ** 2 for a in x)
    var_y = sum((b - mean_y) ** 2 for b in y)
    if var_x == 0.0 or var_y == 0.0:
        return 0.0
    return cov / math.sqrt(var_x * var_y)


def popularity_correlation(
    activities: Sequence[Iterable[ActionLabel]],
    recommendation_lists: Sequence[RecommendationList],
    top_n: int = 20,
) -> float:
    """Paper Table 3: correlation between activity and recommendation counts.

    Takes the ``top_n`` most popular actions across the user activities and
    correlates, per action, its number of appearances in activities with its
    number of appearances in the recommendation lists.  Collaborative
    methods recycle popular actions (strongly positive); goal-based methods
    do not (near zero or negative).
    """
    activity_counts: Counter[ActionLabel] = Counter()
    for activity in activities:
        activity_counts.update(set(activity))
    if len(activity_counts) < 2:
        raise EvaluationError("need at least two distinct actions in activities")
    # Deterministic top-N: count desc, then label.
    popular = sorted(
        activity_counts.items(), key=lambda item: (-item[1], str(item[0]))
    )[:top_n]
    recommendation_counts: Counter[ActionLabel] = Counter()
    for rec_list in recommendation_lists:
        recommendation_counts.update(rec_list.action_set())
    x = [float(count) for _, count in popular]
    y = [float(recommendation_counts.get(action, 0)) for action, _ in popular]
    return pearson(x, y)


# ---------------------------------------------------------------------------
# C.1.3 — Usefulness: goal completeness after following the list
#          (Table 4 / Figure 3)
# ---------------------------------------------------------------------------

@dataclass(frozen=True, slots=True)
class CompletenessSummary:
    """Per-list completeness statistics over the goals considered."""

    average: float
    minimum: float
    maximum: float


def goal_completeness_after(
    model: AssociationGoalModel,
    observed: Iterable[ActionLabel],
    recommended: RecommendationList,
    goals: Iterable[GoalLabel] | None = None,
) -> CompletenessSummary:
    """Completeness of the user's goals after performing the recommendations.

    The augmented activity is ``observed ∪ recommended``; each goal's
    completeness is that of its most complete implementation (Equation 3).
    ``goals`` defaults to the whole goal space of the *observed* activity —
    the paper's choice for the grocery dataset; the 43Things experiment
    passes the user's true goals instead.
    """
    augmented = model.encode_activity(
        set(observed) | recommended.action_set()
    )
    observed_encoded = model.encode_activity(observed)
    if goals is None:
        goal_ids = sorted(model.goal_space(observed_encoded))
    else:
        goal_ids = sorted(
            model.goal_id(goal) for goal in goals if model.has_goal(goal)
        )
    if not goal_ids:
        return CompletenessSummary(average=0.0, minimum=0.0, maximum=0.0)
    values = [model.goal_completeness(gid, augmented) for gid in goal_ids]
    return CompletenessSummary(
        average=sum(values) / len(values),
        minimum=min(values),
        maximum=max(values),
    )


@dataclass(frozen=True, slots=True)
class UsefulnessSummary:
    """Paper Table 4 row: averages of per-list avg/min/max completeness."""

    avg_avg: float
    min_avg: float
    max_avg: float


def usefulness_summary(
    summaries: Sequence[CompletenessSummary],
) -> UsefulnessSummary:
    """Aggregate per-user completeness summaries into one table row."""
    if not summaries:
        raise EvaluationError("cannot summarize zero users")
    n = len(summaries)
    return UsefulnessSummary(
        avg_avg=sum(s.average for s in summaries) / n,
        min_avg=sum(s.minimum for s in summaries) / n,
        max_avg=sum(s.maximum for s in summaries) / n,
    )


# ---------------------------------------------------------------------------
# C.1.4 — Pairwise similarity inside a list (Table 5)
# ---------------------------------------------------------------------------

@dataclass(frozen=True, slots=True)
class SimilaritySummary:
    """Avg/max/min pairwise similarity of the actions within one list."""

    average: float
    maximum: float
    minimum: float


def pairwise_similarity(
    recommendation: RecommendationList, similarity: SimilarityFunc
) -> SimilaritySummary | None:
    """Pairwise-similarity statistics of one list.

    Returns ``None`` for lists with fewer than two actions (no pairs).
    """
    actions = recommendation.actions()
    if len(actions) < 2:
        return None
    values = [
        similarity(actions[i], actions[j])
        for i in range(len(actions))
        for j in range(i + 1, len(actions))
    ]
    return SimilaritySummary(
        average=sum(values) / len(values),
        maximum=max(values),
        minimum=min(values),
    )


def average_pairwise_similarity(
    recommendations: Sequence[RecommendationList], similarity: SimilarityFunc
) -> SimilaritySummary:
    """Paper Table 5 row: AvgAvg / AvgMax / AvgMin over all users' lists."""
    summaries = [
        summary
        for summary in (
            pairwise_similarity(rec, similarity) for rec in recommendations
        )
        if summary is not None
    ]
    if not summaries:
        raise EvaluationError("no list with at least two actions")
    n = len(summaries)
    return SimilaritySummary(
        average=sum(s.average for s in summaries) / n,
        maximum=sum(s.maximum for s in summaries) / n,
        minimum=sum(s.minimum for s in summaries) / n,
    )


# ---------------------------------------------------------------------------
# C.1.5 — Average true positive rate (Figure 4)
# ---------------------------------------------------------------------------

def true_positive_rate(
    recommendation: RecommendationList, hidden: Iterable[ActionLabel]
) -> float:
    """Fraction of recommended actions the user had actually performed.

    The paper is explicit this is *not* precision (the user never saw the
    list); it measures how many recommendations fall inside the hidden 70%
    of the activity.  Empty lists score 0.
    """
    recommended = recommendation.action_set()
    if not recommended:
        return 0.0
    return len(recommended & frozenset(hidden)) / len(recommended)


def average_true_positive_rate(
    recommendations: Sequence[RecommendationList],
    hidden_sets: Sequence[Iterable[ActionLabel]],
) -> float:
    """Figure 4's Avg TPR over users."""
    if len(recommendations) != len(hidden_sets):
        raise EvaluationError(
            f"mismatched counts: {len(recommendations)} lists vs "
            f"{len(hidden_sets)} hidden sets"
        )
    if not recommendations:
        raise EvaluationError("cannot average over zero users")
    return sum(
        true_positive_rate(rec, hidden)
        for rec, hidden in zip(recommendations, hidden_sets)
    ) / len(recommendations)


# ---------------------------------------------------------------------------
# C.2.1 — Frequency of retrieved actions (Figures 5 and 6)
# ---------------------------------------------------------------------------

def recommendation_frequencies(
    recommendations: Sequence[RecommendationList],
) -> dict[ActionLabel, float]:
    """Per-action frequency across recommendation lists (Figure 5).

    ``frequency(a) = (#lists containing a) / (#lists)``; actions never
    recommended are absent from the result.
    """
    if not recommendations:
        raise EvaluationError("no recommendation lists")
    counts: dict[ActionLabel, int] = defaultdict(int)
    for rec in recommendations:
        for action in rec.action_set():
            counts[action] += 1
    total = len(recommendations)
    return {action: count / total for action, count in counts.items()}


def library_frequencies(
    model: AssociationGoalModel,
    recommendations: Sequence[RecommendationList],
) -> dict[ActionLabel, float]:
    """Implementation-set frequency of every *recommended* action (Figure 6).

    For each action that appears in at least one recommendation list,
    returns its frequency in the library:
    ``|implementations containing a| / |L|``.
    """
    recommended: set[ActionLabel] = set()
    for rec in recommendations:
        recommended |= rec.action_set()
    frequencies = model.action_frequencies()
    return {
        action: frequencies[model.action_id(action)]
        for action in recommended
        if model.has_action(action)
    }


def frequency_histogram(
    frequencies: dict[ActionLabel, float],
    bin_edges: Sequence[float] = (0.2, 0.4, 0.6, 0.8, 1.0),
) -> list[tuple[float, float]]:
    """Histogram of a frequency map as ``(upper_edge, fraction)`` pairs.

    Bins are ``(previous_edge, edge]`` with the first bin starting at 0
    inclusive; fractions sum to 1 over all actions in the map.
    """
    if not frequencies:
        raise EvaluationError("empty frequency map")
    edges = sorted(bin_edges)
    counts = [0] * len(edges)
    for value in frequencies.values():
        for index, edge in enumerate(edges):
            if value <= edge:
                counts[index] += 1
                break
        else:
            counts[-1] += 1
    total = len(frequencies)
    return [
        (edge, count / total) for edge, count in zip(edges, counts)
    ]
