"""Beyond-accuracy metrics: diversity, novelty, coverage, concentration.

The paper's introduction positions goal-based recommendation against the
serendipity/novelty/diversity line of work ("these solutions are not
principled and are not driven by some specific, user-selected, well-defined
target").  These metrics quantify that comparison:

- :func:`intra_list_distance` — 1 − mean pairwise similarity inside a list
  (the diversity counterpart of Table 5's similarity);
- :func:`novelty` — mean self-information ``−log2 p(a)`` of the recommended
  actions under their training-corpus popularity: recommending rare actions
  scores high;
- :func:`catalog_coverage` — fraction of the recommendable catalogue that
  appears in at least one list: do the methods explore the long tail?
- :func:`gini_concentration` — Gini coefficient of how recommendations
  concentrate on few actions (0 = perfectly spread, 1 = one action
  monopolizes every list; the paper's C.2.1 "monopolization" concern).
"""

from __future__ import annotations

import math
from collections import Counter
from collections.abc import Iterable, Sequence

from repro.core.entities import ActionLabel, RecommendationList
from repro.eval.metrics import SimilarityFunc, pairwise_similarity
from repro.exceptions import EvaluationError


def intra_list_distance(
    recommendation: RecommendationList, similarity: SimilarityFunc
) -> float | None:
    """Diversity of one list: ``1 − mean pairwise similarity``.

    Returns ``None`` for lists with fewer than two actions.
    """
    summary = pairwise_similarity(recommendation, similarity)
    if summary is None:
        return None
    return 1.0 - summary.average


def average_intra_list_distance(
    recommendations: Sequence[RecommendationList], similarity: SimilarityFunc
) -> float:
    """Mean diversity over all lists with at least one pair."""
    values = [
        value
        for value in (
            intra_list_distance(rec, similarity) for rec in recommendations
        )
        if value is not None
    ]
    if not values:
        raise EvaluationError("no list with at least two actions")
    return sum(values) / len(values)


def novelty(
    recommendations: Sequence[RecommendationList],
    activities: Sequence[Iterable[ActionLabel]],
) -> float:
    """Mean self-information of recommended actions under activity popularity.

    ``p(a)`` is the fraction of training activities containing ``a``;
    actions never seen in any activity take the minimum observable
    probability (they are maximally novel, not infinitely so, keeping the
    average finite).
    """
    if not recommendations:
        raise EvaluationError("no recommendation lists")
    if not activities:
        raise EvaluationError("no activities")
    counts: Counter[ActionLabel] = Counter()
    for activity in activities:
        counts.update(set(activity))
    total = len(activities)
    floor = 1.0 / (total + 1)
    information: list[float] = []
    for rec in recommendations:
        for action in rec.action_set():
            probability = counts.get(action, 0) / total
            information.append(-math.log2(max(probability, floor)))
    if not information:
        raise EvaluationError("every recommendation list is empty")
    return sum(information) / len(information)


def catalog_coverage(
    recommendations: Sequence[RecommendationList], catalog_size: int
) -> float:
    """Fraction of the catalogue recommended to at least one user."""
    if catalog_size <= 0:
        raise EvaluationError(f"catalog_size must be positive, got {catalog_size}")
    recommended: set[ActionLabel] = set()
    for rec in recommendations:
        recommended |= rec.action_set()
    return len(recommended) / catalog_size


def gini_concentration(
    recommendations: Sequence[RecommendationList],
) -> float:
    """Gini coefficient of recommendation counts over recommended actions.

    0 when every recommended action appears equally often; approaches 1
    when few actions monopolize the lists.  Actions never recommended do
    not contribute (use :func:`catalog_coverage` for that aspect).
    """
    counts: Counter[ActionLabel] = Counter()
    for rec in recommendations:
        counts.update(rec.action_set())
    if not counts:
        raise EvaluationError("every recommendation list is empty")
    values = sorted(counts.values())
    n = len(values)
    if n == 1:
        return 0.0
    cumulative = 0.0
    for rank, value in enumerate(values, start=1):
        cumulative += (2 * rank - n - 1) * value
    return cumulative / (n * sum(values))
