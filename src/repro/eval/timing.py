"""The Figure 7 scalability study.

The paper times the four strategies while growing the implementation set and
observes that (a) all strategies scale to millions of implementations,
(b) execution time is driven by *connectivity* more than raw size, and
(c) Breadth is the fastest mechanism while ``Focus_cmp`` is the slowest of
the Focus pair (intersection costs more than asymmetric difference in their
implementation).

:func:`run_scaling_study` regenerates that experiment: for each library
scale it generates a grocery-style dataset, runs every strategy over a
sample of activities and reports mean per-request latency plus the measured
connectivity, yielding the rows behind both Figure 7 panels.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.model import AssociationGoalModel
from repro.core.recommender import GoalRecommender, PAPER_STRATEGIES
from repro.data.synthetic.foodmart import FoodMartConfig, generate_foodmart
from repro.utils.rng import SeedLike
from repro.utils.timing import Stopwatch


@dataclass(frozen=True, slots=True)
class ScalePoint:
    """One library scale of the study."""

    label: str
    num_products: int
    num_recipes: int
    num_carts: int


#: Default sweep: library size grows ~4x per point at similar density, so
#: connectivity grows with it — reproducing the paper's observation that the
#: larger (denser) set costs more per request.
DEFAULT_SCALES = (
    ScalePoint("S", num_products=120, num_recipes=400, num_carts=60),
    ScalePoint("M", num_products=240, num_recipes=1600, num_carts=60),
    ScalePoint("L", num_products=480, num_recipes=6400, num_carts=60),
)


@dataclass(frozen=True, slots=True)
class TimingRow:
    """Mean per-request latency of one strategy at one scale."""

    scale: str
    num_implementations: int
    connectivity: float
    strategy: str
    mean_seconds: float
    requests: int


def run_scaling_study(
    scales: tuple[ScalePoint, ...] = DEFAULT_SCALES,
    strategies: tuple[str, ...] = PAPER_STRATEGIES,
    k: int = 10,
    seed: SeedLike = 7,
) -> list[TimingRow]:
    """Time every strategy at every scale; returns one row per pair."""
    rows: list[TimingRow] = []
    for scale in scales:
        config = FoodMartConfig(
            num_products=scale.num_products,
            num_categories=max(8, scale.num_products // 10),
            num_recipes=scale.num_recipes,
            num_carts=scale.num_carts,
        )
        dataset = generate_foodmart(config, seed=seed)
        model = AssociationGoalModel.from_library(dataset.library)
        recommender = GoalRecommender(model)
        activities = [user.full_activity for user in dataset.users]
        watch = Stopwatch()
        for strategy in strategies:
            for activity in activities:
                with watch.measure(strategy):
                    recommender.recommend(activity, k=k, strategy=strategy)
        connectivity = model.connectivity()
        for strategy in strategies:
            summary = watch.summary(strategy)
            rows.append(
                TimingRow(
                    scale=scale.label,
                    num_implementations=model.num_implementations,
                    connectivity=connectivity,
                    strategy=strategy,
                    mean_seconds=summary.mean,
                    requests=summary.count,
                )
            )
    return rows
