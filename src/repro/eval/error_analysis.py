"""Error analysis: where does a method win or lose?

Aggregate numbers (Tables 2-6) say *whether* a method wins; error analysis
says *for whom*.  :func:`bucketed_metric` slices a per-user metric by a
user property — observed activity size, goal count, or the activity's
implementation-space size (its effective connectivity) — and reports the
metric per bucket, exposing patterns like "Focus wins single-goal users,
Breadth wins multi-goal users" that the aggregates average away.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Callable, Sequence
from dataclasses import dataclass

from repro.core.entities import RecommendationList
from repro.core.model import AssociationGoalModel
from repro.eval.protocol import UserSplit
from repro.exceptions import EvaluationError

#: A per-user metric, as in :mod:`repro.eval.repeated`.
PerUserMetric = Callable[[UserSplit, RecommendationList], float]
#: Maps one user to the bucketing key value.
UserProperty = Callable[[UserSplit], float]


def observed_size(user: UserSplit) -> float:
    """Bucket key: number of observed actions."""
    return float(len(user.observed))


def goal_count(user: UserSplit) -> float:
    """Bucket key: number of true goals (0 when the dataset has none)."""
    return float(len(user.user.goals))


def make_implementation_space_size(
    model: AssociationGoalModel,
) -> UserProperty:
    """Bucket key factory: size of ``IS(observed)`` — local connectivity."""

    def property_fn(user: UserSplit) -> float:
        encoded = model.encode_activity(user.observed)
        return float(len(model.implementation_space(encoded)))

    return property_fn


@dataclass(frozen=True, slots=True)
class Bucket:
    """One slice of the analysis."""

    lower: float
    upper: float  # inclusive
    num_users: int
    mean_metric: float

    def label(self) -> str:
        """Human-readable range label."""
        if self.lower == self.upper:
            return f"{self.lower:g}"
        return f"{self.lower:g}-{self.upper:g}"


def bucketed_metric(
    users: Sequence[UserSplit],
    lists: Sequence[RecommendationList],
    metric: PerUserMetric,
    property_fn: UserProperty,
    bin_edges: Sequence[float],
) -> list[Bucket]:
    """Slice ``metric`` by ``property_fn`` over the given edges.

    Buckets are ``(previous_edge, edge]`` with the first bucket open below;
    values above the last edge land in the last bucket.  Empty buckets are
    omitted.  ``users`` and ``lists`` must be aligned per index.
    """
    if len(users) != len(lists):
        raise EvaluationError(
            f"mismatched inputs: {len(users)} users vs {len(lists)} lists"
        )
    if not users:
        raise EvaluationError("no users to analyse")
    edges = sorted(bin_edges)
    if not edges:
        raise EvaluationError("bin_edges must not be empty")
    grouped: dict[int, list[float]] = defaultdict(list)
    for user, rec in zip(users, lists):
        value = property_fn(user)
        index = len(edges) - 1
        for position, edge in enumerate(edges):
            if value <= edge:
                index = position
                break
        grouped[index].append(metric(user, rec))
    buckets: list[Bucket] = []
    previous = float("-inf")
    for position, edge in enumerate(edges):
        values = grouped.get(position)
        if values:
            buckets.append(
                Bucket(
                    lower=previous if previous != float("-inf") else 0.0,
                    upper=edge,
                    num_users=len(values),
                    mean_metric=sum(values) / len(values),
                )
            )
        previous = edge
    return buckets


def compare_methods_bucketed(
    users: Sequence[UserSplit],
    method_lists: dict[str, Sequence[RecommendationList]],
    metric: PerUserMetric,
    property_fn: UserProperty,
    bin_edges: Sequence[float],
) -> list[list[object]]:
    """Table rows: one row per bucket, one column per method.

    Row format: ``[bucket_label, num_users, metric_method1, ...]`` with
    methods in sorted-name order; ready for
    :func:`repro.eval.report.format_table`.
    """
    if not method_lists:
        raise EvaluationError("no methods to compare")
    methods = sorted(method_lists)
    per_method = {
        name: bucketed_metric(
            users, method_lists[name], metric, property_fn, bin_edges
        )
        for name in methods
    }
    # All methods bucket the same users, so bucket structure is identical.
    reference = per_method[methods[0]]
    rows: list[list[object]] = []
    for index, bucket in enumerate(reference):
        row: list[object] = [bucket.label(), bucket.num_users]
        for name in methods:
            row.append(per_method[name][index].mean_metric)
        rows.append(row)
    return rows
