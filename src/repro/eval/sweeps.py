"""Parameter sweeps over the evaluation protocol.

The paper fixes ``k = 10`` and the 30% observed fraction; a reproduction
should show how sensitive its findings are to those choices.  Two sweeps:

- :func:`sweep_k` — re-rank every method at several list lengths (cheap:
  lists are computed once at the largest ``k`` and truncated);
- :func:`sweep_observed_fraction` — rebuild the split at several observed
  fractions and re-run the methods (expensive; the paper's Table 1 setup
  varies exactly this hidden share).

Both return flat rows ready for :func:`repro.eval.report.format_table`.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.core.recommender import PAPER_STRATEGIES
from repro.data.schema import Dataset
from repro.eval.harness import ExperimentHarness
from repro.eval.metrics import (
    average_true_positive_rate,
    goal_completeness_after,
    usefulness_summary,
)
from repro.exceptions import EvaluationError
from repro.utils.rng import SeedLike


@dataclass(frozen=True, slots=True)
class SweepRow:
    """One (parameter value, method) measurement."""

    parameter: str
    value: float
    method: str
    avg_tpr: float
    avg_completeness: float


def _measure(
    harness: ExperimentHarness, method: str, k: int | None = None
) -> tuple[float, float]:
    """TPR and mean goal completeness of ``method`` under ``harness``."""
    if method in PAPER_STRATEGIES:
        lists = harness.run_goal_method(method)
    else:
        lists = harness.run_baseline(method)
    if k is not None:
        lists = [rec.top(k) for rec in lists]
    tpr = average_true_positive_rate(lists, harness.hidden_sets())
    completeness = usefulness_summary(
        [
            goal_completeness_after(
                harness.model, user.observed, rec,
                goals=user.user.goals or None,
            )
            for user, rec in zip(harness.split, lists)
        ]
    ).avg_avg
    return tpr, completeness


def sweep_k(
    harness: ExperimentHarness,
    k_values: Sequence[int] = (1, 3, 5, 10, 20),
    methods: Sequence[str] = PAPER_STRATEGIES,
) -> list[SweepRow]:
    """Measure every method at several list lengths.

    ``harness.k`` must be at least ``max(k_values)`` so truncation is
    sufficient; raises :class:`EvaluationError` otherwise.
    """
    if not k_values:
        raise EvaluationError("k_values must not be empty")
    if max(k_values) > harness.k:
        raise EvaluationError(
            f"harness computes top-{harness.k}; cannot sweep to "
            f"k={max(k_values)}"
        )
    rows: list[SweepRow] = []
    for k in k_values:
        for method in methods:
            tpr, completeness = _measure(harness, method, k=k)
            rows.append(
                SweepRow(
                    parameter="k",
                    value=float(k),
                    method=method,
                    avg_tpr=tpr,
                    avg_completeness=completeness,
                )
            )
    return rows


def sweep_observed_fraction(
    dataset: Dataset,
    fractions: Sequence[float] = (0.1, 0.3, 0.5, 0.7),
    methods: Sequence[str] = PAPER_STRATEGIES,
    k: int = 10,
    max_users: int | None = 100,
    seed: SeedLike = 0,
) -> list[SweepRow]:
    """Measure every method under several observed/hidden splits.

    Each fraction gets a fresh harness (fresh split, fresh baseline fits)
    with the same seed, so the only varying factor is the evidence share.
    """
    if not fractions:
        raise EvaluationError("fractions must not be empty")
    rows: list[SweepRow] = []
    for fraction in fractions:
        harness = ExperimentHarness(
            dataset,
            k=k,
            observed_fraction=fraction,
            seed=seed,
            max_users=max_users,
        )
        for method in methods:
            tpr, completeness = _measure(harness, method)
            rows.append(
                SweepRow(
                    parameter="observed_fraction",
                    value=fraction,
                    method=method,
                    avg_tpr=tpr,
                    avg_completeness=completeness,
                )
            )
    return rows
