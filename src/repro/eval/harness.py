"""Experiment harness: run every method over one dataset under one split.

The harness reproduces the paper's experimental setup end to end:

1. split every user's activity (30% observed by default);
2. build the association goal model from the dataset's library and run the
   four goal-based strategies on each observed activity;
3. train the baselines on the *observed* corpus (the only world a deployed
   recommender would see) and answer the same requests;
4. hand the per-method list collections to the metric functions.

Results are cached per method name, so the benchmark for, say, Table 2 can
reuse the lists computed for Table 3 within one session.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from time import perf_counter

from repro import obs
from repro.baselines import (
    AssociationRuleRecommender,
    BaselineRecommender,
    CFKnnRecommender,
    CFMatrixFactorizationRecommender,
    ContentBasedRecommender,
    PopularityRecommender,
)
from repro.core.entities import RecommendationList
from repro.core.model import AssociationGoalModel
from repro.core.recommender import GoalRecommender, PAPER_STRATEGIES
from repro.data.schema import Dataset
from repro.eval.protocol import EvaluationSplit, make_split
from repro.exceptions import EvaluationError
from repro.utils.rng import SeedLike

_LOG = obs.get_logger("repro.eval")


class ExperimentResult:
    """Per-method recommendation lists for every user of a split."""

    def __init__(self, split: EvaluationSplit, k: int) -> None:
        self.split = split
        self.k = k
        self._lists: dict[str, list[RecommendationList]] = {}

    def add(self, method: str, lists: list[RecommendationList]) -> None:
        """Record a method's lists (one per split user, in split order)."""
        if len(lists) != len(self.split):
            raise EvaluationError(
                f"{method}: expected {len(self.split)} lists, got {len(lists)}"
            )
        self._lists[method] = lists

    def methods(self) -> list[str]:
        """Names of the methods recorded so far, sorted."""
        return sorted(self._lists)

    def lists(self, method: str) -> list[RecommendationList]:
        """The per-user lists of ``method``.

        Raises :class:`EvaluationError` for unknown methods.
        """
        try:
            return self._lists[method]
        except KeyError:
            raise EvaluationError(
                f"method {method!r} was not run; available: {self.methods()}"
            ) from None

    def __contains__(self, method: str) -> bool:
        return method in self._lists


class ExperimentHarness:
    """Drives all recommenders over one dataset.

    Args:
        dataset: the scenario under evaluation.
        k: recommendation list length (the paper reports top-10, Figure 4
            also top-5).
        observed_fraction: the split's observed share (paper: 0.3).
        seed: split seed — fixed so every method answers identical requests.
        max_users: optional user cap to keep CI benchmarks fast.
    """

    #: Baseline names -> zero-argument-after-harness factories.
    GOAL_METHODS = PAPER_STRATEGIES

    def __init__(
        self,
        dataset: Dataset,
        k: int = 10,
        observed_fraction: float = 0.3,
        seed: SeedLike = 0,
        max_users: int | None = None,
    ) -> None:
        self.dataset = dataset
        self.k = k
        self.split = make_split(
            dataset,
            observed_fraction=observed_fraction,
            seed=seed,
            max_users=max_users,
        )
        self.model = AssociationGoalModel.from_library(dataset.library)
        self.recommender = GoalRecommender(self.model)
        self.result = ExperimentResult(self.split, k)
        self._content: ContentBasedRecommender | None = None

    # ------------------------------------------------------------------
    # Goal-based strategies
    # ------------------------------------------------------------------

    def run_goal_method(self, strategy: str) -> list[RecommendationList]:
        """Run one goal-based strategy over every split user (cached)."""
        if strategy in self.result:
            return self.result.lists(strategy)
        with obs.trace_span(
            "eval.goal_method", method=strategy, users=len(self.split), k=self.k
        ):
            start = perf_counter()
            lists = [
                self.recommender.recommend(
                    user.observed, k=self.k, strategy=strategy
                )
                for user in self.split
            ]
            self._record_method(strategy, perf_counter() - start)
        self.result.add(strategy, lists)
        return lists

    def _record_method(self, method: str, elapsed: float) -> None:
        """Account one full method run (all split users) in metrics/logs."""
        if obs.metrics_enabled():
            obs.get_registry().histogram(
                "repro_eval_method_seconds",
                "Wall-clock time to answer every split user, by method.",
                method=method,
            ).observe(elapsed)
        obs.log_event(
            _LOG, "eval.method", method=method, dataset=self.dataset.name,
            users=len(self.split), k=self.k, seconds=round(elapsed, 4),
        )

    def run_goal_methods(
        self, strategies: Iterable[str] = PAPER_STRATEGIES
    ) -> dict[str, list[RecommendationList]]:
        """Run several goal-based strategies; returns name -> lists."""
        return {name: self.run_goal_method(name) for name in strategies}

    # ------------------------------------------------------------------
    # Baselines
    # ------------------------------------------------------------------

    def make_baseline(self, name: str) -> BaselineRecommender:
        """Construct a baseline by harness-level name.

        ``content`` requires the dataset to carry item features — the paper
        likewise skips the content method on 43Things for lack of accepted
        domain features.
        """
        if name == "cf_knn":
            return CFKnnRecommender()
        if name == "item_knn":
            from repro.baselines.item_knn import ItemKnnRecommender

            return ItemKnnRecommender()
        if name == "cf_mf":
            return CFMatrixFactorizationRecommender()
        if name == "bpr":
            from repro.baselines.bpr import BPRRecommender

            return BPRRecommender()
        if name == "popularity":
            return PopularityRecommender()
        if name == "assoc_rules":
            return AssociationRuleRecommender()
        if name == "content":
            if self.dataset.item_features is None:
                raise EvaluationError(
                    f"dataset {self.dataset.name!r} has no item features; "
                    "the content baseline is not applicable"
                )
            return ContentBasedRecommender(self.dataset.item_features)
        raise EvaluationError(f"unknown baseline {name!r}")

    def baseline_names(self) -> tuple[str, ...]:
        """The baselines applicable to this dataset, paper's first."""
        names = ["cf_knn", "cf_mf"]
        if self.dataset.item_features is not None:
            names.insert(0, "content")
        names.extend(["assoc_rules", "popularity"])
        return tuple(names)

    def run_baseline(self, name: str) -> list[RecommendationList]:
        """Fit one baseline on the observed corpus and answer every request."""
        if name in self.result:
            return self.result.lists(name)
        with obs.trace_span(
            "eval.baseline", method=name, users=len(self.split), k=self.k
        ):
            start = perf_counter()
            baseline = self.make_baseline(name)
            baseline.fit(self.split.observed_activities())
            if name == "content":
                self._content = baseline  # kept for Table 5's similarity metric
            lists = [
                baseline.recommend(user.observed, k=self.k)
                for user in self.split
            ]
            self._record_method(name, perf_counter() - start)
        self.result.add(name, lists)
        return lists

    def run_baselines(
        self, names: Sequence[str] | None = None
    ) -> dict[str, list[RecommendationList]]:
        """Run several baselines; defaults to all applicable ones."""
        names = tuple(names) if names is not None else self.baseline_names()
        return {name: self.run_baseline(name) for name in names}

    # ------------------------------------------------------------------
    # Convenience accessors for the metric drivers
    # ------------------------------------------------------------------

    def content_similarity(self):
        """The fitted content model's item-similarity function (Table 5).

        Runs the content baseline on demand.  Raises
        :class:`EvaluationError` when the dataset has no item features.
        """
        if self._content is None:
            self.run_baseline("content")
        assert self._content is not None
        return self._content.item_similarity

    def observed_activities(self) -> list[frozenset]:
        """Observed activities in split order (popularity-correlation input)."""
        return self.split.observed_activities()

    def hidden_sets(self) -> list[frozenset]:
        """Hidden activity parts in split order (TPR ground truth)."""
        return [user.hidden for user in self.split]

    def user_goals(self) -> list[tuple]:
        """Per-user true goals (empty tuples when the dataset has none)."""
        return [user.user.goals for user in self.split]
