"""Cold-goal evaluation: can a recommender open a path to an unseen goal?

The paper's split hides a *fraction of actions*; this protocol hides an
entire goal's worth.  For each multi-goal user, one of their true goals is
designated *cold*: every action that (among the user's actions) serves only
that goal is hidden, and the recommenders see the rest.  A method "reaches"
the cold goal when its top-k list contains any hidden cold action.

This measures exactly the capability the paper's introduction motivates —
recommending actions *different in nature* from the visible past because
they serve a goal the past only hints at through shared actions — and it is
a regime where similarity-based methods are structurally handicapped.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.core.entities import ActionLabel, GoalLabel, RecommendationList
from repro.core.model import AssociationGoalModel
from repro.data.schema import Dataset
from repro.exceptions import EvaluationError
from repro.utils.rng import SeedLike, make_rng


@dataclass(frozen=True, slots=True)
class ColdGoalCase:
    """One user's cold-goal instance."""

    user_id: str
    visible: frozenset[ActionLabel]
    cold_goal: GoalLabel
    cold_actions: frozenset[ActionLabel]


def build_cold_goal_cases(
    dataset: Dataset,
    model: AssociationGoalModel,
    seed: SeedLike = 0,
    max_users: int | None = None,
) -> list[ColdGoalCase]:
    """Construct cold-goal cases from a dataset with per-user true goals.

    Eligible users pursue at least two goals and have at least one action
    exclusive to the chosen cold goal, with a non-empty visible remainder
    that still *shares* at least one action with the cold goal's
    implementations' sibling goals (otherwise no method could bridge).
    The cold goal is drawn uniformly per user with a seeded generator.
    Raises :class:`EvaluationError` when no user qualifies.
    """
    rng = make_rng(seed)
    cases: list[ColdGoalCase] = []
    for user in dataset.users:
        if len(user.goals) < 2:
            continue
        order = rng.permutation(len(user.goals))
        chosen: ColdGoalCase | None = None
        for index in order:
            goal = user.goals[int(index)]
            if not model.has_goal(goal):
                continue
            gid = model.goal_id(goal)
            goal_actions: set[ActionLabel] = set()
            for pid in model.implementations_of_goal(gid):
                goal_actions |= {
                    model.action_label(aid)
                    for aid in model.implementation_actions(pid)
                }
            cold_actions = frozenset(
                action
                for action in user.full_activity
                if action in goal_actions
                and _serves_only(model, action, gid, user.goals)
            )
            if not cold_actions:
                continue
            visible = user.full_activity - cold_actions
            if not visible:
                continue
            chosen = ColdGoalCase(
                user_id=user.user_id,
                visible=visible,
                cold_goal=goal,
                cold_actions=cold_actions,
            )
            break
        if chosen is not None:
            cases.append(chosen)
            if max_users is not None and len(cases) >= max_users:
                break
    if not cases:
        raise EvaluationError(
            f"dataset {dataset.name!r} has no eligible cold-goal user "
            "(needs multi-goal users with goal-exclusive actions)"
        )
    return cases


def _serves_only(
    model: AssociationGoalModel,
    action: ActionLabel,
    cold_gid: int,
    user_goals: tuple[GoalLabel, ...],
) -> bool:
    """Does ``action`` serve no *other* goal of this user?"""
    other_gids = {
        model.goal_id(goal)
        for goal in user_goals
        if model.has_goal(goal) and model.goal_id(goal) != cold_gid
    }
    for pid in model.implementations_of_action(model.action_id(action)):
        if model.implementation_goal(pid) in other_gids:
            return False
    return True


@dataclass(frozen=True, slots=True)
class ColdGoalResult:
    """Aggregate cold-goal performance of one method."""

    method: str
    reach_rate: float  # fraction of cases with >= 1 cold action in top-k
    mean_recovered: float  # mean fraction of cold actions recovered


def evaluate_cold_goal(
    method: str,
    lists: Sequence[RecommendationList],
    cases: Sequence[ColdGoalCase],
) -> ColdGoalResult:
    """Score one method's lists against the cases (aligned by index)."""
    if len(lists) != len(cases):
        raise EvaluationError(
            f"{method}: {len(lists)} lists vs {len(cases)} cases"
        )
    if not cases:
        raise EvaluationError("no cold-goal cases")
    reached = 0
    recovered = 0.0
    for rec, case in zip(lists, cases):
        hits = rec.action_set() & case.cold_actions
        if hits:
            reached += 1
        recovered += len(hits) / len(case.cold_actions)
    return ColdGoalResult(
        method=method,
        reach_rate=reached / len(cases),
        mean_recovered=recovered / len(cases),
    )
