"""RL001 — lock-discipline for attributes registered in ``_GUARDED_BY``.

A module that owns lock-protected state declares it in a module-level map::

    _GUARDED_BY = {
        "LRUCache._data": "_lock",              # with self._lock: only
        "IncrementalGoalModel._dedup": "<caller>",  # owner's methods only
        "CachedModelView._cache": "<final>",    # assigned in __init__ only
    }

Three guard kinds:

- a **lock attribute name** (``"_lock"``): inside the owning class, every
  read/write of the attribute must sit under ``with self._lock`` (plain
  locks/conditions) or ``with self._lock.read_locked()`` /
  ``.write_locked()`` (the RWLock context managers).  ``__init__`` is
  exempt (the object is not yet shared), as is any method whose name ends
  in ``_locked`` — the repo's caller-holds-the-lock naming convention.
  Nested functions and lambdas defined inside a ``with`` block are treated
  as running *without* the lock: closures outlive the block.
- ``"<caller>"``: the state is externally synchronized (e.g. the
  incremental model's index dicts live under ``ModelManager``'s RWLock).
  Only methods of a class that initializes the attribute in its own
  ``__init__`` may touch it, and only through ``self`` — any reach-in from
  another class, a free function, or module level is a violation, in every
  linted file.
- ``"<final>"``: assigned in ``__init__`` and never rebound.  Reads are
  unrestricted; stores/deletes outside the owner's ``__init__`` (or
  through any receiver other than ``self``) are violations.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Union

from repro.analysis.engine import (
    ModuleInfo,
    Violation,
    init_assigned_attrs,
    iter_classes,
    iter_methods,
    literal_str,
)
from repro.analysis.registry import register_rule

CALLER = "<caller>"
FINAL = "<final>"

_FuncNode = Union[ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda]


@dataclass(frozen=True)
class GuardEntry:
    """One parsed ``_GUARDED_BY`` entry."""

    cls: str
    attr: str
    guard: str
    node: ast.AST  # the key node, for reporting map problems


def _parse_guard_maps(
    module: ModuleInfo, violations: list[Violation]
) -> list[GuardEntry]:
    """Read the module-level ``_GUARDED_BY`` dict(s), validating shape."""
    entries: list[GuardEntry] = []
    for stmt in module.tree.body:
        target: ast.expr | None = None
        value: ast.expr | None = None
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target, value = stmt.targets[0], stmt.value
        elif isinstance(stmt, ast.AnnAssign):
            target, value = stmt.target, stmt.value
        if not (isinstance(target, ast.Name) and target.id == "_GUARDED_BY"):
            continue
        if not isinstance(value, ast.Dict):
            violations.append(
                module.violation(
                    "RL001", stmt, "_GUARDED_BY must be a literal dict"
                )
            )
            continue
        for key_node, value_node in zip(value.keys, value.values):
            key = literal_str(key_node) if key_node is not None else None
            guard = literal_str(value_node)
            if key is None or guard is None:
                violations.append(
                    module.violation(
                        "RL001",
                        key_node or value_node,
                        "_GUARDED_BY entries must be 'Class.attr': 'guard' "
                        "string literals",
                    )
                )
                continue
            if key.count(".") != 1 or not all(key.split(".")):
                violations.append(
                    module.violation(
                        "RL001",
                        key_node,
                        f"_GUARDED_BY key {key!r} must be 'ClassName.attr'",
                    )
                )
                continue
            if not guard:
                violations.append(
                    module.violation(
                        "RL001", value_node, f"empty guard for {key!r}"
                    )
                )
                continue
            cls, attr = key.split(".")
            entries.append(
                GuardEntry(cls=cls, attr=attr, guard=guard, node=key_node)
            )
    return entries


def _is_self_attr(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    )


def _locks_acquired(item: ast.withitem, lock_names: frozenset[str]) -> set[str]:
    """Lock attributes of ``self`` referenced anywhere in a with-item.

    Matches both ``with self._lock:`` and
    ``with self._lock.read_locked():`` — any mention of ``self.<lock>``
    inside the context expression counts as acquiring that lock.
    """
    acquired: set[str] = set()
    for sub in ast.walk(item.context_expr):
        if _is_self_attr(sub) and sub.attr in lock_names:
            acquired.add(sub.attr)
    return acquired


def _check_lock_body(
    module: ModuleInfo,
    cls: ast.ClassDef,
    node: ast.AST,
    held: frozenset[str],
    guarded: dict[str, str],
    lock_names: frozenset[str],
    violations: list[Violation],
) -> None:
    """Recursive walk tracking which locks are held at each node."""
    if isinstance(node, (ast.With, ast.AsyncWith)):
        acquired: set[str] = set()
        for item in node.items:
            # The context expression itself evaluates before acquisition.
            _check_lock_body(
                module, cls, item.context_expr, held, guarded, lock_names,
                violations,
            )
            acquired |= _locks_acquired(item, lock_names)
        inner = held | acquired
        for stmt in node.body:
            _check_lock_body(
                module, cls, stmt, inner, guarded, lock_names, violations
            )
        return
    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
        # A closure may run after the with-block exits: analyze it as
        # holding no locks.
        body = node.body if isinstance(node.body, list) else [node.body]
        for stmt in body:
            _check_lock_body(
                module, cls, stmt, frozenset(), guarded, lock_names, violations
            )
        return
    if _is_self_attr(node) and node.attr in guarded:
        lock = guarded[node.attr]
        if lock not in held:
            violations.append(
                module.violation(
                    "RL001",
                    node,
                    f"{cls.name}.{node.attr} is guarded by self.{lock}; "
                    f"access it inside 'with self.{lock}'",
                )
            )
        return
    for child in ast.iter_child_nodes(node):
        _check_lock_body(
            module, cls, child, held, guarded, lock_names, violations
        )


def _check_lock_guards(
    module: ModuleInfo,
    entries: list[GuardEntry],
    violations: list[Violation],
) -> None:
    """Enforce lock guards inside the owning classes of this module."""
    by_class: dict[str, dict[str, str]] = {}
    for entry in entries:
        if entry.guard in (CALLER, FINAL):
            continue
        by_class.setdefault(entry.cls, {})[entry.attr] = entry.guard
    if not by_class:
        return
    for classdef in iter_classes(module.tree):
        guarded = by_class.get(classdef.name)
        if not guarded:
            continue
        lock_names = frozenset(guarded.values())
        for method in iter_methods(classdef):
            if method.name == "__init__" or method.name.endswith("_locked"):
                continue
            for stmt in method.body:
                _check_lock_body(
                    module, classdef, stmt, frozenset(), guarded, lock_names,
                    violations,
                )


def _walk_with_class(
    node: ast.AST, cls: ast.ClassDef | None = None
) -> list[tuple[ast.AST, ast.ClassDef | None]]:
    """Flatten the tree into (node, innermost enclosing class) pairs."""
    out: list[tuple[ast.AST, ast.ClassDef | None]] = []
    for child in ast.iter_child_nodes(node):
        inner = child if isinstance(child, ast.ClassDef) else cls
        out.append((child, inner))
        out.extend(_walk_with_class(child, inner))
    return out


def _check_external_guards(
    modules: list[ModuleInfo],
    caller_attrs: dict[str, set[str]],
    final_attrs: dict[str, set[str]],
    violations: list[Violation],
) -> None:
    """Enforce ``<caller>`` and ``<final>`` guards across every module.

    Ownership is resolved structurally: a class that assigns the attribute
    on ``self`` in its own ``__init__`` owns its copy (this also keeps
    unrelated classes that happen to reuse an attribute name out of scope).
    """
    watched = set(caller_attrs) | set(final_attrs)
    if not watched:
        return
    for module in modules:
        init_attrs_cache: dict[ast.ClassDef, set[str]] = {}
        for node, cls in _walk_with_class(module.tree):
            if not (isinstance(node, ast.Attribute) and node.attr in watched):
                continue
            attr = node.attr
            receiver_is_self = (
                isinstance(node.value, ast.Name) and node.value.id == "self"
            )
            owns = False
            if cls is not None and receiver_is_self:
                if cls not in init_attrs_cache:
                    init_attrs_cache[cls] = init_assigned_attrs(cls)
                owns = attr in init_attrs_cache[cls]
            declared = caller_attrs.get(attr, set()) | final_attrs.get(
                attr, set()
            )
            if owns and cls is not None and cls.name not in declared:
                # A different class initializing an attribute of the same
                # name owns its own, unrelated copy — out of scope.
                continue
            if attr in caller_attrs and not owns:
                owners = "/".join(sorted(caller_attrs[attr]))
                violations.append(
                    module.violation(
                        "RL001",
                        node,
                        f"{attr} is externally synchronized (<caller>); "
                        f"only methods of its owner ({owners}) may touch it",
                    )
                )
            elif (
                attr in final_attrs
                and isinstance(node.ctx, (ast.Store, ast.Del))
                and not (owns and _inside_init(node, cls))
            ):
                owners = "/".join(sorted(final_attrs[attr]))
                violations.append(
                    module.violation(
                        "RL001",
                        node,
                        f"{owners}.{attr} is <final>; assign it only in "
                        "__init__",
                    )
                )


def _inside_init(node: ast.AST, cls: ast.ClassDef | None) -> bool:
    """Whether ``node`` sits inside ``cls.__init__`` (by containment)."""
    if cls is None:
        return False
    for method in iter_methods(cls):
        if method.name != "__init__":
            continue
        for sub in ast.walk(method):
            if sub is node:
                return True
    return False


@register_rule(
    "RL001",
    "lock-discipline",
    "Attributes registered in a module-level _GUARDED_BY map may only be "
    "accessed under their declared lock (or, for <caller>/<final> guards, "
    "by their owning class / in __init__).",
)
def check_guarded_by(modules: list[ModuleInfo]) -> list[Violation]:
    violations: list[Violation] = []
    caller_attrs: dict[str, set[str]] = {}
    final_attrs: dict[str, set[str]] = {}
    per_module_entries: list[tuple[ModuleInfo, list[GuardEntry]]] = []
    for module in modules:
        entries = _parse_guard_maps(module, violations)
        if entries:
            per_module_entries.append((module, entries))
        for entry in entries:
            if entry.guard == CALLER:
                caller_attrs.setdefault(entry.attr, set()).add(entry.cls)
            elif entry.guard == FINAL:
                final_attrs.setdefault(entry.attr, set()).add(entry.cls)
    for module, entries in per_module_entries:
        _check_lock_guards(module, entries, violations)
    _check_external_guards(modules, caller_attrs, final_attrs, violations)
    return violations
