"""The ``repro-lint`` command line.

Usage::

    repro-lint src/                 # lint a tree; exit 1 on violations
    repro-lint src/repro/service.py tests/fixture.py
    repro-lint --select RL001,RL003 src/
    repro-lint --list-rules
    repro-lint --self-check         # registry/docs consistency, exit 1 on drift

Exit codes: ``0`` clean, ``1`` violations (or failed self-check), ``2``
usage or internal error.  Violations print one per line as
``path:line:col CODE message``, sorted by location, to stdout.
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path

from repro.analysis.engine import (
    ModuleInfo,
    UsageError,
    collect_files,
    load_module,
    run_lint,
)
from repro.analysis.lockorder import set_manifest_path
from repro.analysis.registry import RULES, self_check
from repro.utils.lockmanifest import find_manifest

#: Walk at most this many directories up from the package (or cwd) when
#: looking for the documentation files ``--self-check`` cross-references.
_DOCS_RELATIVE = Path("docs") / "static-analysis.md"
_METRICS_DOCS_RELATIVE = Path("docs") / "observability.md"


def _find_docs(explicit: str | None, relative: Path) -> Path | None:
    if explicit is not None:
        path = Path(explicit)
        return path if path.is_file() else None
    for base in (Path.cwd(), *Path.cwd().parents):
        candidate = base / relative
        if candidate.is_file():
            return candidate
    # Fall back to the repo layout relative to the installed package
    # (src/repro/analysis/cli.py -> repo root).
    candidate = Path(__file__).resolve().parents[3] / relative
    return candidate if candidate.is_file() else None


def _metric_modules() -> list[ModuleInfo]:
    """The parsed ``repro`` package, for the metrics/docs cross-reference.

    Scanning the package next to this file (rather than a caller-supplied
    path) keeps ``--self-check`` argument-free: it validates the shipped
    code against the shipped docs.  Unparseable files are skipped here —
    reporting them is the lint run's job, not the self-check's.
    """
    package_root = Path(__file__).resolve().parents[1]
    modules = []
    for path in collect_files([package_root]):
        loaded = load_module(path)
        if isinstance(loaded, ModuleInfo):
            modules.append(loaded)
    return modules


def _run_self_check(
    docs: str | None, metrics_docs: str | None, locks: str | None, out
) -> int:
    docs_path = _find_docs(docs, _DOCS_RELATIVE)
    docs_text = docs_path.read_text(encoding="utf-8") if docs_path else None
    metrics_docs_path = _find_docs(metrics_docs, _METRICS_DOCS_RELATIVE)
    metrics_docs_text = (
        metrics_docs_path.read_text(encoding="utf-8")
        if metrics_docs_path
        else None
    )
    locks_path = find_manifest(locks)
    locks_text = (
        locks_path.read_text(encoding="utf-8") if locks_path else None
    )
    problems = self_check(
        docs_text,
        metrics_docs_text=metrics_docs_text,
        metric_modules=_metric_modules(),
        locks_text=locks_text,
        locks_required=True,
    )
    if problems:
        for problem in problems:
            print(f"self-check: {problem}", file=out)
        return 1
    print(
        f"self-check: {len(RULES)} rules registered, all documented in "
        f"{docs_path}; metric registrations agree with {metrics_docs_path}; "
        f"lock manifest {locks_path} is a valid DAG",
        file=out,
    )
    return 0


def _list_rules(out) -> int:
    for rule in RULES.values():
        print(f"{rule.code} {rule.name}: {rule.summary}", file=out)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "Repo-specific static analysis: lock discipline (RL001), "
            "strategy purity (RL002), metrics naming (RL003), error "
            "shape (RL004), determinism (RL005), lock-order inversion "
            "(RL006), undeclared lock nesting (RL007)."
        ),
    )
    parser.add_argument(
        "paths", nargs="*", help="files or directories to lint"
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--self-check",
        action="store_true",
        help="verify the rule registry is consistent and documented",
    )
    parser.add_argument(
        "--docs",
        metavar="PATH",
        help="path to static-analysis.md for --self-check "
        "(default: discovered from cwd / package layout)",
    )
    parser.add_argument(
        "--metrics-docs",
        metavar="PATH",
        help="path to observability.md for the --self-check metric-table "
        "cross-reference (default: discovered like --docs)",
    )
    parser.add_argument(
        "--locks",
        metavar="PATH",
        help="path to the locks.toml ordering manifest used by "
        "RL006/RL007 and --self-check (default: discovered from cwd / "
        "package layout)",
    )
    parser.add_argument(
        "--jobs",
        metavar="N",
        type=int,
        default=os.cpu_count(),
        help="parse files on N worker processes (default: cpu count; "
        "output is deterministic regardless)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue"
    )
    return parser


def main(argv: list[str] | None = None, out=None) -> int:
    out = out if out is not None else sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        return _list_rules(out)
    if args.self_check:
        return _run_self_check(args.docs, args.metrics_docs, args.locks, out)
    if not args.paths:
        parser.print_usage(sys.stderr)
        print("repro-lint: error: no paths given", file=sys.stderr)
        return 2
    select = None
    if args.select:
        select = [c.strip() for c in args.select.split(",") if c.strip()]
    if args.locks:
        set_manifest_path(args.locks)
    try:
        result = run_lint(args.paths, select=select, jobs=args.jobs)
    except UsageError as exc:
        print(f"repro-lint: error: {exc}", file=sys.stderr)
        return 2
    if result.violations:
        try:
            print(result.render(), file=out)
        except BrokenPipeError:
            # Downstream closed early (e.g. ``repro-lint src/ | head``).
            # Point stdout at devnull so interpreter shutdown does not
            # trip over the dead pipe, and keep the lint exit status.
            os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
    return result.exit_code


if __name__ == "__main__":  # pragma: no cover - exercised via entry point
    sys.exit(main())
