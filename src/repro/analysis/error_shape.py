"""RL004 — every non-2xx HTTP response carries the ``{error, detail}`` shape.

PR 2 standardized the service's error envelope: clients (and the batch
harness's retry logic) match on ``{"error": <slug>, "detail": <human>}``.
A handler that writes a bare ``self.send_response(500)`` or ships a non-2xx
JSON body without the envelope silently breaks that contract — no test
fails unless that exact path is exercised.

Statically enforced choke points:

- ``self.send_response(...)`` may only be called inside a method named
  ``_send_headers`` — the one place allowed to talk to the raw
  ``BaseHTTPRequestHandler`` API;
- ``self._send_json(status, payload, ...)`` with a literal ``status >=
  300`` must pass a **dict literal** containing both ``"error"`` and
  ``"detail"`` keys (a computed payload can't be verified here, so
  error paths must inline the envelope or go through ``_send_error``);
- ``self._send_headers(status, ...)`` with a literal ``status >= 300``
  may only appear inside ``_send_json`` — bodies for error statuses must
  flow through the JSON envelope path, never through the bare-bytes
  helpers.
"""

from __future__ import annotations

import ast
from typing import Union

from repro.analysis.engine import ModuleInfo, Violation
from repro.analysis.registry import register_rule

_FuncNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


def _self_method_call(node: ast.Call, name: str) -> bool:
    return (
        isinstance(node.func, ast.Attribute)
        and node.func.attr == name
        and isinstance(node.func.value, ast.Name)
        and node.func.value.id == "self"
    )


def _literal_status(node: ast.Call) -> int | None:
    """The first positional argument when it is an int literal."""
    if node.args and isinstance(node.args[0], ast.Constant):
        value = node.args[0].value
        if isinstance(value, int) and not isinstance(value, bool):
            return value
    return None


def _payload_arg(node: ast.Call) -> ast.expr | None:
    if len(node.args) >= 2:
        return node.args[1]
    for kw in node.keywords:
        if kw.arg == "payload":
            return kw.value
    return None


def _has_envelope_keys(payload: ast.expr) -> bool:
    if not isinstance(payload, ast.Dict):
        return False
    keys = {
        key.value
        for key in payload.keys
        if isinstance(key, ast.Constant) and isinstance(key.value, str)
    }
    return {"error", "detail"} <= keys


def _walk_functions(
    node: ast.AST, current: _FuncNode | None = None
) -> list[tuple[ast.Call, _FuncNode | None]]:
    """All calls paired with their innermost enclosing function def."""
    out: list[tuple[ast.Call, _FuncNode | None]] = []
    for child in ast.iter_child_nodes(node):
        inner = (
            child
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
            else current
        )
        if isinstance(child, ast.Call):
            out.append((child, inner))
        out.extend(_walk_functions(child, inner))
    return out


@register_rule(
    "RL004",
    "error-shape",
    "Service handlers emit non-2xx responses only through the "
    '{"error": ..., "detail": ...} JSON envelope: raw send_response is '
    "confined to _send_headers, and _send_json with a literal status >= "
    "300 must pass a dict literal containing both keys.",
)
def check_error_shape(modules: list[ModuleInfo]) -> list[Violation]:
    violations: list[Violation] = []
    for module in modules:
        for call, func in _walk_functions(module.tree):
            func_name = func.name if func is not None else "<module>"
            if _self_method_call(call, "send_response"):
                if func_name != "_send_headers":
                    violations.append(
                        module.violation(
                            "RL004",
                            call,
                            "raw self.send_response() outside _send_headers; "
                            "route responses through _send_json/_send_error",
                        )
                    )
            elif _self_method_call(call, "_send_json"):
                status = _literal_status(call)
                if status is not None and status >= 300:
                    payload = _payload_arg(call)
                    if payload is None or not _has_envelope_keys(payload):
                        violations.append(
                            module.violation(
                                "RL004",
                                call,
                                f"non-2xx _send_json({status}, ...) must "
                                'pass a dict literal with "error" and '
                                '"detail" keys (or use _send_error)',
                            )
                        )
            elif _self_method_call(call, "_send_headers"):
                status = _literal_status(call)
                if (
                    status is not None
                    and status >= 300
                    and func_name != "_send_json"
                ):
                    violations.append(
                        module.violation(
                            "RL004",
                            call,
                            f"_send_headers({status}, ...) outside "
                            "_send_json; error bodies must use the JSON "
                            "envelope",
                        )
                    )
    return violations
