"""Repo-specific static analysis (the ``repro-lint`` tool).

Generic linters check style; this package machine-checks the *semantic*
invariants this codebase's concurrency and caching design depends on —
rules that pytest can only probe and a reviewer can only hope to spot:

- **RL001 lock-discipline** — attributes registered in a module-level
  ``_GUARDED_BY`` map may only be touched under their declared lock
  (or, for externally synchronized state, only by their owning class);
- **RL002 strategy-purity** — ranking strategies stay pure functions of
  ``(model, H)`` after construction, which is what makes every result
  cacheable by ``(generation, strategy, activity, k)``;
- **RL003 metrics-naming** — every metric family name is a literal,
  follows the ``repro_*`` naming convention, and is registered at exactly
  one call site;
- **RL004 error-shape** — HTTP handlers can only emit non-2xx responses
  through the uniform ``{"error": ..., "detail": ...}`` envelope;
- **RL005 nondeterminism** — no wall-clock or unseeded randomness inside
  the scoring paths of :mod:`repro.core`;
- **RL006 lock-order-inversion** — the inter-procedural lock-acquisition
  graph (seeded from ``_GUARDED_BY`` maps and ``with self._lock`` /
  ``acquire()`` patterns, fixpoint over the call graph) must be acyclic;
- **RL007 undeclared-lock-nesting** — acquiring a lock while holding
  another requires the pair to be declared in the ``locks.toml`` ordering
  manifest shared with the runtime lock sanitizer.

See ``docs/static-analysis.md`` for the full rule catalogue, the
``_GUARDED_BY`` registration convention and the pragma syntax
(``# repro-lint: disable=RL001``).

Rule modules self-register on import, so importing this package is enough
to populate :data:`repro.analysis.registry.RULES`.
"""

from repro.analysis.engine import LintResult, ModuleInfo, Violation, run_lint
from repro.analysis.registry import RULES, Rule, register_rule

# Importing the rule modules registers every shipped rule.
from repro.analysis import determinism as _determinism  # noqa: F401
from repro.analysis import error_shape as _error_shape  # noqa: F401
from repro.analysis import guards as _guards  # noqa: F401
from repro.analysis import lockorder as _lockorder  # noqa: F401
from repro.analysis import metrics_names as _metrics_names  # noqa: F401
from repro.analysis import purity as _purity  # noqa: F401

__all__ = [
    "LintResult",
    "ModuleInfo",
    "RULES",
    "Rule",
    "Violation",
    "register_rule",
    "run_lint",
]
