"""RL003 — metric family names: literal, conventional, registered once.

The Prometheus-style registry in :mod:`repro.obs.metrics` creates (or
fetches) a family on every ``registry.counter/gauge/histogram(...)`` call,
so nothing at runtime stops two call sites from registering the same name
with different help text or label sets — the second silently wins — or a
dynamic f-string name from exploding family cardinality.  This rule checks
every registration call site statically:

- the name argument must be a **string literal** (dynamic names defeat
  both this rule and dashboard grep-ability);
- the name must match ``repro_[a-z0-9_]+`` and carry the unit suffix its
  kind implies: counters end in ``_total``; histograms in a unit suffix —
  ``_seconds``/``_bytes`` for physical units, ``_ratio`` (fractions in
  [0, 1]), ``_items`` (set/list cardinalities) or ``_score``
  (dimensionless strategy scores) for unitless distributions; gauges
  carry no accumulation suffix (a gauge is a current level, not an
  accumulated total);
- across the entire linted tree each name is registered at **exactly one**
  call site — shared families must be reached through one helper, not
  re-declared.

Method *definitions* named ``counter``/``gauge``/``histogram`` (the
registry itself) are not call sites and are ignored.
"""

from __future__ import annotations

import ast
import re

from repro.analysis.engine import ModuleInfo, Violation, literal_str
from repro.analysis.registry import register_rule

#: The naming convention from the issue, anchored.
NAME_PATTERN = re.compile(
    r"^repro_[a-z0-9_]+?(_total|_seconds|_bytes|_ratio|_items|_score)?$"
)

_KINDS = ("counter", "gauge", "histogram")
_UNIT_SUFFIXES = ("_total", "_seconds", "_bytes")
_HISTOGRAM_SUFFIXES = ("_seconds", "_bytes", "_ratio", "_items", "_score")


def _registration_calls(
    module: ModuleInfo,
) -> list[tuple[str, ast.Call, ast.expr | None]]:
    """Every ``<obj>.counter/gauge/histogram(...)`` call in the module."""
    calls: list[tuple[str, ast.Call, ast.expr | None]] = []
    for node in ast.walk(module.tree):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _KINDS
        ):
            continue
        name_arg: ast.expr | None = None
        if node.args:
            name_arg = node.args[0]
        else:
            for kw in node.keywords:
                if kw.arg == "name":
                    name_arg = kw.value
                    break
        calls.append((node.func.attr, node, name_arg))
    return calls


def _check_name(kind: str, name: str) -> str | None:
    """Return a problem description for ``name``, or ``None`` if clean."""
    if not NAME_PATTERN.match(name):
        return f"{name!r} does not match repro_[a-z0-9_]+"
    if kind == "counter" and not name.endswith("_total"):
        return f"counter {name!r} must end in _total"
    if kind == "histogram" and not name.endswith(_HISTOGRAM_SUFFIXES):
        return (
            f"histogram {name!r} must end in a unit suffix "
            "(_seconds/_bytes/_ratio/_items/_score)"
        )
    if kind == "gauge" and name.endswith(_UNIT_SUFFIXES):
        return (
            f"gauge {name!r} must not carry an accumulation suffix "
            "(_total/_seconds/_bytes)"
        )
    return None


def registered_metric_names(modules: list[ModuleInfo]) -> set[str]:
    """Every literal ``repro_*`` family name registered in ``modules``."""
    names: set[str] = set()
    for module in modules:
        for _kind, _call, name_arg in _registration_calls(module):
            name = literal_str(name_arg) if name_arg is not None else None
            if name is not None and name.startswith("repro_"):
                names.add(name)
    return names


#: A metric-table row of ``docs/observability.md``: a Markdown table line
#: whose first cell carries at least one backticked ``repro_*`` name.
_DOC_METRIC_NAME = re.compile(r"`(repro_[a-z0-9_]+)")


def documented_metric_names(docs_text: str) -> set[str]:
    """The ``repro_*`` names listed in the docs' metric table.

    Only table rows count (lines starting with ``|``): prose may mention
    the ``repro_`` prefix or metric fragments without declaring a family.
    """
    names: set[str] = set()
    for line in docs_text.splitlines():
        if not line.lstrip().startswith("|"):
            continue
        names.update(_DOC_METRIC_NAME.findall(line))
    return names


def metrics_docs_problems(
    modules: list[ModuleInfo], docs_text: str | None
) -> list[str]:
    """Drift between registered metric families and the documented table.

    Both directions are findings: a family registered in code but missing
    from ``docs/observability.md`` ships an undocumented metric; a table
    row for a name no call site registers documents a ghost.
    """
    if docs_text is None:
        return ["docs/observability.md not found (pass --metrics-docs PATH)"]
    registered = registered_metric_names(modules)
    documented = documented_metric_names(docs_text)
    problems = [
        f"{name}: registered in code but missing from the metric table in "
        "docs/observability.md"
        for name in sorted(registered - documented)
    ]
    problems.extend(
        f"{name}: documented in docs/observability.md but registered "
        "nowhere in the scanned sources"
        for name in sorted(documented - registered)
    )
    return problems


@register_rule(
    "RL003",
    "metrics-naming",
    "Every counter/gauge/histogram registration uses a literal repro_* "
    "name with the unit suffix its kind implies (counters _total; "
    "histograms _seconds/_bytes/_ratio/_items/_score; gauges no "
    "accumulation suffix), and each name is registered at exactly one "
    "call site across the linted tree.",
)
def check_metric_names(modules: list[ModuleInfo]) -> list[Violation]:
    violations: list[Violation] = []
    sites: dict[str, list[tuple[ModuleInfo, ast.Call]]] = {}
    for module in modules:
        for kind, call, name_arg in _registration_calls(module):
            name = literal_str(name_arg) if name_arg is not None else None
            if name is None:
                violations.append(
                    module.violation(
                        "RL003",
                        name_arg if name_arg is not None else call,
                        f"{kind}() name must be a string literal, not a "
                        "computed expression",
                    )
                )
                continue
            problem = _check_name(kind, name)
            if problem is not None:
                violations.append(module.violation("RL003", call, problem))
            sites.setdefault(name, []).append((module, call))
    for name, occurrences in sites.items():
        if len(occurrences) <= 1:
            continue
        first_module, first_call = occurrences[0]
        origin = f"{first_module.path}:{first_call.lineno}"
        for module, call in occurrences[1:]:
            violations.append(
                module.violation(
                    "RL003",
                    call,
                    f"metric {name!r} is already registered at {origin}; "
                    "register each family at exactly one call site",
                )
            )
    return violations
