"""The rule registry behind ``repro-lint``.

Each rule module declares its checks with :func:`register_rule`; the engine
iterates :data:`RULES` in code order.  Registration enforces the structural
invariants that ``repro-lint --self-check`` re-verifies from the outside:
codes are unique, match ``RLnnn``, and carry a human-readable summary (the
self-check additionally cross-references ``docs/static-analysis.md`` so a
rule cannot ship undocumented).
"""

from __future__ import annotations

import re
from collections.abc import Callable, Iterable
from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.analysis.engine import ModuleInfo, Violation

#: Shape every rule code must have (``RL`` + three digits).
CODE_PATTERN = re.compile(r"^RL\d{3}$")

#: Reserved pseudo-code used for files the engine cannot parse.  It is not a
#: registered rule (there is nothing to configure) but it shares the output
#: format and can be suppressed like any other code.
PARSE_ERROR_CODE = "RL000"

CheckFn = Callable[[list["ModuleInfo"]], Iterable["Violation"]]


@dataclass(frozen=True)
class Rule:
    """One registered lint rule.

    ``check`` receives *every* parsed module at once (rules like RL001's
    ``<caller>`` guards and RL003's exactly-once registration are
    cross-file) and yields violations in any order; the engine sorts.
    """

    code: str
    name: str
    summary: str
    check: CheckFn


#: All registered rules, keyed by code, in registration order.
RULES: dict[str, Rule] = {}


def register_rule(code: str, name: str, summary: str) -> Callable[[CheckFn], CheckFn]:
    """Class/function decorator registering ``fn`` as the check for ``code``.

    Raises :class:`ValueError` on a malformed code, a duplicate code, or an
    empty summary — the same conditions ``--self-check`` validates — so a
    bad rule fails at import time, before it can silently not run.
    """

    def decorator(fn: CheckFn) -> CheckFn:
        if not CODE_PATTERN.match(code):
            raise ValueError(f"rule code {code!r} does not match RLnnn")
        if code == PARSE_ERROR_CODE:
            raise ValueError(f"{code} is reserved for parse errors")
        if code in RULES:
            raise ValueError(f"duplicate rule code {code}")
        if not name or not summary.strip():
            raise ValueError(f"rule {code} needs a non-empty name and summary")
        RULES[code] = Rule(code=code, name=name, summary=summary.strip(), check=fn)
        return fn

    return decorator


def self_check(
    docs_text: str | None,
    metrics_docs_text: str | None = None,
    metric_modules: "list[ModuleInfo] | None" = None,
    locks_text: str | None = None,
    locks_required: bool = False,
) -> list[str]:
    """Validate registry consistency; return a list of problem strings.

    ``docs_text`` is the content of ``docs/static-analysis.md`` (or ``None``
    when the caller could not locate it, which is itself a finding): every
    registered code must appear in the documentation so the rule catalogue
    and the docs cannot drift apart.

    When ``metric_modules`` is given (the parsed source tree), the metric
    registrations found in it are additionally cross-referenced against the
    metric table of ``docs/observability.md`` (``metrics_docs_text``) in
    both directions — see
    :func:`repro.analysis.metrics_names.metrics_docs_problems`.

    ``locks_text`` is the content of the ``locks.toml`` ordering manifest
    RL006/RL007 and the runtime lock sanitizer share: it must parse and
    its declared order must be a DAG.  The check runs when text is given
    or when ``locks_required`` is set (the CLI sets it, so a deleted
    manifest is a finding rather than a silent pass).
    """
    problems: list[str] = []
    if not RULES:
        problems.append("no rules registered")
    for code, rule in RULES.items():
        if not CODE_PATTERN.match(code):
            problems.append(f"{code}: code does not match RLnnn")
        if code != rule.code:
            problems.append(f"{code}: registry key disagrees with rule.code {rule.code}")
        if not rule.summary.strip():
            problems.append(f"{code}: empty summary")
        if not rule.name.strip():
            problems.append(f"{code}: empty name")
    if docs_text is None:
        problems.append("docs/static-analysis.md not found (pass --docs PATH)")
    else:
        for code in RULES:
            if code not in docs_text:
                problems.append(f"{code}: not documented in docs/static-analysis.md")
    if metric_modules is not None:
        # Local import: metrics_names registers itself through this module,
        # so the top level would be a cycle.
        from repro.analysis.metrics_names import metrics_docs_problems

        problems.extend(
            metrics_docs_problems(metric_modules, metrics_docs_text)
        )
    if locks_required or locks_text is not None:
        if locks_text is None:
            problems.append("locks.toml not found (pass --locks PATH)")
        else:
            from repro.utils.lockmanifest import ManifestError, parse_manifest

            try:
                manifest = parse_manifest(locks_text)
            except ManifestError as exc:
                problems.append(f"locks.toml: {exc}")
            else:
                cycle = manifest.cycle()
                if cycle is not None:
                    problems.append(
                        "locks.toml: declared order contains a cycle: "
                        + " -> ".join(cycle)
                    )
    return problems
