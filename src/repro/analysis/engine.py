"""File collection, pragma handling and reporting for ``repro-lint``.

The engine parses every target file once into a :class:`ModuleInfo`, hands
the full list to each registered rule (several rules are cross-file), then
filters the collected :class:`Violation` stream through the suppression
pragmas and sorts it into the canonical ``path:line:col CODE message``
order.

Pragma syntax (documented in ``docs/static-analysis.md``)::

    x = self._data          # repro-lint: disable=RL001
    # repro-lint: disable=RL003,RL005   <- standalone: applies to next line

Suppressions are per-line and per-code; there is deliberately no
file-level or blanket ``disable`` — a pragma should be as narrow as the
exception it grants.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.registry import PARSE_ERROR_CODE, RULES

_PRAGMA = re.compile(r"#\s*repro-lint:\s*disable=([A-Z0-9,\s]+)")


class UsageError(Exception):
    """A bad invocation (unknown path, unknown rule code) — CLI exit 2."""


@dataclass(frozen=True, order=True)
class Violation:
    """One finding, ordered by location for stable output."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col} {self.code} {self.message}"


@dataclass
class ModuleInfo:
    """One parsed target file plus the helpers every rule needs."""

    path: Path
    tree: ast.Module
    lines: list[str]
    #: line number -> codes suppressed on that line (pragmas already folded).
    suppressed: dict[int, set[str]] = field(default_factory=dict)

    @property
    def posix(self) -> str:
        return self.path.as_posix()

    def violation(self, code: str, node: ast.AST, message: str) -> Violation:
        """Build a violation at ``node`` (1-based line, 1-based column)."""
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0) + 1
        return Violation(
            path=str(self.path), line=line, col=col, code=code, message=message
        )

    def is_suppressed(self, violation: Violation) -> bool:
        return violation.code in self.suppressed.get(violation.line, set())


def parse_pragmas(lines: Sequence[str]) -> dict[int, set[str]]:
    """Map line numbers to the rule codes suppressed there.

    A trailing pragma suppresses its own line; a standalone pragma comment
    suppresses the next line (so a long statement can carry a pragma
    without blowing the line length).
    """
    suppressed: dict[int, set[str]] = {}
    for lineno, raw in enumerate(lines, start=1):
        match = _PRAGMA.search(raw)
        if not match:
            continue
        codes = {part.strip() for part in match.group(1).split(",") if part.strip()}
        target = lineno + 1 if raw.lstrip().startswith("#") else lineno
        suppressed.setdefault(target, set()).update(codes)
    return suppressed


def collect_files(paths: Iterable[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted, de-duplicated ``.py`` list."""
    seen: set[Path] = set()
    out: list[Path] = []
    for raw in paths:
        root = Path(raw)
        if root.is_dir():
            candidates = sorted(
                p
                for p in root.rglob("*.py")
                if "__pycache__" not in p.parts
                and not any(part.startswith(".") for part in p.parts)
            )
        elif root.is_file():
            candidates = [root]
        else:
            raise UsageError(f"no such file or directory: {root}")
        for path in candidates:
            key = path.resolve()
            if key not in seen:
                seen.add(key)
                out.append(path)
    return out


def load_module(path: Path) -> ModuleInfo | Violation:
    """Parse one file; a syntax/decoding error becomes an RL000 violation."""
    try:
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
    except (SyntaxError, UnicodeDecodeError, OSError) as exc:
        line = getattr(exc, "lineno", None) or 1
        col = (getattr(exc, "offset", None) or 1) or 1
        reason = getattr(exc, "msg", None) or str(exc)
        return Violation(
            path=str(path),
            line=int(line),
            col=int(col),
            code=PARSE_ERROR_CODE,
            message=f"cannot analyze file: {reason}",
        )
    lines = source.splitlines()
    return ModuleInfo(
        path=path, tree=tree, lines=lines, suppressed=parse_pragmas(lines)
    )


@dataclass(frozen=True)
class LintResult:
    """Everything one ``repro-lint`` run produced."""

    files: tuple[str, ...]
    violations: tuple[Violation, ...]

    @property
    def exit_code(self) -> int:
        return 1 if self.violations else 0

    def render(self) -> str:
        return "\n".join(v.render() for v in self.violations)


def _load_modules(
    files: list[Path], jobs: int | None
) -> list[ModuleInfo | Violation]:
    """Parse every file, fanning out to a process pool when asked.

    ``pool.map`` preserves input order, so parallel and serial runs
    produce byte-identical output; the pool only parses (rules are
    cross-file and run in-process on the gathered modules).  Any pool
    failure (no fork on the platform, unpicklable state) degrades to the
    serial path rather than failing the lint.
    """
    if jobs is not None and jobs > 1 and len(files) > 1:
        try:
            from concurrent.futures import ProcessPoolExecutor

            with ProcessPoolExecutor(
                max_workers=min(jobs, len(files))
            ) as pool:
                return list(pool.map(load_module, files, chunksize=4))
        except Exception:  # noqa: BLE001 - any pool failure -> serial
            pass
    return [load_module(path) for path in files]


def run_lint(
    paths: Iterable[str | Path],
    select: Iterable[str] | None = None,
    jobs: int | None = None,
) -> LintResult:
    """Lint ``paths`` with the registered rules (optionally only ``select``).

    ``jobs`` > 1 parses files on a process pool (output is deterministic
    either way).  Raises :class:`UsageError` for unknown paths or unknown
    rule codes.
    """
    rules = list(RULES.values())
    if select is not None:
        wanted = set(select)
        unknown = wanted - set(RULES)
        if unknown:
            raise UsageError(
                "unknown rule code(s): " + ", ".join(sorted(unknown))
            )
        rules = [rule for rule in rules if rule.code in wanted]

    files = collect_files(paths)
    modules: list[ModuleInfo] = []
    findings: list[Violation] = []
    by_path: dict[str, ModuleInfo] = {}
    for loaded in _load_modules(files, jobs):
        if isinstance(loaded, Violation):
            findings.append(loaded)
            continue
        modules.append(loaded)
        by_path[loaded.path.as_posix()] = loaded

    for rule in rules:
        findings.extend(rule.check(modules))

    kept: list[Violation] = []
    for violation in findings:
        module = by_path.get(Path(violation.path).as_posix())
        if module is not None and module.is_suppressed(violation):
            continue
        kept.append(violation)
    return LintResult(
        files=tuple(str(p) for p in files), violations=tuple(sorted(kept))
    )


# ----------------------------------------------------------------------
# Shared AST helpers used by the rule modules
# ----------------------------------------------------------------------


def attr_chain(node: ast.AST) -> list[str] | None:
    """``self._lock.read_locked`` -> ``["self", "_lock", "read_locked"]``.

    Returns ``None`` when the expression is not a pure Name/Attribute
    chain (calls, subscripts, literals... break the chain).
    """
    parts: list[str] = []
    cursor = node
    while isinstance(cursor, ast.Attribute):
        parts.append(cursor.attr)
        cursor = cursor.value
    if isinstance(cursor, ast.Name):
        parts.append(cursor.id)
        parts.reverse()
        return parts
    return None


def chain_root(node: ast.AST) -> str | None:
    """The base :class:`ast.Name` of an attribute/subscript/call chain.

    ``model._impls[pid].actions`` -> ``"model"``; ``f(x).y`` -> ``None``
    (the receiver is a fresh value, not a tracked binding).
    """
    cursor = node
    while True:
        if isinstance(cursor, ast.Attribute | ast.Subscript | ast.Starred):
            cursor = cursor.value
        elif isinstance(cursor, ast.Call):
            cursor = cursor.func
        elif isinstance(cursor, ast.Name):
            return cursor.id
        else:
            return None


def iter_methods(classdef: ast.ClassDef) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    """The function definitions directly in a class body."""
    for stmt in classdef.body:
        if isinstance(stmt, ast.FunctionDef | ast.AsyncFunctionDef):
            yield stmt


def iter_classes(tree: ast.Module) -> Iterator[ast.ClassDef]:
    """Every class definition in the module, including nested ones."""
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            yield node


def init_assigned_attrs(classdef: ast.ClassDef) -> set[str]:
    """Attribute names assigned on ``self`` inside ``__init__``."""
    attrs: set[str] = set()
    for method in iter_methods(classdef):
        if method.name != "__init__":
            continue
        for node in ast.walk(method):
            if (
                isinstance(node, ast.Attribute)
                and isinstance(node.ctx, ast.Store | ast.Del)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"
            ):
                attrs.add(node.attr)
    return attrs


def literal_str(node: ast.AST) -> str | None:
    """The value of a string constant node, else ``None``."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None
