"""RL002 — strategy purity: rankers stay pure functions of ``(model, H)``.

Every result cache in the serving layer (the recommendation LRU, the
memoized ``implementation_space`` view) is only sound because a strategy's
output depends on nothing but the model generation and its inputs.  A
strategy that mutates itself, the model, or — subtly — an index *set the
model handed out by reference* breaks that contract without failing any
unit test.

Inside every class defined under ``repro/core/strategies``, for every
method except ``__init__``:

- assigning to **any** attribute (``self.x = ...``, ``model._index = ...``)
  is a violation — strategies freeze at construction time;
- storing into a subscript whose base is *tainted* (reachable from ``self``
  or a parameter, e.g. ``model._goal_impls[g] = ...``) is a violation;
- calling a mutating method (``add_implementations``, ``setdefault``,
  ``update``, ``add`` ...) on a tainted receiver is a violation.  Taint
  propagates through plain assignment: ``space =
  model.implementation_space(H)`` taints ``space``, so ``space.add(aid)``
  is caught — that set is the model's cached index, not a private copy
  (``space = set(model.implementation_space(H))`` copies, and the
  constructor call breaks the taint chain).

Local accumulators (``scores = {}``, ``heap = []``) stay fully mutable.
"""

from __future__ import annotations

import ast

from repro.analysis.engine import ModuleInfo, Violation, chain_root, iter_methods
from repro.analysis.registry import register_rule

#: Path fragment selecting the modules this rule applies to.
STRATEGY_PATH_FRAGMENT = "repro/core/strategies"

#: Method names that mutate their receiver (model API + container API).
MUTATORS = frozenset(
    {
        "add_implementation",
        "add_implementations",
        "remove_implementation",
        "remove_implementations",
        "setdefault",
        "update",
        "clear",
        "pop",
        "popitem",
        "append",
        "appendleft",
        "extend",
        "insert",
        "add",
        "discard",
        "remove",
        "sort",
        "reverse",
        "move_to_end",
        "popleft",
        "__setitem__",
        "__delitem__",
    }
)


def _method_params(method: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    args = method.args
    names = {a.arg for a in args.posonlyargs + args.args + args.kwonlyargs}
    if args.vararg:
        names.add(args.vararg.arg)
    if args.kwarg:
        names.add(args.kwarg.arg)
    return names


def _tainted_names(method: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    """Names reachable from ``self``/parameters, to a fixpoint.

    Order-insensitive on purpose: a name that *ever* aliases model state is
    treated as tainted for the whole method.  That errs toward flagging —
    the right default for a purity gate — and renaming the local (or
    copying via a constructor call, which breaks the chain) resolves a
    false positive.
    """
    tainted = _method_params(method)
    tainted.add("self")
    changed = True
    while changed:
        changed = False
        for node in ast.walk(method):
            target: ast.expr | None = None
            source: ast.expr | None = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, source = node.targets[0], node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                target, source = node.target, node.value
            elif isinstance(node, ast.NamedExpr):
                target, source = node.target, node.value
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                target, source = node.target, node.iter
            elif isinstance(node, ast.withitem) and node.optional_vars:
                target, source = node.optional_vars, node.context_expr
            elif isinstance(node, ast.comprehension):
                target, source = node.target, node.iter
            if not isinstance(target, ast.Name) or source is None:
                continue
            root = chain_root(source)
            if root in tainted and target.id not in tainted:
                tainted.add(target.id)
                changed = True
    return tainted


def _check_method(
    module: ModuleInfo,
    cls: ast.ClassDef,
    method: ast.FunctionDef | ast.AsyncFunctionDef,
    violations: list[Violation],
) -> None:
    tainted = _tainted_names(method)
    where = f"{cls.name}.{method.name}"
    for node in ast.walk(method):
        if isinstance(node, ast.Attribute) and isinstance(
            node.ctx, (ast.Store, ast.Del)
        ):
            violations.append(
                module.violation(
                    "RL002",
                    node,
                    f"{where} assigns attribute .{node.attr}; strategies "
                    "are immutable after __init__",
                )
            )
        elif isinstance(node, ast.Subscript) and isinstance(
            node.ctx, (ast.Store, ast.Del)
        ):
            root = chain_root(node.value)
            if root in tainted:
                violations.append(
                    module.violation(
                        "RL002",
                        node,
                        f"{where} writes into {root}-reachable state via "
                        "subscript; copy before mutating",
                    )
                )
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in MUTATORS
        ):
            root = chain_root(node.func.value)
            if root in tainted:
                violations.append(
                    module.violation(
                        "RL002",
                        node,
                        f"{where} calls mutating .{node.func.attr}() on "
                        f"{root}-reachable state; strategies must not "
                        "mutate the model or themselves",
                    )
                )


@register_rule(
    "RL002",
    "strategy-purity",
    "Classes under repro/core/strategies must stay pure after __init__: no "
    "attribute assignment, no subscript writes into model-reachable state, "
    "no mutating calls (add_implementations, setdefault, update, ...) on "
    "the model, the view, or state reached through them.",
)
def check_strategy_purity(modules: list[ModuleInfo]) -> list[Violation]:
    violations: list[Violation] = []
    for module in modules:
        if STRATEGY_PATH_FRAGMENT not in module.posix:
            continue
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            for method in iter_methods(node):
                if method.name == "__init__":
                    continue
                _check_method(module, node, method, violations)
    return violations
