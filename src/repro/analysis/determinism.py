"""RL005 — no wall-clock or unseeded randomness in ``repro.core``.

The paper's strategies are deterministic functions of ``(model, H)``, the
parity suite asserts bit-identical results across the reference and
vectorized paths, and the serving cache stores results keyed only by
``(generation, strategy, H, k)``.  A ``time.time()`` or bare ``random``
call inside a scoring path silently breaks all three — results stop being
reproducible and cached entries stop being interchangeable with computed
ones.

Inside every module under ``repro/core``:

- calls to ``time.time``/``time.time_ns``/``time.monotonic`` and
  ``datetime.now``/``utcnow``/``today`` are violations
  (``time.perf_counter`` is explicitly allowed: it measures *duration*
  for metrics and never feeds a score);
- any use of the stdlib ``random`` module — ``import random`` usage or
  names imported from it — is a violation (seed it or inject it:
  ``repro.utils.rng`` exists for exactly this);
- ``numpy.random`` *module-level* calls (``np.random.rand``,
  ``np.random.shuffle``, the legacy global-state API) are violations,
  as is ``np.random.default_rng()`` with **no seed argument**.  Seeded
  construction — ``default_rng(seed)``, ``SeedSequence(...)``,
  ``Generator(...)`` — is allowed, and methods on the resulting generator
  objects are not module-level calls, so they pass.
"""

from __future__ import annotations

import ast

from repro.analysis.engine import ModuleInfo, Violation, attr_chain
from repro.analysis.registry import register_rule

#: Path fragment selecting the modules this rule applies to.
CORE_PATH_FRAGMENT = "repro/core"

_CLOCK_ATTRS = {"time", "time_ns", "monotonic", "monotonic_ns"}
_DATETIME_ATTRS = {"now", "utcnow", "today"}
_SEEDED_NUMPY = {"default_rng", "SeedSequence", "Generator", "PCG64"}


def _imported_names(module: ModuleInfo) -> tuple[set[str], set[str], set[str]]:
    """(names bound to the time module's clocks, random-module names,
    aliases of the numpy module) as they appear in this file."""
    clock_funcs: set[str] = set()
    random_names: set[str] = set()
    numpy_aliases: set[str] = set()
    for node in ast.walk(module.tree):
        if isinstance(node, ast.ImportFrom):
            if node.module == "time":
                for alias in node.names:
                    if alias.name in _CLOCK_ATTRS:
                        clock_funcs.add(alias.asname or alias.name)
            elif node.module == "random":
                for alias in node.names:
                    random_names.add(alias.asname or alias.name)
            elif node.module == "datetime":
                # from datetime import datetime -> datetime.now() calls are
                # caught through the attribute check below.
                pass
        elif isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "random":
                    random_names.add(alias.asname or alias.name)
                elif alias.name in ("numpy", "numpy.random"):
                    numpy_aliases.add((alias.asname or alias.name).split(".")[0])
    return clock_funcs, random_names, numpy_aliases


@register_rule(
    "RL005",
    "nondeterminism",
    "No wall-clock reads (time.time, datetime.now) and no unseeded "
    "randomness (stdlib random, numpy.random module calls, "
    "default_rng() without a seed) inside repro/core scoring paths; "
    "inject clocks and seeded generators instead.",
)
def check_determinism(modules: list[ModuleInfo]) -> list[Violation]:
    violations: list[Violation] = []
    for module in modules:
        if CORE_PATH_FRAGMENT not in module.posix:
            continue
        clock_funcs, random_names, numpy_aliases = _imported_names(module)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = attr_chain(node.func)
            if chain is None:
                continue
            head, tail = chain[0], chain[-1]
            if len(chain) == 1:
                if head in clock_funcs:
                    violations.append(
                        module.violation(
                            "RL005",
                            node,
                            f"wall-clock call {head}(); inject a clock "
                            "(perf_counter is allowed for durations)",
                        )
                    )
                elif head in random_names:
                    violations.append(
                        module.violation(
                            "RL005",
                            node,
                            f"stdlib random call {head}(); use a seeded "
                            "generator from repro.utils.rng",
                        )
                    )
                continue
            dotted = ".".join(chain)
            if head == "time" and tail in _CLOCK_ATTRS:
                violations.append(
                    module.violation(
                        "RL005",
                        node,
                        f"wall-clock call {dotted}(); inject a clock "
                        "(time.perf_counter is allowed for durations)",
                    )
                )
            elif head == "datetime" and tail in _DATETIME_ATTRS:
                violations.append(
                    module.violation(
                        "RL005",
                        node,
                        f"wall-clock call {dotted}(); pass timestamps in "
                        "explicitly",
                    )
                )
            elif head in random_names:
                violations.append(
                    module.violation(
                        "RL005",
                        node,
                        f"stdlib random call {dotted}(); use a seeded "
                        "generator from repro.utils.rng",
                    )
                )
            elif (
                head in numpy_aliases
                and len(chain) >= 3
                and chain[1] == "random"
            ):
                func_name = chain[2]
                if func_name == "default_rng" and not (
                    node.args or node.keywords
                ):
                    violations.append(
                        module.violation(
                            "RL005",
                            node,
                            f"{dotted}() without a seed; pass an explicit "
                            "seed or SeedSequence",
                        )
                    )
                elif func_name not in _SEEDED_NUMPY:
                    violations.append(
                        module.violation(
                            "RL005",
                            node,
                            f"global-state numpy.random call {dotted}(); "
                            "use a seeded Generator instead",
                        )
                    )
    return violations
