"""RL006/RL007 — inter-procedural lock-acquisition ordering.

Deadlocks need two ingredients RL001 cannot see: *nesting* (acquiring a
lock while holding another) and *disagreement about order* (two code paths
nesting the same pair in opposite directions).  This pass builds the
repo's lock-acquisition graph from the AST and checks it against the
committed ordering manifest (``locks.toml`` at the repo root, parsed by
:mod:`repro.utils.lockmanifest`):

- **RL006** (lock-order inversion): the observed graph contains a cycle —
  some interleaving of the participating code paths can deadlock.  Every
  acquisition edge lying on a cycle is reported, with the cycle spelled
  out.  A reentrant acquisition of one non-reentrant site is the
  single-node case of the same hazard and is reported the same way
  (declare the self-edge in the manifest only when the two holds are
  provably distinct instances).
- **RL007** (undeclared nesting): an acquisition edge that is acyclic but
  absent from the manifest's transitive closure.  Nesting is a real
  coupling between subsystems; the manifest makes each one deliberate and
  reviewable, and gives the runtime sanitizer its allowed set.

How the graph is built
----------------------

Known lock *sites* (named ``ClassName.attr``) come from two sources: the
guard values of RL001 ``_GUARDED_BY`` maps, and ``__init__`` assignments
of ``threading.Lock/RLock/Condition``, :class:`repro.utils.concurrency.
RWLock`, or the ``make_lock``/``make_rlock``/``make_condition`` factories
to ``self.<attr>``.

Each function is scanned once with RL001-style held-set tracking: a
``with`` item mentioning ``self.<lock>`` (including
``.read_locked()``/``.write_locked()``) acquires that site for its body,
and a bare ``.acquire()``/``.acquire_read()``/``.acquire_write()`` call
on a lock attribute is an acquisition event (edges only — the static
pass does not guess its extent).  Calls the AST can resolve —
``self.m()``, ``self.attr.m()`` through ``__init__`` attribute types,
module-level ``f()``, and ``ClassName()`` construction — feed a fixpoint
over the call graph (the same shape as RL002's taint propagation), so a
summary of every site a callee may acquire is available at each call.
An acquisition of ``B`` (direct or via a call summary) while holding
``A`` contributes the edge ``A -> B`` at that node.  Nested ``def``s are
scanned as their own functions with an empty held set (closures outlive
the block), and calls *on* a lock attribute other than the acquire
methods (``wait``, ``notify``, the ``*_locked`` context-manager
constructors) are treated as internal to the primitive.

Both rules support the standard ``# repro-lint: disable=RL006`` pragma;
each pragma needs a justification comment like any other.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Union

from repro.analysis.engine import (
    ModuleInfo,
    Violation,
    attr_chain,
    iter_methods,
    literal_str,
)
from repro.analysis.registry import register_rule
from repro.utils.lockmanifest import (
    LockManifest,
    ManifestError,
    find_manifest,
    load_manifest,
)

_FuncNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: Constructors whose result is a lock site when assigned in ``__init__``.
_LOCK_CONSTRUCTORS = frozenset(
    {
        "Lock",
        "RLock",
        "Condition",
        "RWLock",
        "make_lock",
        "make_rlock",
        "make_condition",
    }
)

#: Explicit acquisition methods (edges only; extent is not tracked).
_ACQUIRE_METHODS = frozenset({"acquire", "acquire_read", "acquire_write"})

#: ``_GUARDED_BY`` values that do not name a lock attribute.
_EXTERNAL_GUARDS = frozenset({"<caller>", "<final>"})

_manifest_path: Path | None = None


def set_manifest_path(path: str | Path | None) -> None:
    """Pin the manifest for subsequent runs (the CLI's ``--locks``)."""
    global _manifest_path
    _manifest_path = Path(path) if path is not None else None


def _active_manifest() -> LockManifest:
    """The pinned or discovered manifest; empty when absent/unreadable.

    A malformed manifest is *diagnosed* by ``repro-lint --self-check``;
    here it degrades to the empty manifest, so every nesting shows up as
    RL007 rather than silently passing.
    """
    path = _manifest_path if _manifest_path is not None else find_manifest()
    if path is None or not Path(path).is_file():
        return LockManifest(edges=frozenset())
    try:
        return load_manifest(path)
    except ManifestError:
        return LockManifest(edges=frozenset())


# ----------------------------------------------------------------------
# Collection: classes, functions, lock sites, attribute types
# ----------------------------------------------------------------------


@dataclass
class _FuncEntry:
    """One function to scan, with its innermost enclosing class."""

    module: ModuleInfo
    cls: ast.ClassDef | None
    func: _FuncNode


@dataclass
class _Acquire:
    """Sites acquired at ``node`` while ``held`` were already held."""

    sites: frozenset[str]
    node: ast.AST
    held: frozenset[str]


@dataclass
class _CallSite:
    """A resolved call at ``node`` made while ``held`` were held."""

    callees: tuple[_FuncNode, ...]
    node: ast.AST
    held: frozenset[str]


@dataclass
class _Scan:
    acquisitions: list[_Acquire] = field(default_factory=list)
    calls: list[_CallSite] = field(default_factory=list)


def _guard_map_lock_attrs(module: ModuleInfo) -> dict[str, set[str]]:
    """Class name -> lock attribute names, from ``_GUARDED_BY`` values."""
    out: dict[str, set[str]] = {}
    for stmt in module.tree.body:
        target: ast.expr | None = None
        value: ast.expr | None = None
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target, value = stmt.targets[0], stmt.value
        elif isinstance(stmt, ast.AnnAssign):
            target, value = stmt.target, stmt.value
        if not (isinstance(target, ast.Name) and target.id == "_GUARDED_BY"):
            continue
        if not isinstance(value, ast.Dict):
            continue  # shape problems are RL001's to report
        for key_node, value_node in zip(value.keys, value.values):
            key = literal_str(key_node) if key_node is not None else None
            guard = literal_str(value_node)
            if key is None or guard is None or key.count(".") != 1:
                continue
            if guard in _EXTERNAL_GUARDS or not guard:
                continue
            cls, _attr = key.split(".")
            out.setdefault(cls, set()).add(guard)
    return out


def _callable_tail(node: ast.expr) -> list[str] | None:
    """The Name/Attribute chain of a call's callee, else ``None``."""
    chain = attr_chain(node)
    return chain


def _init_lock_and_types(
    classdef: ast.ClassDef, class_map: dict[str, list[ast.ClassDef]]
) -> tuple[set[str], dict[str, list[ast.ClassDef]]]:
    """Lock attrs and attribute->class types assigned in ``__init__``."""
    lock_attrs: set[str] = set()
    attr_types: dict[str, list[ast.ClassDef]] = {}
    for method in iter_methods(classdef):
        if method.name != "__init__":
            continue
        for node in ast.walk(method):
            if not (isinstance(node, ast.Assign) and len(node.targets) == 1):
                continue
            target = node.targets[0]
            if not (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                continue
            if not isinstance(node.value, ast.Call):
                continue
            chain = _callable_tail(node.value.func)
            if not chain:
                continue
            name = chain[-1]
            if name in _LOCK_CONSTRUCTORS:
                lock_attrs.add(target.attr)
            elif name in class_map:
                attr_types.setdefault(target.attr, []).extend(class_map[name])
    return lock_attrs, attr_types


def _collect_functions(
    module: ModuleInfo,
) -> list[_FuncEntry]:
    """Every function def in the module, with its enclosing class."""
    entries: list[_FuncEntry] = []

    def visit(node: ast.AST, cls: ast.ClassDef | None) -> None:
        for child in ast.iter_child_nodes(node):
            inner = child if isinstance(child, ast.ClassDef) else cls
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                entries.append(_FuncEntry(module=module, cls=cls, func=child))
            visit(child, inner)

    visit(module.tree, None)
    return entries


@dataclass
class _Program:
    """Everything the scanner and fixpoint need, precomputed."""

    entries: list[_FuncEntry]
    #: class name -> class defs (across all modules; same-name merged).
    class_map: dict[str, list[ast.ClassDef]]
    #: per class def: lock attr name -> site name ("Class.attr").
    lock_sites: dict[ast.ClassDef, dict[str, str]]
    #: per class def: attr name -> possible class defs (from __init__).
    attr_types: dict[ast.ClassDef, dict[str, list[ast.ClassDef]]]
    #: per class def: method name -> function node.
    methods: dict[ast.ClassDef, dict[str, _FuncNode]]
    #: per module (by posix path): top-level function name -> node.
    module_funcs: dict[str, dict[str, _FuncNode]]


def _build_program(modules: list[ModuleInfo]) -> _Program:
    class_map: dict[str, list[ast.ClassDef]] = {}
    per_module_classes: dict[str, list[ast.ClassDef]] = {}
    for module in modules:
        classes = [
            node
            for node in ast.walk(module.tree)
            if isinstance(node, ast.ClassDef)
        ]
        per_module_classes[module.posix] = classes
        for classdef in classes:
            class_map.setdefault(classdef.name, []).append(classdef)

    lock_sites: dict[ast.ClassDef, dict[str, str]] = {}
    attr_types: dict[ast.ClassDef, dict[str, list[ast.ClassDef]]] = {}
    methods: dict[ast.ClassDef, dict[str, _FuncNode]] = {}
    entries: list[_FuncEntry] = []
    module_funcs: dict[str, dict[str, _FuncNode]] = {}

    for module in modules:
        guard_locks = _guard_map_lock_attrs(module)
        for classdef in per_module_classes[module.posix]:
            locks, types = _init_lock_and_types(classdef, class_map)
            locks |= guard_locks.get(classdef.name, set())
            lock_sites[classdef] = {
                attr: f"{classdef.name}.{attr}" for attr in locks
            }
            attr_types[classdef] = types
            methods[classdef] = {
                m.name: m for m in iter_methods(classdef)
            }
        entries.extend(_collect_functions(module))
        module_funcs[module.posix] = {
            stmt.name: stmt
            for stmt in module.tree.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        }

    return _Program(
        entries=entries,
        class_map=class_map,
        lock_sites=lock_sites,
        attr_types=attr_types,
        methods=methods,
        module_funcs=module_funcs,
    )


# ----------------------------------------------------------------------
# Per-function scan with held-set tracking
# ----------------------------------------------------------------------


def _sites_in_withitem(
    item: ast.withitem, lock_sites: dict[str, str]
) -> frozenset[str]:
    """Lock sites acquired by one with-item (``self.<lock>`` mentions)."""
    acquired: set[str] = set()
    for sub in ast.walk(item.context_expr):
        if (
            isinstance(sub, ast.Attribute)
            and isinstance(sub.value, ast.Name)
            and sub.value.id == "self"
            and sub.attr in lock_sites
        ):
            acquired.add(lock_sites[sub.attr])
    return frozenset(acquired)


def _resolve_constructor(
    name: str, program: _Program
) -> tuple[_FuncNode, ...]:
    callees: list[_FuncNode] = []
    for classdef in program.class_map.get(name, ()):
        init = program.methods.get(classdef, {}).get("__init__")
        if init is not None:
            callees.append(init)
    return tuple(callees)


def _scan_entry(entry: _FuncEntry, program: _Program) -> _Scan:
    scan = _Scan()
    cls = entry.cls
    lock_sites = program.lock_sites.get(cls, {}) if cls is not None else {}
    attr_types = program.attr_types.get(cls, {}) if cls is not None else {}
    own_methods = program.methods.get(cls, {}) if cls is not None else {}
    funcs = program.module_funcs.get(entry.module.posix, {})

    def handle_call(node: ast.Call, held: frozenset[str]) -> None:
        chain = attr_chain(node.func)
        if chain is None:
            walk(node.func, held)
            return
        callees: tuple[_FuncNode, ...] = ()
        if chain[0] == "self" and len(chain) >= 2 and cls is not None:
            if chain[1] in lock_sites:
                # A call on the lock object itself: acquire() is an
                # acquisition event; everything else (release, wait,
                # notify, the *_locked constructors) is internal to it.
                if len(chain) == 3 and chain[2] in _ACQUIRE_METHODS:
                    scan.acquisitions.append(
                        _Acquire(
                            sites=frozenset({lock_sites[chain[1]]}),
                            node=node,
                            held=held,
                        )
                    )
                return
            if len(chain) == 2:
                target = own_methods.get(chain[1])
                if target is not None:
                    callees = (target,)
            elif len(chain) == 3:
                found: list[_FuncNode] = []
                for other in attr_types.get(chain[1], ()):
                    target = program.methods.get(other, {}).get(chain[2])
                    if target is not None:
                        found.append(target)
                callees = tuple(found)
        elif len(chain) == 1:
            target = funcs.get(chain[0])
            if target is not None:
                callees = (target,)
            else:
                callees = _resolve_constructor(chain[0], program)
        else:
            callees = _resolve_constructor(chain[-1], program)
        if callees:
            scan.calls.append(_CallSite(callees=callees, node=node, held=held))

    def walk(node: ast.AST, held: frozenset[str]) -> None:
        if isinstance(node, (ast.With, ast.AsyncWith)):
            acquired: set[str] = set()
            for item in node.items:
                sites = _sites_in_withitem(item, lock_sites)
                if sites:
                    scan.acquisitions.append(
                        _Acquire(sites=sites, node=item.context_expr, held=held)
                    )
                    acquired |= sites
                else:
                    walk(item.context_expr, held)
            inner = held | frozenset(acquired)
            for stmt in node.body:
                walk(stmt, inner)
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return  # scanned as its own entry, with an empty held set
        if isinstance(node, ast.Lambda):
            return
        if isinstance(node, ast.Call):
            handle_call(node, held)
            for arg in node.args:
                walk(arg, held)
            for keyword in node.keywords:
                walk(keyword.value, held)
            return
        for child in ast.iter_child_nodes(node):
            walk(child, held)

    for stmt in entry.func.body:
        walk(stmt, frozenset())
    return scan


# ----------------------------------------------------------------------
# Fixpoint, edge extraction and classification
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class _EdgeRecord:
    outer: str
    inner: str
    module: ModuleInfo
    node: ast.AST


def _summaries(
    scans: dict[_FuncNode, _Scan],
) -> dict[_FuncNode, frozenset[str]]:
    """Sites each function may acquire, directly or transitively."""
    summary: dict[_FuncNode, set[str]] = {
        func: {site for acq in scan.acquisitions for site in acq.sites}
        for func, scan in scans.items()
    }
    changed = True
    while changed:
        changed = False
        for func, scan in scans.items():
            mine = summary[func]
            for call in scan.calls:
                for callee in call.callees:
                    extra = summary.get(callee, set()) - mine
                    if extra:
                        mine |= extra
                        changed = True
    return {func: frozenset(sites) for func, sites in summary.items()}


def _edge_records(
    entries: list[_FuncEntry],
    scans: dict[_FuncNode, _Scan],
    summaries: dict[_FuncNode, frozenset[str]],
) -> list[_EdgeRecord]:
    records: list[_EdgeRecord] = []
    seen: set[tuple[str, str, str, int, int]] = set()

    def record(outer: str, inner: str, module: ModuleInfo, node: ast.AST) -> None:
        key = (
            outer,
            inner,
            str(module.path),
            getattr(node, "lineno", 1),
            getattr(node, "col_offset", 0),
        )
        if key not in seen:
            seen.add(key)
            records.append(
                _EdgeRecord(outer=outer, inner=inner, module=module, node=node)
            )

    for entry in entries:
        scan = scans[entry.func]
        for acq in scan.acquisitions:
            for outer in acq.held:
                for inner in acq.sites:
                    record(outer, inner, entry.module, acq.node)
        for call in scan.calls:
            if not call.held:
                continue
            reachable: set[str] = set()
            for callee in call.callees:
                reachable |= summaries.get(callee, frozenset())
            for outer in call.held:
                for inner in reachable:
                    record(outer, inner, entry.module, call.node)
    return records


def _strongly_connected(
    nodes: set[str], edges: set[tuple[str, str]]
) -> dict[str, int]:
    """Tarjan's SCC; returns a component id per node."""
    adjacency: dict[str, list[str]] = {node: [] for node in nodes}
    for outer, inner in sorted(edges):
        if outer != inner:
            adjacency[outer].append(inner)
    index: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    component: dict[str, int] = {}
    counter = [0]
    comp_counter = [0]

    def strongconnect(node: str) -> None:
        index[node] = low[node] = counter[0]
        counter[0] += 1
        stack.append(node)
        on_stack.add(node)
        for nxt in adjacency[node]:
            if nxt not in index:
                strongconnect(nxt)
                low[node] = min(low[node], low[nxt])
            elif nxt in on_stack:
                low[node] = min(low[node], index[nxt])
        if low[node] == index[node]:
            while True:
                member = stack.pop()
                on_stack.discard(member)
                component[member] = comp_counter[0]
                if member == node:
                    break
            comp_counter[0] += 1

    for node in sorted(nodes):
        if node not in index:
            strongconnect(node)
    return component


def _cycle_through(
    outer: str, inner: str, edges: set[tuple[str, str]]
) -> list[str]:
    """A cycle ``[outer, inner, ..., outer]`` using the edge, via BFS."""
    if outer == inner:
        return [outer, outer]
    parents: dict[str, str] = {}
    frontier = [inner]
    seen = {inner}
    while frontier:
        nxt_frontier: list[str] = []
        for node in frontier:
            for src, dst in sorted(edges):
                if src != node or dst in seen:
                    continue
                parents[dst] = node
                if dst == outer:
                    path = [outer]
                    cursor = outer
                    while cursor != inner:
                        cursor = parents[cursor]
                        path.append(cursor)
                    path.reverse()
                    return [outer] + path
                seen.add(dst)
                nxt_frontier.append(dst)
        frontier = nxt_frontier
    return [outer, inner, outer]  # unreachable for a true SCC edge


def _classify(
    modules: list[ModuleInfo],
) -> tuple[list[Violation], list[Violation]]:
    program = _build_program(modules)
    scans = {
        entry.func: _scan_entry(entry, program) for entry in program.entries
    }
    summaries = _summaries(scans)
    records = _edge_records(program.entries, scans, summaries)
    if not records:
        return [], []

    manifest = _active_manifest()
    allowed = manifest.allowed()
    declared = manifest.edges

    distinct = {(r.outer, r.inner) for r in records}
    nodes = {site for edge in distinct for site in edge}
    component = _strongly_connected(nodes, distinct)
    comp_sizes: dict[int, int] = {}
    for comp in component.values():
        comp_sizes[comp] = comp_sizes.get(comp, 0) + 1

    def in_cycle(outer: str, inner: str) -> bool:
        if outer == inner:
            return (outer, inner) not in declared
        return (
            component[outer] == component[inner]
            and comp_sizes[component[outer]] > 1
        )

    rl006: list[Violation] = []
    rl007: list[Violation] = []
    for rec in records:
        if in_cycle(rec.outer, rec.inner):
            if rec.outer == rec.inner:
                message = (
                    f"lock-order inversion: {rec.inner} acquired while the "
                    "same thread already holds it (non-reentrant site; "
                    "declare the self-edge in locks.toml only for provably "
                    "distinct instances)"
                )
            else:
                cycle = _cycle_through(rec.outer, rec.inner, distinct)
                message = (
                    f"lock-order inversion: acquiring {rec.inner} while "
                    f"holding {rec.outer} completes the cycle "
                    + " -> ".join(cycle)
                )
            rl006.append(rec.module.violation("RL006", rec.node, message))
        elif (rec.outer, rec.inner) not in allowed:
            rl007.append(
                rec.module.violation(
                    "RL007",
                    rec.node,
                    f"undeclared lock nesting: {rec.inner} acquired while "
                    f"holding {rec.outer}; declare \"{rec.outer}\" -> "
                    f"\"{rec.inner}\" in locks.toml or restructure",
                )
            )
    return rl006, rl007


@register_rule(
    "RL006",
    "lock-order-inversion",
    "The inter-procedural lock-acquisition graph (with-blocks, acquire() "
    "calls and calls made while holding a lock, fixpoint over the call "
    "graph) must be acyclic: a cycle means some interleaving deadlocks.",
)
def check_lock_order_inversions(modules: list[ModuleInfo]) -> list[Violation]:
    return _classify(modules)[0]


@register_rule(
    "RL007",
    "undeclared-lock-nesting",
    "Acquiring a lock while holding another requires the (outer, inner) "
    "pair to be declared in the locks.toml ordering manifest, whose "
    "transitive closure is the allowed set shared with the runtime lock "
    "sanitizer.",
)
def check_undeclared_nesting(modules: list[ModuleInfo]) -> list[Violation]:
    return _classify(modules)[1]
