"""Command-line interface.

Installed as the ``repro`` console script.  Subcommands:

- ``repro generate`` — write a synthetic dataset (JSON) to disk;
- ``repro inspect`` — print the statistics of a dataset or library file;
- ``repro recommend`` — rank actions for an activity against a library;
- ``repro evaluate`` — run the paper's protocol over a dataset and print
  the headline metrics per method;
- ``repro extract`` — extract goal implementations from a plain-text file
  of ``goal<TAB>story`` lines and write a library JSON;
- ``repro metrics`` — dump Prometheus metrics, either from this process's
  registry or scraped from a running service (``--url``);
- ``repro telemetry report`` — summarize the flight-recorder JSONL a
  service wrote under ``--telemetry-dir`` (request latency per endpoint,
  sampled span trees, quality/drift events with request/trace ids);
- ``repro monitor`` — live ops console polling a running service's
  ``/metrics`` + ``/debug/history`` + ``/debug/quality``: RPS and
  latency sparklines, stage p95s, cache hit ratio, shed/deadline
  counts, drift score and SLO burn rates (``--once --json`` for
  scripting).

Global flags: ``--version``; ``--log-level {debug,info,warning,error}``,
``--json-logs`` and ``--log-file`` (size-rotated) configure the
structured logging of :mod:`repro.obs.logs`
(logs go to stderr, tables to stdout, so pipelines stay clean);
``--profile`` wraps the command in a :class:`repro.obs.ProfileSession` and
prints (or with ``--profile-out``, writes) the ``pstats`` report after the
command finishes, so any subcommand can be profiled without code changes.

Every subcommand is a thin shell over the library API — anything the CLI
does can be done programmatically with the same names.
"""

from __future__ import annotations

import argparse
import os
import sys
import threading
from collections.abc import Callable, Sequence
from pathlib import Path
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.service import RecommenderService

from repro import obs
from repro._version import __version__
from repro.core import AssociationGoalModel, GoalRecommender, PAPER_STRATEGIES
from repro.data import (
    FoodMartConfig,
    FortyThreeConfig,
    generate_foodmart,
    generate_fortythree,
    load_dataset,
    save_dataset,
)
from repro.eval import (
    ExperimentHarness,
    average_true_positive_rate,
    format_table,
    goal_completeness_after,
    popularity_correlation,
    usefulness_summary,
)
from repro.exceptions import ReproError
from repro.storage import JsonLibraryStore
from repro.text import GoalStory, extract_implementations

_SCALES = ("tiny", "small", "paper")

_DURATION_UNITS = {"s": 1.0, "m": 60.0, "h": 3600.0}


def _parse_duration(text: str) -> float:
    """Parse ``'900'``, ``'30s'``, ``'15m'`` or ``'1h'`` into seconds.

    Bare numbers are seconds.  Raises :class:`ValueError` on junk, which
    ``argparse`` turns into a usage error when used as a ``type=``.
    """
    raw = text.strip().lower()
    scale = 1.0
    if raw and raw[-1] in _DURATION_UNITS:
        scale = _DURATION_UNITS[raw[-1]]
        raw = raw[:-1]
    try:
        seconds = float(raw) * scale
    except ValueError:
        raise ValueError(
            f"invalid duration {text!r} (expected e.g. '900', '30s', '15m')"
        ) from None
    if seconds < 0:
        raise ValueError(f"duration must be >= 0, got {text!r}")
    return seconds


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Goal/action association recommendations (EDBT 2018).",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    parser.add_argument(
        "--log-level", default="warning",
        choices=("debug", "info", "warning", "error"),
        help="structured-log threshold (logs go to stderr)",
    )
    parser.add_argument(
        "--json-logs", action="store_true",
        help="emit logs as JSON lines instead of text",
    )
    parser.add_argument(
        "--log-file", type=Path, default=None,
        help="also write logs to this file (size-based rotation, "
             "10 MiB x 3 backups)",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="run the command under cProfile and print a pstats report",
    )
    parser.add_argument(
        "--profile-out", type=Path, default=None,
        help="write the --profile report here instead of stderr",
    )
    parser.add_argument(
        "--profile-sort", default="cumulative",
        choices=("cumulative", "tottime", "calls"),
        help="pstats sort order for the --profile report",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser(
        "generate", help="generate a synthetic dataset"
    )
    generate.add_argument(
        "--scenario", choices=("foodmart", "43things"), required=True
    )
    generate.add_argument("--scale", choices=_SCALES, default="tiny")
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--out", type=Path, required=True)

    inspect = commands.add_parser(
        "inspect", help="print statistics of a dataset or library JSON"
    )
    inspect.add_argument("path", type=Path)

    recommend = commands.add_parser(
        "recommend", help="rank actions for an activity"
    )
    recommend.add_argument("--library", type=Path, required=True,
                           help="library JSON (JsonLibraryStore format)")
    recommend.add_argument("--activity", required=True,
                           help="comma-separated performed actions")
    recommend.add_argument(
        "--strategy", choices=PAPER_STRATEGIES, default="breadth"
    )
    recommend.add_argument("-k", type=int, default=10)

    evaluate = commands.add_parser(
        "evaluate", help="run the paper's protocol over a dataset"
    )
    evaluate.add_argument("--dataset", type=Path, required=True)
    evaluate.add_argument("-k", type=int, default=10)
    evaluate.add_argument("--max-users", type=int, default=100)
    evaluate.add_argument("--seed", type=int, default=0)

    extract = commands.add_parser(
        "extract", help="extract a library from goal<TAB>story lines"
    )
    extract.add_argument("--stories", type=Path, required=True)
    extract.add_argument("--out", type=Path, required=True)

    serve = commands.add_parser(
        "serve", help="serve a library over HTTP (repro.service)"
    )
    serve.add_argument("--library", type=Path, required=True)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8080)
    serve.add_argument(
        "--cache-size", type=int, default=1024,
        help="recommendation LRU capacity (0 disables result caching)",
    )
    serve.add_argument(
        "--space-cache-size", type=int, default=4096,
        help="implementation-space memo capacity (0 disables the memo)",
    )
    serve.add_argument(
        "--approx-budget", type=int, default=128,
        help="per-action posting-list cap of the ?tier=approx recommend "
             "path (see docs/performance.md)",
    )
    serve.add_argument(
        "--no-tracing", action="store_true",
        help="disable request span collection (also disables trace detail)",
    )
    serve.add_argument(
        "--no-exemplars", action="store_true",
        help="disable OpenMetrics exemplars on latency histograms",
    )
    serve.add_argument(
        "--no-trace-detail", action="store_true",
        help="skip the per-request space-size span attributes "
             "(cheaper traced requests)",
    )
    serve.add_argument(
        "--slow-threshold", type=float, default=0.1, metavar="SECONDS",
        help="requests slower than this land in GET /debug/slow",
    )
    serve.add_argument(
        "--slow-log-size", type=int, default=32,
        help="how many slow requests /debug/slow retains (slowest kept)",
    )
    serve.add_argument(
        "--max-inflight", type=int, default=64,
        help="work requests executing concurrently before admission "
             "control starts queueing",
    )
    serve.add_argument(
        "--max-queue", type=int, default=128,
        help="requests allowed to wait for an execution slot; beyond "
             "this, requests are shed with 429 + Retry-After",
    )
    serve.add_argument(
        "--queue-timeout", type=float, default=0.5, metavar="SECONDS",
        help="longest a request waits in the admission queue",
    )
    serve.add_argument(
        "--retry-after", type=float, default=1.0, metavar="SECONDS",
        help="Retry-After hint sent with 429/503 responses",
    )
    serve.add_argument(
        "--default-deadline-ms", type=float, default=None,
        help="deadline for requests without an X-Request-Deadline-Ms "
             "header (default: none)",
    )
    serve.add_argument(
        "--drain-timeout", type=float, default=10.0, metavar="SECONDS",
        help="how long SIGTERM/SIGINT waits for in-flight requests "
             "before exiting",
    )
    serve.add_argument(
        "--telemetry-dir", type=Path, default=None,
        help="write the durable flight recorder's rotating JSONL files "
             "here (default: disabled)",
    )
    serve.add_argument(
        "--telemetry-sample-rate", type=float, default=1.0,
        help="fraction of requests whose span trees the flight recorder "
             "keeps (head-based, deterministic per request id)",
    )
    serve.add_argument(
        "--history-interval", type=_parse_duration, default=None,
        metavar="DURATION",
        help="metrics-history snapshot cadence behind GET /debug/history "
             "(e.g. '5s'; default 5s)",
    )
    serve.add_argument(
        "--history-window", type=_parse_duration, default=None,
        metavar="DURATION",
        help="metrics-history retention (e.g. '15m' or '900'; 0 disables "
             "the history layer entirely; default 15m)",
    )
    serve.add_argument(
        "--slo-availability", type=float, default=0.999,
        help="availability objective behind the burn-rate gauge "
             "(fraction of requests that must not fail with 5xx)",
    )
    serve.add_argument(
        "--slo-latency-ms", type=float, default=250.0,
        help="latency objective: requests slower than this are 'slow' "
             "for the latency SLO",
    )
    serve.add_argument(
        "--slo-latency-target", type=float, default=0.99,
        help="fraction of requests that must meet the latency objective",
    )
    serve.add_argument(
        "--quality-window", type=int, default=512,
        help="sliding window (requests) of the catalog-coverage tracker",
    )
    serve.add_argument(
        "--score-threshold", type=float, default=0.05,
        help="top score under which a recommendation counts as "
             "below-threshold in the quality monitor",
    )
    serve.add_argument(
        "--drift-window", type=int, default=256,
        help="sliding window (requests) of the live activity profile "
             "compared against the drift baseline",
    )
    serve.add_argument(
        "--drift-threshold", type=float, default=0.25,
        help="PSI value at which the drift alert raises",
    )
    serve.add_argument(
        "--lock-sanitizer", action="store_true",
        help="build the service's locks as instrumented proxies checking "
             "acquisition order against locks.toml, recording hold/"
             "contention metrics and GET /debug/locks violations "
             "(also enabled by REPRO_LOCK_SANITIZER=1)",
    )
    serve.add_argument(
        "--fault-spec", default=None, metavar="SPEC",
        help="enable deterministic fault injection, e.g. "
             "'seed=7,storage:exception:0.5,model:latency:1.0:25' "
             "(sites: model, cache, storage; kinds: latency, exception, "
             "slow_storage) — testing only",
    )
    serve.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="pre-fork N server processes sharing one port and one "
             "shared-memory copy of the model's numeric state "
             "(see docs/serving.md, 'Multi-worker mode'); 1 keeps the "
             "single-process threaded server",
    )
    serve.add_argument(
        "--worker-restarts", type=int, default=3, metavar="N",
        help="total crashed-worker restarts the pool supervisor allows "
             "before continuing with fewer workers (multi-worker only)",
    )

    goals = commands.add_parser(
        "goals", help="infer the goals an activity points at"
    )
    goals.add_argument("--library", type=Path, required=True)
    goals.add_argument("--activity", required=True,
                       help="comma-separated performed actions")
    goals.add_argument(
        "--scorer", choices=("evidence", "completeness", "coverage"),
        default="coverage",
    )
    goals.add_argument("--top", type=int, default=10)

    metrics = commands.add_parser(
        "metrics", help="dump Prometheus metrics (local registry or --url)"
    )
    metrics.add_argument(
        "--url", default=None,
        help="base URL of a running service to scrape "
             "(e.g. http://127.0.0.1:8080)",
    )

    monitor = commands.add_parser(
        "monitor", help="live ops console for a running service"
    )
    monitor.add_argument(
        "--url", required=True,
        help="base URL of a running service (e.g. http://127.0.0.1:8080)",
    )
    monitor.add_argument(
        "--interval", type=float, default=2.0, metavar="SECONDS",
        help="refresh cadence of the live view",
    )
    monitor.add_argument(
        "--once", action="store_true",
        help="render a single frame and exit (for scripting)",
    )
    monitor.add_argument(
        "--json", action="store_true", dest="as_json",
        help="print the raw snapshot as JSON instead of the rendered frame",
    )
    monitor.add_argument(
        "--window", type=_parse_duration, default=None, metavar="DURATION",
        help="history window to request (e.g. '5m'; default: the server's)",
    )
    monitor.add_argument(
        "--step", type=_parse_duration, default=None, metavar="DURATION",
        help="history grid step (e.g. '10s'; default: the server's "
             "capture interval)",
    )

    telemetry = commands.add_parser(
        "telemetry", help="work with flight-recorder telemetry directories"
    )
    telemetry.add_argument(
        "action", choices=("report",),
        help="'report' summarizes the recorded requests and events",
    )
    telemetry.add_argument(
        "--dir", type=Path, required=True, dest="telemetry_dir",
        help="the --telemetry-dir a service wrote",
    )
    telemetry.add_argument(
        "--limit", type=int, default=10,
        help="how many quality events to print (most recent last)",
    )

    report = commands.add_parser(
        "report", help="regenerate every paper table over two datasets"
    )
    report.add_argument("--grocery", type=Path, required=True,
                        help="grocery-style dataset JSON")
    report.add_argument("--life-goals", type=Path, required=True,
                        help="life-goal-style dataset JSON")
    report.add_argument("-k", type=int, default=10)
    report.add_argument("--max-users", type=int, default=100)
    report.add_argument("--seed", type=int, default=0)
    report.add_argument("--skip-scaling", action="store_true",
                        help="omit the Figure 7 timing study")
    report.add_argument("--out", type=Path, default=None,
                        help="write the report here instead of stdout")

    return parser


# ---------------------------------------------------------------------------
# Subcommand implementations
# ---------------------------------------------------------------------------

def _cmd_generate(args: argparse.Namespace) -> int:
    if args.scenario == "foodmart":
        foodmart_configs = {
            "tiny": FoodMartConfig.tiny,
            "small": FoodMartConfig.small,
            "paper": FoodMartConfig.paper_scale,
        }
        dataset = generate_foodmart(
            foodmart_configs[args.scale](), seed=args.seed
        )
    else:
        fortythree_configs = {
            "tiny": FortyThreeConfig.tiny,
            "small": FortyThreeConfig.small,
            "paper": FortyThreeConfig.paper_scale,
        }
        dataset = generate_fortythree(
            fortythree_configs[args.scale](), seed=args.seed
        )
    path = save_dataset(dataset, args.out)
    print(f"wrote {dataset.summary()} -> {path}")
    return 0


def _cmd_inspect(args: argparse.Namespace) -> int:
    try:
        dataset = load_dataset(args.path)
        print(dataset.summary())
        return 0
    except ReproError:
        pass  # maybe it is a bare library file
    library = JsonLibraryStore(args.path).load()
    print(f"library: {library.stats()}")
    return 0


def _cmd_recommend(args: argparse.Namespace) -> int:
    library = JsonLibraryStore(args.library).load()
    model = AssociationGoalModel.from_library(library)
    recommender = GoalRecommender(model)
    activity = {part.strip() for part in args.activity.split(",") if part.strip()}
    result = recommender.recommend(activity, k=args.k, strategy=args.strategy)
    if not result.items:
        print("no recommendations (activity matches no implementation)")
        return 1
    rows = [[item.action, item.score] for item in result]
    print(format_table(["action", "score"], rows,
                       title=f"{args.strategy} top-{args.k}"))
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    dataset = load_dataset(args.dataset)
    harness = ExperimentHarness(
        dataset, k=args.k, max_users=args.max_users, seed=args.seed
    )
    methods = list(PAPER_STRATEGIES) + list(harness.baseline_names())
    rows = []
    activities = harness.observed_activities()
    hidden = harness.hidden_sets()
    for method in methods:
        if method in PAPER_STRATEGIES:
            lists = harness.run_goal_method(method)
        else:
            lists = harness.run_baseline(method)
        completeness = usefulness_summary(
            [
                goal_completeness_after(
                    harness.model, user.observed, rec,
                    goals=user.user.goals or None,
                )
                for user, rec in zip(harness.split, lists)
            ]
        )
        rows.append(
            [
                method,
                average_true_positive_rate(lists, hidden),
                completeness.avg_avg,
                popularity_correlation(activities, lists),
            ]
        )
    print(
        format_table(
            ["method", "avg_tpr", "completeness", "pop_corr"],
            rows,
            title=f"{dataset.name}: {len(harness.split)} users, top-{args.k}",
        )
    )
    return 0


def _cmd_extract(args: argparse.Namespace) -> int:
    stories: list[GoalStory] = []
    with args.stories.open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.rstrip("\n")
            if not line.strip():
                continue
            goal, separator, text = line.partition("\t")
            if not separator:
                print(
                    f"{args.stories}:{line_number}: expected goal<TAB>story",
                    file=sys.stderr,
                )
                return 1
            stories.append(GoalStory(goal=goal.strip(), text=text.strip()))
    library = extract_implementations(stories)
    if len(library) == 0:
        print("no implementations extracted", file=sys.stderr)
        return 1
    JsonLibraryStore(args.out).save(library)
    print(f"extracted {library.stats()} -> {args.out}")
    return 0


def _cmd_serve(args: argparse.Namespace, block: bool = True) -> int:
    from repro.resilience import install_faults, parse_fault_spec
    from repro.service import RecommenderService
    from repro.storage import RetryingLibraryStore

    fault_spec = getattr(args, "fault_spec", None)
    if fault_spec:
        try:
            install_faults(parse_fault_spec(fault_spec))
        except ValueError as exc:
            print(f"error: --fault-spec: {exc}", file=sys.stderr)
            return 2
    # Must happen before the service is constructed: the lock factories
    # decide plain-vs-instrumented at construction time.
    if getattr(args, "lock_sanitizer", False) or os.environ.get(
        "REPRO_LOCK_SANITIZER", ""
    ) not in ("", "0"):
        from repro.utils.concurrency import enable_lock_sanitizer

        enable_lock_sanitizer()
    history_interval = getattr(args, "history_interval", None)
    if history_interval is None:
        history_interval = obs.DEFAULT_INTERVAL_SECONDS
    history_window = getattr(args, "history_window", None)
    if history_window is None:
        history_window = obs.DEFAULT_WINDOW_SECONDS
    if history_window > 0 and history_interval <= 0:
        print("error: --history-interval must be > 0", file=sys.stderr)
        return 2
    # The retrying wrapper absorbs transient load failures (a writer
    # mid-replace, an injected storage fault) with deterministic backoff.
    library = RetryingLibraryStore(JsonLibraryStore(args.library)).load()
    model = AssociationGoalModel.from_library(library)
    workers = getattr(args, "workers", 1)
    if workers is not None and workers < 1:
        print("error: --workers must be >= 1", file=sys.stderr)
        return 2
    if workers and workers > 1:
        from repro.serving.workers import run_worker_pool

        return run_worker_pool(model, args, block=block)
    service = RecommenderService(
        model,
        host=args.host,
        port=args.port,
        # getattr: tests drive this with hand-built Namespace objects that
        # predate the cache flags.
        cache_size=getattr(args, "cache_size", 1024),
        space_cache_size=getattr(args, "space_cache_size", 4096),
        approx_budget=getattr(args, "approx_budget", 128),
        enable_tracing=not getattr(args, "no_tracing", False),
        enable_exemplars=not getattr(args, "no_exemplars", False),
        trace_detail=not getattr(args, "no_trace_detail", False),
        slow_threshold_seconds=getattr(args, "slow_threshold", 0.1),
        slow_log_size=getattr(args, "slow_log_size", 32),
        max_inflight=getattr(args, "max_inflight", 64),
        max_queue=getattr(args, "max_queue", 128),
        queue_timeout_seconds=getattr(args, "queue_timeout", 0.5),
        retry_after_seconds=getattr(args, "retry_after", 1.0),
        default_deadline_ms=getattr(args, "default_deadline_ms", None),
        quality_window=getattr(args, "quality_window", 512),
        score_threshold=getattr(args, "score_threshold", 0.05),
        drift_window=getattr(args, "drift_window", 256),
        drift_threshold=getattr(args, "drift_threshold", 0.25),
        slo_availability=getattr(args, "slo_availability", 0.999),
        slo_latency_ms=getattr(args, "slo_latency_ms", 250.0),
        slo_latency_target=getattr(args, "slo_latency_target", 0.99),
        telemetry_dir=getattr(args, "telemetry_dir", None),
        telemetry_sample_rate=getattr(args, "telemetry_sample_rate", 1.0),
        history_interval_seconds=history_interval,
        history_window_seconds=history_window or obs.DEFAULT_WINDOW_SECONDS,
        history_enabled=history_window > 0,
    )
    service.start()
    print(
        f"serving {model.num_implementations} implementations on "
        f"http://{args.host}:{service.port} "
        "(endpoints: /health /metrics /model /recommend /recommend/batch "
        "/spaces /explain /goals /related /debug/vars /debug/slow "
        "/debug/quality /debug/history /debug/trace/<request-id> "
        "/debug/locks /debug/profile)",
        flush=True,
    )
    if not block:  # test hook: caller owns the lifecycle
        service.stop()
        return 0
    _serve_until_signalled(service, getattr(args, "drain_timeout", 10.0))
    return 0


def _serve_until_signalled(
    service: RecommenderService, drain_timeout: float
) -> None:
    """Block on the serving thread; SIGTERM/SIGINT trigger a graceful drain.

    Without the handlers, ``docker stop``/Kubernetes termination kills the
    process mid-request.  With them, a signal flips ``/health`` to
    ``draining``, stops accepting, waits for in-flight requests up to
    ``drain_timeout`` and exits 0.  Handlers can only be installed from
    the main thread; elsewhere (tests driving the CLI from a worker
    thread) the plain KeyboardInterrupt path remains.
    """
    import signal

    def _drain(signum: int, _frame: object) -> None:
        print(
            f"received signal {signum}; draining "
            f"(timeout {drain_timeout:g}s)",
            file=sys.stderr,
            flush=True,
        )
        service.drain(timeout=drain_timeout)

    in_main = threading.current_thread() is threading.main_thread()
    if in_main:
        signal.signal(signal.SIGTERM, _drain)
        signal.signal(signal.SIGINT, _drain)
    thread = service._thread
    if thread is None:  # pragma: no cover - already stopped
        return
    try:
        thread.join()
    except KeyboardInterrupt:  # pragma: no cover - non-main-thread fallback
        service.stop()


def _cmd_goals(args: argparse.Namespace) -> int:
    from repro.core.goal_inference import GoalInferencer

    library = JsonLibraryStore(args.library).load()
    model = AssociationGoalModel.from_library(library)
    activity = {part.strip() for part in args.activity.split(",") if part.strip()}
    inferred = GoalInferencer(model, scorer=args.scorer).infer(
        activity, top=args.top
    )
    if not inferred:
        print("no goals inferred (activity matches no implementation)")
        return 1
    rows = [[str(goal), score] for goal, score in inferred]
    print(
        format_table(
            ["goal", "score"], rows, title=f"inferred goals ({args.scorer})"
        )
    )
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    if args.url is None:
        # The in-process registry: useful after driving the library from the
        # same process (``main([...])``) or for checking the exposition.
        print(obs.get_registry().render(), end="")
        return 0
    import urllib.request

    url = args.url.rstrip("/")
    if not url.endswith("/metrics"):
        url += "/metrics"
    try:
        with urllib.request.urlopen(url, timeout=10) as response:
            print(response.read().decode("utf-8"), end="")
    except OSError as exc:
        print(f"error: cannot scrape {url}: {exc}", file=sys.stderr)
        return 1
    return 0


def _num(value: object) -> float:
    """A numeric telemetry field, or 0.0 when absent/malformed."""
    return float(value) if isinstance(value, (int, float)) else 0.0


def _cmd_telemetry(args: argparse.Namespace) -> int:
    directory: Path = args.telemetry_dir
    if not directory.is_dir():
        print(f"error: {directory} is not a directory", file=sys.stderr)
        return 2
    requests: dict[str, dict[str, float]] = {}
    events: list[dict[str, object]] = []
    kinds: dict[str, int] = {}
    for record in obs.iter_telemetry_records(directory):
        kind = str(record.get("kind", "?"))
        kinds[kind] = kinds.get(kind, 0) + 1
        if kind == "request":
            endpoint = str(record.get("endpoint", "?"))
            stats = requests.setdefault(
                endpoint,
                {"count": 0, "errors": 0, "sampled": 0, "sum": 0.0, "max": 0.0},
            )
            stats["count"] += 1
            if int(_num(record.get("status"))) >= 500:
                stats["errors"] += 1
            if record.get("spans"):
                stats["sampled"] += 1
            seconds = _num(record.get("seconds"))
            stats["sum"] += seconds
            stats["max"] = max(stats["max"], seconds)
        else:
            events.append(record)
    if not kinds:
        print(f"no telemetry records under {directory}")
        return 1
    rows: list[list[object]] = [
        [
            endpoint,
            int(stats["count"]),
            int(stats["errors"]),
            int(stats["sampled"]),
            stats["sum"] / stats["count"],
            stats["max"],
        ]
        for endpoint, stats in sorted(requests.items())
    ]
    if rows:
        print(
            format_table(
                ["endpoint", "requests", "errors", "sampled",
                 "mean_seconds", "max_seconds"],
                rows,
                title=f"flight recorder: {directory}",
            )
        )
    if events:
        tail = events[-args.limit:]
        event_rows = [
            [
                str(event.get("kind", "?")),
                str(event.get("request_id", "") or ""),
                str(event.get("trace_id", "") or ""),
                ", ".join(
                    f"{key}={event[key]}"
                    for key in sorted(event)
                    if key not in ("kind", "ts", "request_id", "trace_id")
                ),
            ]
            for event in tail
        ]
        print(
            format_table(
                ["kind", "request_id", "trace_id", "payload"],
                event_rows,
                title=f"quality events (last {len(tail)} of {len(events)})",
            )
        )
    summary = ", ".join(f"{kind}={kinds[kind]}" for kind in sorted(kinds))
    print(f"records: {summary}")
    return 0


def _cmd_monitor(args: argparse.Namespace) -> int:
    from repro.obs.console import run_monitor

    return run_monitor(
        args.url,
        interval=args.interval,
        once=args.once,
        as_json=args.as_json,
        window=args.window,
        step=args.step,
    )


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.experiments import ExperimentSuite, SuiteConfig

    grocery = load_dataset(args.grocery)
    life_goals = load_dataset(args.life_goals)
    suite = ExperimentSuite(
        grocery,
        life_goals,
        SuiteConfig(
            k=args.k,
            max_users=args.max_users,
            seed=args.seed,
            run_scaling=not args.skip_scaling,
        ),
    )
    report = suite.render_report()
    if args.out is not None:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(report, encoding="utf-8")
        print(f"wrote report -> {args.out}")
    else:
        print(report)
    return 0


_COMMANDS: dict[str, Callable[[argparse.Namespace], int]] = {
    "generate": _cmd_generate,
    "inspect": _cmd_inspect,
    "recommend": _cmd_recommend,
    "evaluate": _cmd_evaluate,
    "extract": _cmd_extract,
    "goals": _cmd_goals,
    "serve": _cmd_serve,
    "metrics": _cmd_metrics,
    "monitor": _cmd_monitor,
    "telemetry": _cmd_telemetry,
    "report": _cmd_report,
}


def _run_command(args: argparse.Namespace) -> int:
    try:
        return _COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    logger = obs.configure_logging(
        level=args.log_level,
        json_logs=args.json_logs,
        log_file=getattr(args, "log_file", None),
    )
    obs.log_event(
        logger, "cli.start", version=__version__, run_id=obs.RUN_ID,
        command=args.command,
    )
    if not args.profile:
        return _run_command(args)
    session = obs.ProfileSession()
    session.start()
    try:
        exit_code = session.profile_call(_run_command, args)
    finally:
        report = session.stop(sort=args.profile_sort)
    if args.profile_out is not None:
        args.profile_out.parent.mkdir(parents=True, exist_ok=True)
        args.profile_out.write_text(report, encoding="utf-8")
        print(f"wrote profile -> {args.profile_out}", file=sys.stderr)
    else:
        print(report, file=sys.stderr)
    return exit_code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
