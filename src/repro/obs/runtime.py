"""Global on/off switches for the observability layer.

Instrumentation in the hot path (``GoalRecommender.recommend``, the ranking
strategies, the space queries) is guarded by these flags so that a process
that never calls :func:`enable` pays only a boolean check per guarded site —
benchmarks against the uninstrumented code stay honest.

Five subsystems, all starting **disabled**:

- ``metrics`` — counter/gauge/histogram recording into the process registry;
- ``tracing`` — span recording into the process tracer;
- ``exemplars`` — latency histograms additionally remember the request id of
  a recent observation per bucket, rendered as OpenMetrics exemplars (only
  meaningful with metrics on; the flag is separate because exemplar capture
  reads the request-id ContextVar on every ``observe``);
- ``trace_detail`` — recommend spans additionally carry the space sizes
  |IS(H)|, |GS(H)|, |AS(H)| and the candidate count.  These cost three
  extra index queries per request — far more than the span machinery
  itself — so they are opt-in on top of ``tracing`` and the 10% enabled-path
  overhead budget (``benchmarks/bench_obs_overhead.py``) is enforced
  *without* them;
- ``quality`` — recommendation-quality accounting into the process
  :class:`~repro.obs.quality.QualityMonitor` (score distributions, empty
  and below-threshold result rates, OOV rate, drift detection; see
  ``docs/quality.md``).  Its own ≤10% overhead budget is enforced by
  ``benchmarks/bench_quality_telemetry.py``.

The HTTP service enables metrics, tracing and exemplars when it is
constructed (a service without request accounting is not observable, and
its ``/debug/slow`` span trees need spans recorded); everything else is
opt-in:

    from repro import obs

    obs.enable(metrics=True, tracing=True)
    obs.enable(exemplars=True, trace_detail=True)   # the opt-in extras
    ...
    obs.disable()

The flags are plain module-level booleans: reads and writes are atomic under
the GIL, and the guarded sites tolerate a stale read for one operation (a
sample more or less around the toggle instant is not a correctness issue),
so no lock is needed.
"""

from __future__ import annotations

_metrics_enabled: bool = False
_tracing_enabled: bool = False
_exemplars_enabled: bool = False
_trace_detail_enabled: bool = False
_quality_enabled: bool = False


def enable(
    metrics: bool = True,
    tracing: bool = True,
    *,
    exemplars: bool = False,
    trace_detail: bool = False,
    quality: bool = False,
) -> None:
    """Turn observability subsystems on.

    Arguments select *which* subsystems to enable; ``False`` leaves the
    corresponding flag untouched (it never turns a subsystem off — use
    :func:`disable` for that), so ``enable(metrics=True, tracing=False)``
    composes with a tracing session enabled elsewhere.  ``exemplars``,
    ``trace_detail`` and ``quality`` default to ``False`` (untouched): they
    are opt-in extras on top of metrics and tracing.
    """
    global _metrics_enabled, _tracing_enabled
    global _exemplars_enabled, _trace_detail_enabled, _quality_enabled
    if metrics:
        _metrics_enabled = True
    if tracing:
        _tracing_enabled = True
    if exemplars:
        _exemplars_enabled = True
    if trace_detail:
        _trace_detail_enabled = True
    if quality:
        _quality_enabled = True


def disable(
    metrics: bool = True,
    tracing: bool = True,
    exemplars: bool = True,
    trace_detail: bool = True,
    quality: bool = True,
) -> None:
    """Turn observability subsystems off (all five by default)."""
    global _metrics_enabled, _tracing_enabled
    global _exemplars_enabled, _trace_detail_enabled, _quality_enabled
    if metrics:
        _metrics_enabled = False
    if tracing:
        _tracing_enabled = False
    if exemplars:
        _exemplars_enabled = False
    if trace_detail:
        _trace_detail_enabled = False
    if quality:
        _quality_enabled = False


def metrics_enabled() -> bool:
    """``True`` when metric recording is on."""
    return _metrics_enabled


def tracing_enabled() -> bool:
    """``True`` when span recording is on."""
    return _tracing_enabled


def exemplars_enabled() -> bool:
    """``True`` when histogram exemplar capture is on."""
    return _exemplars_enabled


def trace_detail_enabled() -> bool:
    """``True`` when recommend spans carry the (costly) space sizes."""
    return _trace_detail_enabled


def quality_enabled() -> bool:
    """``True`` when recommendation-quality accounting is on."""
    return _quality_enabled


def is_enabled() -> bool:
    """``True`` when metric or span recording is on."""
    return _metrics_enabled or _tracing_enabled
