"""Global on/off switches for the observability layer.

Instrumentation in the hot path (``GoalRecommender.recommend``, the ranking
strategies, the space queries) is guarded by these flags so that a process
that never calls :func:`enable` pays only a boolean check per guarded site —
benchmarks against the uninstrumented code stay honest.

Both subsystems start **disabled**.  The HTTP service enables metrics when it
is constructed (a service without request accounting is not observable);
everything else is opt-in:

    from repro import obs

    obs.enable(metrics=True, tracing=True)
    ...
    obs.disable()

The flags are plain module-level booleans: reads and writes are atomic under
the GIL, and the guarded sites tolerate a stale read for one operation (a
sample more or less around the toggle instant is not a correctness issue),
so no lock is needed.
"""

from __future__ import annotations

_metrics_enabled: bool = False
_tracing_enabled: bool = False


def enable(metrics: bool = True, tracing: bool = True) -> None:
    """Turn observability subsystems on.

    Arguments select *which* subsystems to enable; ``False`` leaves the
    corresponding flag untouched (it never turns a subsystem off — use
    :func:`disable` for that), so ``enable(metrics=True, tracing=False)``
    composes with a tracing session enabled elsewhere.
    """
    global _metrics_enabled, _tracing_enabled
    if metrics:
        _metrics_enabled = True
    if tracing:
        _tracing_enabled = True


def disable(metrics: bool = True, tracing: bool = True) -> None:
    """Turn observability subsystems off (both by default)."""
    global _metrics_enabled, _tracing_enabled
    if metrics:
        _metrics_enabled = False
    if tracing:
        _tracing_enabled = False


def metrics_enabled() -> bool:
    """``True`` when metric recording is on."""
    return _metrics_enabled


def tracing_enabled() -> bool:
    """``True`` when span recording is on."""
    return _tracing_enabled


def is_enabled() -> bool:
    """``True`` when any observability subsystem is on."""
    return _metrics_enabled or _tracing_enabled
