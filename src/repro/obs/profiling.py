"""Per-stage deterministic profiling, slow-request capture, cProfile sessions.

The paper's pipeline is a chain of discrete stages — build ``IS(H)``, then
``GS(H)`` and ``AS(H)``, then rank (§4–5) — and each stage is already
wrapped in a span by the core instrumentation.  This module turns those
spans into answers to "where does time go inside a request":

- :class:`StageProfiler` — a tracer *sink* that walks every finished root
  span tree, extracts the stage spans (``implementation_space``,
  ``goal_space``, ``action_space``, ``rank``) and aggregates per-stage
  latency into bounded reservoirs with p50/p95/p99.  Deterministic
  (instrumentation-based), not sampling: every traced request contributes.
- :class:`SlowRequestLog` — keeps the N slowest requests above a threshold,
  each with its full span tree, for ``GET /debug/slow``.
- :class:`ProfileSession` — a guarded on-demand :mod:`cProfile` wrapper
  start/stoppable from the CLI (``repro --profile``) and the service
  (``POST``/``DELETE /debug/profile``), rendering :mod:`pstats` text.

The stage profiler double-counts nothing: ``CachedModelView`` wraps the
underlying model, so a cache miss yields *nested* same-name stage spans
(the view's span around the model's); the tree walk attributes time to the
outermost occurrence of each stage name only.
"""

from __future__ import annotations

import cProfile
import heapq
import io
import pstats
import threading
from collections import deque
from collections.abc import Callable
from typing import ParamSpec, TypeVar

from repro.obs import runtime
from repro.obs.metrics import get_registry
from repro.obs.tracing import Span
from repro.utils.timing import quantile

P = ParamSpec("P")
T = TypeVar("T")

#: The pipeline stages a recommend request decomposes into, in paper order.
STAGES: tuple[str, ...] = (
    "implementation_space",
    "goal_space",
    "action_space",
    "rank",
)

_STAGE_SET = frozenset(STAGES)

#: Lock discipline, machine-checked by ``repro-lint`` (rule RL001, see
#: docs/static-analysis.md): profiler state is written from tracer sinks on
#: handler threads and read from debug endpoints.
_GUARDED_BY = {
    "StageProfiler._samples": "_lock",
    "StageProfiler._counts": "_lock",
    "StageProfiler._totals": "_lock",
    "SlowRequestLog._heap": "_lock",
    "SlowRequestLog._sequence": "_lock",
    "ProfileSession._profile": "_lock",
    "ProfileSession._calls": "_lock",
}


class StageProfiler:
    """Aggregates stage-span durations into per-stage latency breakdowns.

    Install on a tracer with ``tracer.add_sink(profiler.observe_span)``;
    every finished root span tree is walked once.  Per stage it keeps the
    total count, total seconds, and a bounded reservoir of the most recent
    ``max_samples`` durations from which the percentiles are computed —
    recent-window percentiles, matching what a dashboard wants.

    When metrics are enabled each observation also feeds the
    ``repro_stage_latency_seconds{stage=...}`` histogram and refreshes the
    ``repro_profiler_samples{stage=...}`` gauge, so the breakdown is
    scrapeable as well as introspectable.
    """

    def __init__(self, max_samples: int = 2048) -> None:
        if max_samples <= 0:
            raise ValueError(f"max_samples must be positive, got {max_samples}")
        self._lock = threading.Lock()
        self.max_samples = max_samples
        self._samples: dict[str, deque[float]] = {
            stage: deque(maxlen=max_samples) for stage in STAGES
        }
        self._counts: dict[str, int] = {stage: 0 for stage in STAGES}
        self._totals: dict[str, float] = {stage: 0.0 for stage in STAGES}

    def observe_span(self, root: Span) -> None:
        """Tracer-sink entry point: harvest stage durations from one tree."""
        found: list[tuple[str, float]] = []
        self._harvest(root, set(), found)
        if not found:
            return
        record_metrics = runtime.metrics_enabled()
        registry = get_registry() if record_metrics else None
        with self._lock:
            for stage, seconds in found:
                self._samples[stage].append(seconds)
                self._counts[stage] += 1
                self._totals[stage] += seconds
        if registry is not None:
            for stage, seconds in found:
                registry.histogram(
                    "repro_stage_latency_seconds",
                    "Latency of one pipeline stage, harvested from spans.",
                    stage=stage,
                ).observe(seconds)
            with self._lock:
                sizes = {stage: len(self._samples[stage]) for stage in STAGES}
            for stage, size in sizes.items():
                registry.gauge(
                    "repro_profiler_samples",
                    "Stage-profiler reservoir occupancy.",
                    stage=stage,
                ).set(size)

    def _harvest(
        self,
        span: Span,
        active: set[str],
        found: list[tuple[str, float]],
    ) -> None:
        is_stage = span.name in _STAGE_SET and span.name not in active
        if is_stage and span.duration is not None:
            found.append((span.name, span.duration))
            active = active | {span.name}
        for child in span.children:
            self._harvest(child, active, found)

    def record(self, stage: str, seconds: float) -> None:
        """Record one stage duration directly (no span tree needed)."""
        if stage not in _STAGE_SET:
            raise ValueError(f"unknown stage {stage!r}; expected one of {STAGES}")
        with self._lock:
            self._samples[stage].append(seconds)
            self._counts[stage] += 1
            self._totals[stage] += seconds

    def breakdown(self) -> dict[str, dict[str, float | int]]:
        """Per-stage summary: count, total/mean seconds, p50/p95/p99.

        Percentiles cover the bounded recent window; count and total cover
        the profiler's lifetime.  Stages never observed report zeros.
        """
        with self._lock:
            snapshot = {
                stage: (
                    list(self._samples[stage]),
                    self._counts[stage],
                    self._totals[stage],
                )
                for stage in STAGES
            }
        result: dict[str, dict[str, float | int]] = {}
        for stage, (samples, count, total) in snapshot.items():
            entry: dict[str, float | int] = {
                "count": count,
                "total_seconds": round(total, 9),
                "mean_seconds": round(total / count, 9) if count else 0.0,
            }
            for label, q in (("p50", 0.50), ("p95", 0.95), ("p99", 0.99)):
                entry[f"{label}_seconds"] = (
                    round(quantile(samples, q), 9) if samples else 0.0
                )
            result[stage] = entry
        return result

    def reset(self) -> None:
        """Drop all accumulated stage data."""
        with self._lock:
            for stage in STAGES:
                self._samples[stage].clear()
                self._counts[stage] = 0
                self._totals[stage] = 0.0


class SlowRequestLog:
    """Bounded log of the slowest requests above a latency threshold.

    A min-heap of at most ``size`` entries keyed by duration: once full, a
    new slow request displaces the *fastest* logged one, so the log always
    holds the worst offenders seen, not merely the most recent.  Entries
    carry the full span tree, giving ``GET /debug/slow`` per-stage timings
    for exactly the requests that matter.
    """

    def __init__(self, size: int = 32, threshold_seconds: float = 0.1) -> None:
        if size <= 0:
            raise ValueError(f"size must be positive, got {size}")
        if threshold_seconds < 0:
            raise ValueError(f"threshold must be >= 0, got {threshold_seconds}")
        self.size = size
        self.threshold_seconds = threshold_seconds
        self._lock = threading.Lock()
        # Heap items are (seconds, sequence, entry); the sequence breaks
        # duration ties so entry dicts are never compared.
        self._heap: list[tuple[float, int, dict[str, object]]] = []
        self._sequence = 0

    def offer(
        self,
        request_id: str,
        endpoint: str,
        method: str,
        status: int,
        seconds: float,
        spans: list[dict[str, object]],
        trace_id: str | None = None,
    ) -> bool:
        """Log the request if it is slow enough; returns whether it was."""
        if seconds < self.threshold_seconds:
            return False
        entry: dict[str, object] = {
            "request_id": request_id,
            "endpoint": endpoint,
            "method": method,
            "status": status,
            "seconds": round(seconds, 6),
            "spans": spans,
        }
        if trace_id is not None:
            entry["trace_id"] = trace_id
        with self._lock:
            self._sequence += 1
            item = (seconds, self._sequence, entry)
            if len(self._heap) < self.size:
                heapq.heappush(self._heap, item)
                return True
            if seconds > self._heap[0][0]:
                heapq.heapreplace(self._heap, item)
                return True
        return False

    def snapshot(self) -> list[dict[str, object]]:
        """Logged requests, slowest first."""
        with self._lock:
            items = list(self._heap)
        items.sort(key=lambda item: (-item[0], item[1]))
        return [entry for _, _, entry in items]

    def __len__(self) -> int:
        with self._lock:
            return len(self._heap)

    def reset(self) -> None:
        """Drop all logged requests."""
        with self._lock:
            self._heap.clear()


class ProfileSession:
    """A guarded on-demand :mod:`cProfile` session.

    ``cProfile.Profile`` objects are not thread-safe, and the HTTP service
    handles each request on its own thread — so while a session is active,
    :meth:`profile_call` profiles **one call at a time** (non-blocking
    try-lock); concurrent calls simply run unprofiled rather than queueing
    behind the profiler.  :meth:`start`/:meth:`stop` are idempotent-guarded:
    starting an active session raises, as does stopping an inactive one,
    which the service maps to 409/404.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._profile: cProfile.Profile | None = None
        self._calls = 0
        # Serializes the profiled region itself (not just the state), so
        # two handler threads never drive one Profile object concurrently.
        self._run_lock = threading.Lock()

    @property
    def active(self) -> bool:
        """Whether a session is currently running."""
        with self._lock:
            return self._profile is not None

    @property
    def calls(self) -> int:
        """Number of calls profiled by the current/most recent session."""
        with self._lock:
            return self._calls

    def start(self) -> None:
        """Begin a session; raises :class:`RuntimeError` if one is active."""
        with self._lock:
            if self._profile is not None:
                raise RuntimeError("a profile session is already active")
            self._profile = cProfile.Profile()
            self._calls = 0

    def stop(self, sort: str = "cumulative", limit: int = 40) -> str:
        """End the session and return the :mod:`pstats` report text.

        Raises :class:`RuntimeError` if no session is active.
        """
        with self._lock:
            profile = self._profile
            self._profile = None
            calls = self._calls
        if profile is None:
            raise RuntimeError("no profile session is active")
        # Wait for any in-flight profiled call to leave the region before
        # reading the stats.
        header = f"# profiled calls: {calls}\n"
        with self._run_lock:
            buffer = io.StringIO()
            try:
                stats = pstats.Stats(profile, stream=buffer)
            except TypeError:
                # pstats refuses to wrap a Profile that never ran anything;
                # a session stopped before any call is still a valid stop.
                return header + "(no calls were profiled)\n"
        stats.sort_stats(sort).print_stats(limit)
        return header + buffer.getvalue()

    def profile_call(self, func: Callable[P, T], *args: P.args, **kwargs: P.kwargs) -> T:
        """Run ``func`` under the profiler when a session is active and idle.

        Falls through to a plain call when no session is running or another
        thread currently holds the profiled region.
        """
        with self._lock:
            profile = self._profile
        if profile is None:
            return func(*args, **kwargs)
        if not self._run_lock.acquire(blocking=False):
            return func(*args, **kwargs)
        try:
            with self._lock:
                # Re-check under the lock: stop() may have raced us.
                if self._profile is not profile:
                    return func(*args, **kwargs)
                self._calls += 1
            return profile.runcall(func, *args, **kwargs)
        finally:
            self._run_lock.release()


_profiler = StageProfiler()


def get_profiler() -> StageProfiler:
    """The process-wide stage profiler."""
    return _profiler


def set_profiler(profiler: StageProfiler) -> StageProfiler:
    """Replace the process-wide stage profiler; returns the previous one."""
    global _profiler
    previous = _profiler
    _profiler = profiler
    return previous
