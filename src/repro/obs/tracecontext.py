"""W3C Trace Context (``traceparent``) ingestion, propagation and echo.

The service already mints an ``X-Request-Id`` per request; this module adds
the standard distributed-tracing correlation header alongside it, so a
caller sitting behind a mesh or gateway can join our spans, slow-log
entries and flight-recorder records to its own trace.

Only the ``traceparent`` header of the spec is implemented (``tracestate``
is passed through untouched by virtue of never being inspected).  The
header format, per https://www.w3.org/TR/trace-context/::

    traceparent: 00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01
                 ^^ ^^^^^^^^^^^^^^^^ trace-id ^^^^^^ ^^ parent-id ^^^^ ^^
              version     16 bytes, lowercase hex     8 bytes      flags

Semantics here:

- **ingest**: a valid incoming ``traceparent`` pins the request's
  ``trace_id`` (and sampling flags); an absent or malformed header mints a
  fresh trace id, exactly like the request-id path.
- **echo**: every response — including 429 shed, 503 drain and error
  envelopes — carries a ``traceparent`` whose ``parent-id`` is the span id
  this service minted for the request, so the caller sees which hop
  answered.
- **stamp**: the root ``http.request`` span, ``/debug/slow`` entries and
  flight-recorder records carry the ``trace_id`` attribute, and
  ``GET /debug/trace/<request-id>`` joins them back together.

A :class:`~contextvars.ContextVar` mirrors :mod:`repro.obs.logs`'s
request-id scope so deep call sites (drift events, log lines) can pick up
the current trace id without plumbing.
"""

from __future__ import annotations

import re
import uuid
from collections.abc import Iterator
from contextlib import contextmanager
from contextvars import ContextVar

#: One parsed ``traceparent`` value.  ``flags`` is the raw two-hex-digit
#: field; bit 0 (``01``) is the W3C *sampled* flag.
_TRACEPARENT = re.compile(
    r"^(?P<version>[0-9a-f]{2})-"
    r"(?P<trace_id>[0-9a-f]{32})-"
    r"(?P<parent_id>[0-9a-f]{16})-"
    r"(?P<flags>[0-9a-f]{2})$"
)

_trace_id: ContextVar[str | None] = ContextVar("repro_trace_id", default=None)


class TraceContext:
    """A validated ``traceparent``: trace id, parent span id, flags."""

    __slots__ = ("trace_id", "parent_id", "flags")

    def __init__(self, trace_id: str, parent_id: str, flags: str = "01") -> None:
        self.trace_id = trace_id
        self.parent_id = parent_id
        self.flags = flags

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"TraceContext(trace_id={self.trace_id!r}, "
            f"parent_id={self.parent_id!r}, flags={self.flags!r})"
        )


def parse_traceparent(header: str | None) -> TraceContext | None:
    """Parse a ``traceparent`` header; ``None`` when absent or invalid.

    Invalid per the spec: wrong shape, uppercase hex, version ``ff``, or
    all-zero trace/parent ids.  Higher versions than ``00`` are accepted
    as long as the ``00`` fields parse (forward compatibility rule).
    """
    if not header:
        return None
    match = _TRACEPARENT.match(header.strip())
    if match is None:
        return None
    if match["version"] == "ff":
        return None
    trace_id = match["trace_id"]
    parent_id = match["parent_id"]
    if trace_id == "0" * 32 or parent_id == "0" * 16:
        return None
    return TraceContext(trace_id, parent_id, match["flags"])


def format_traceparent(trace_id: str, span_id: str, flags: str = "01") -> str:
    """Render a version-00 ``traceparent`` header value."""
    return f"00-{trace_id}-{span_id}-{flags}"


def new_trace_id() -> str:
    """A fresh 16-byte trace id as 32 lowercase hex digits."""
    return uuid.uuid4().hex


def new_span_id() -> str:
    """A fresh 8-byte span id as 16 lowercase hex digits."""
    return uuid.uuid4().hex[:16]


def current_trace_id() -> str | None:
    """The trace id bound to the current context, if any."""
    return _trace_id.get()


@contextmanager
def trace_context(trace_id: str) -> Iterator[str]:
    """Bind ``trace_id`` for the duration of the block.

    Mirrors :func:`repro.obs.logs.request_context`; the service enters both
    per request so histogram exemplars, drift events and log lines can
    correlate without passing ids through every call signature.
    """
    token = _trace_id.set(trace_id)
    try:
        yield trace_id
    finally:
        _trace_id.reset(token)
