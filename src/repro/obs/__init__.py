"""Observability: metrics, tracing spans, structured logs, timing.

This package is the single entry point for everything the system reports
about itself:

- :mod:`repro.obs.metrics` — a process-wide :class:`MetricsRegistry` of
  counters, gauges and fixed-bucket histograms with Prometheus text
  exposition (served by ``GET /metrics`` on the HTTP service);
- :mod:`repro.obs.tracing` — nested :func:`trace_span` context managers
  carrying strategy names, space sizes (|IS|, |GS|, |AS|) and candidate
  counts, exportable as a JSON span tree;
- :mod:`repro.obs.logs` — structured JSON logging with a process run-id
  and per-request ids;
- :mod:`repro.obs.profiling` — the :class:`StageProfiler` per-stage latency
  breakdown (p50/p95/p99 over the IS/GS/AS/rank pipeline stages), the
  :class:`SlowRequestLog` behind ``GET /debug/slow``, and guarded on-demand
  :class:`ProfileSession` cProfile captures;
- :mod:`repro.obs.quality` — online recommendation-quality accounting:
  per-strategy score/empty/OOV rates, PSI drift detection against a
  baseline frozen per model generation, and SLO burn-rate gauges (served
  by ``GET /debug/quality``; see ``docs/quality.md``);
- :mod:`repro.obs.export` — the durable tail: a sampled, size-capped,
  rotating JSONL flight recorder for span trees and quality events
  (``repro telemetry report`` replays it);
- :mod:`repro.obs.runtime` — the :func:`enable`/:func:`disable` switches.
  Every subsystem starts **off**; disabled instrumentation costs one boolean
  check per site, so benchmarks of the uninstrumented paths stay honest.
- :class:`~repro.utils.timing.Stopwatch` (re-exported) — the thread-safe
  sample accumulator the Figure 7 scalability experiments use.

Quickstart::

    from repro import obs

    obs.enable(metrics=True, tracing=True)
    recommender.recommend(activity, k=10)
    print(obs.get_registry().render())        # Prometheus text
    print(obs.get_tracer().export_json())     # span tree with |IS|/|GS|/|AS|

Metric naming follows Prometheus conventions (``repro_`` prefix, base
units, ``_total``/``_seconds`` suffixes); ``docs/observability.md`` lists
every metric and span attribute.
"""

from repro.obs.export import (
    FlightRecorder,
    RotatingFileWriter,
    iter_telemetry_records,
)
from repro.obs.history import (
    DEFAULT_INTERVAL_SECONDS,
    DEFAULT_WINDOW_SECONDS,
    MetricsHistory,
    histogram_quantile,
)
from repro.obs.logs import (
    RUN_ID,
    JsonLogFormatter,
    TextLogFormatter,
    configure_logging,
    current_request_id,
    get_logger,
    log_event,
    new_request_id,
    request_context,
)
from repro.obs.metrics import (
    CACHE_LOOKUP_BUCKETS,
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Exemplar,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    set_registry,
)
from repro.obs.profiling import (
    STAGES,
    ProfileSession,
    SlowRequestLog,
    StageProfiler,
    get_profiler,
    set_profiler,
)
from repro.obs.quality import (
    BaselineProfile,
    DriftDetector,
    QualityMonitor,
    SLOTracker,
    get_quality_monitor,
    population_stability_index,
    set_quality_monitor,
)
from repro.obs.runtime import (
    disable,
    enable,
    exemplars_enabled,
    is_enabled,
    metrics_enabled,
    quality_enabled,
    trace_detail_enabled,
    tracing_enabled,
)
from repro.obs.tracecontext import (
    TraceContext,
    current_trace_id,
    format_traceparent,
    new_span_id,
    new_trace_id,
    parse_traceparent,
    trace_context,
)
from repro.obs.tracing import (
    NOOP_SPAN,
    Span,
    Tracer,
    get_tracer,
    set_tracer,
    trace_span,
)
from repro.utils.timing import Stopwatch, TimingSummary, timed

__all__ = [
    # runtime switches
    "enable",
    "disable",
    "is_enabled",
    "metrics_enabled",
    "tracing_enabled",
    "exemplars_enabled",
    "trace_detail_enabled",
    "quality_enabled",
    # metrics
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "Exemplar",
    "DEFAULT_LATENCY_BUCKETS",
    "CACHE_LOOKUP_BUCKETS",
    "get_registry",
    "set_registry",
    # profiling
    "STAGES",
    "StageProfiler",
    "SlowRequestLog",
    "ProfileSession",
    "get_profiler",
    "set_profiler",
    # tracing
    "Span",
    "Tracer",
    "trace_span",
    "get_tracer",
    "set_tracer",
    "NOOP_SPAN",
    # W3C trace-context propagation
    "TraceContext",
    "parse_traceparent",
    "format_traceparent",
    "new_trace_id",
    "new_span_id",
    "current_trace_id",
    "trace_context",
    # metrics history (time-series ring buffers behind /debug/history)
    "MetricsHistory",
    "histogram_quantile",
    "DEFAULT_INTERVAL_SECONDS",
    "DEFAULT_WINDOW_SECONDS",
    # recommendation quality + drift + SLOs
    "QualityMonitor",
    "DriftDetector",
    "BaselineProfile",
    "SLOTracker",
    "population_stability_index",
    "get_quality_monitor",
    "set_quality_monitor",
    # durable telemetry export
    "FlightRecorder",
    "RotatingFileWriter",
    "iter_telemetry_records",
    # structured logs
    "configure_logging",
    "get_logger",
    "log_event",
    "request_context",
    "current_request_id",
    "new_request_id",
    "JsonLogFormatter",
    "TextLogFormatter",
    "RUN_ID",
    # timing (re-exported for one observability entry point)
    "Stopwatch",
    "TimingSummary",
    "timed",
]
