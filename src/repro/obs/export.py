"""Durable telemetry export: rotating JSONL files and the flight recorder.

Everything the in-process observability layer collects — span trees, the
metric families, quality events — dies with the process.  This module adds
the durable tail for postmortems:

- :class:`RotatingFileWriter` — a thread-safe, size-capped line writer with
  numbered-backup rotation (``file`` → ``file.1`` → … → ``file.N``).  It is
  shared by the flight recorder below and the ``--log-file`` handler in
  :mod:`repro.obs.logs`, so both honour one rotation policy.
- :class:`FlightRecorder` — a sampled JSONL exporter.  Request records are
  admitted by **head-based deterministic sampling** keyed on the request id
  (same id + same rate ⇒ same decision in every process, so multi-replica
  captures line up), then queued to a background writer thread; the serving
  thread pays one CRC and one deque append.  Quality/drift events bypass
  sampling — they are rare and always worth keeping.  The queue is bounded:
  when the writer falls behind, new records are dropped and counted rather
  than stalling request handling.
- :func:`iter_telemetry_records` — replay a telemetry directory oldest
  record first, used by ``repro telemetry report``.

Determinism: records are written in enqueue (FIFO) order by a single worker
thread and serialized with ``sort_keys=True``, so the same request stream
produces byte-identical JSONL modulo the ``ts`` fields (pinned by
``tests/test_flight_recorder.py``).  The clock is injectable for tests.
"""

from __future__ import annotations

import json
import threading
import time
import zlib
from collections import deque
from collections.abc import Callable, Iterator
from pathlib import Path

from repro.obs import metrics as obs_metrics
from repro.obs import runtime

#: Sampling decisions compare ``crc32(request_id) % _SAMPLE_SPACE`` against
#: ``rate * _SAMPLE_SPACE`` — a million buckets keeps rates like ``0.001``
#: exact without floating-point drift between replicas.
_SAMPLE_SPACE = 10**6

#: Lock discipline, machine-checked by ``repro-lint`` (rule RL001): the
#: writer's file handle and counters are shared with the log handler's
#: emitting thread; the recorder's queue is shared between every serving
#: thread and the single writer thread.
_GUARDED_BY = {
    "RotatingFileWriter._handle": "_lock",
    "RotatingFileWriter._size": "_lock",
    "RotatingFileWriter._rotations": "_lock",
    "RotatingFileWriter._bytes_written": "_lock",
    "RotatingFileWriter._writer_closed": "_lock",
    "FlightRecorder._queue": "_cond",
    "FlightRecorder._recorder_closed": "_cond",
    "FlightRecorder._enqueued": "_cond",
    "FlightRecorder._written": "_cond",
    "FlightRecorder._dropped": "_cond",
}


class RotatingFileWriter:
    """Append lines to ``path``, rotating numbered backups at a size cap.

    Rotation shifts ``path`` → ``path.1`` → … → ``path.<backups>`` and
    drops the oldest, mirroring :class:`logging.handlers.RotatingFileHandler`
    semantics without binding the telemetry exporter to the logging stack.
    A line larger than ``max_bytes`` is still written whole (on a fresh
    file) — rotation caps file size, it never truncates records.
    """

    def __init__(
        self,
        path: Path,
        *,
        max_bytes: int = 4 << 20,
        backups: int = 4,
        on_rotate: Callable[[], None] | None = None,
    ) -> None:
        if max_bytes <= 0:
            raise ValueError("max_bytes must be positive")
        if backups < 0:
            raise ValueError("backups must be >= 0")
        self.path = Path(path)
        self.max_bytes = max_bytes
        self.backups = backups
        self._on_rotate = on_rotate
        self._lock = threading.Lock()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = self.path.open("a", encoding="utf-8")
        self._size = self.path.stat().st_size
        self._rotations = 0
        self._bytes_written = 0
        self._writer_closed = False

    def _rotate_locked(self) -> None:
        """Shift the backup chain and reopen a fresh primary file."""
        self._handle.close()
        if self.backups == 0:
            self.path.unlink(missing_ok=True)
        else:
            oldest = self.path.with_name(f"{self.path.name}.{self.backups}")
            oldest.unlink(missing_ok=True)
            for index in range(self.backups - 1, 0, -1):
                source = self.path.with_name(f"{self.path.name}.{index}")
                if source.exists():
                    source.rename(
                        self.path.with_name(f"{self.path.name}.{index + 1}")
                    )
            if self.path.exists():
                self.path.rename(self.path.with_name(f"{self.path.name}.1"))
        self._handle = self.path.open("a", encoding="utf-8")
        self._size = 0
        self._rotations += 1

    def write_line(self, line: str) -> None:
        """Append ``line`` (newline added) and flush; rotates when full."""
        rotated = False
        data = line + "\n"
        encoded_size = len(data.encode("utf-8"))
        with self._lock:
            if self._writer_closed:
                raise ValueError("write to closed RotatingFileWriter")
            if self._size > 0 and self._size + encoded_size > self.max_bytes:
                self._rotate_locked()
                rotated = True
            self._handle.write(data)
            self._handle.flush()
            self._size += encoded_size
            self._bytes_written += encoded_size
        # The callback (metric bump, test hook) runs outside the lock so it
        # may itself log or write without deadlocking.
        if rotated and self._on_rotate is not None:
            self._on_rotate()

    def stats(self) -> dict[str, int]:
        """Rotation count and total bytes written over the writer's life."""
        with self._lock:
            return {
                "rotations": self._rotations,
                "bytes_written": self._bytes_written,
            }

    def close(self) -> None:
        """Flush and close the current file; idempotent."""
        with self._lock:
            if self._writer_closed:
                return
            self._writer_closed = True
            self._handle.close()


class _RecorderHandles:
    """Metric children of one registry, memoized by the flight recorder."""

    __slots__ = ("registry", "backlog", "rotations", "records", "drops")

    def __init__(self, registry: obs_metrics.MetricsRegistry) -> None:
        self.registry = registry
        self.backlog = registry.gauge(
            "repro_telemetry_backlog",
            "Telemetry records queued for the flight-recorder writer thread.",
        )
        self.rotations = registry.counter(
            "repro_telemetry_rotations_total",
            "Flight-recorder JSONL file rotations.",
        )
        self.records: dict[str, obs_metrics.Counter] = {}
        self.drops: dict[str, obs_metrics.Counter] = {}


class FlightRecorder:
    """Sampled, size-capped, durable JSONL export of spans and events.

    The serving threads call :meth:`record_request` /
    :meth:`record_event`; a daemon worker thread serializes and writes, so
    disk latency never sits on the request path.  ``sample_rate`` admits a
    deterministic subset of request ids (:meth:`should_sample`); events
    recorded via :meth:`record_event` are never sampled out.
    """

    def __init__(
        self,
        directory: Path,
        *,
        sample_rate: float = 1.0,
        max_bytes: int = 4 << 20,
        backups: int = 4,
        queue_size: int = 2048,
        clock: Callable[[], float] = time.time,
        filename: str = "telemetry.jsonl",
    ) -> None:
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError("sample_rate must be in [0, 1]")
        if queue_size <= 0:
            raise ValueError("queue_size must be positive")
        self.directory = Path(directory)
        self.sample_rate = sample_rate
        self.queue_size = queue_size
        self._clock = clock
        self._threshold = int(sample_rate * _SAMPLE_SPACE)
        self._writer = RotatingFileWriter(
            self.directory / filename,
            max_bytes=max_bytes,
            backups=backups,
            on_rotate=self._count_rotation,
        )
        self._cond = threading.Condition()
        self._handles_memo: _RecorderHandles | None = None
        self._queue: deque[dict[str, object]] = deque()
        self._recorder_closed = False
        self._enqueued = 0
        self._written = 0
        self._dropped: dict[str, int] = {}
        self._worker = threading.Thread(
            target=self._run, name="repro-flight-recorder", daemon=True
        )
        self._worker.start()

    # -- metric handles --------------------------------------------------
    # One call site per family (RL003), memoized per registry: the hot
    # sampled-out path must cost one hash and one dict lookup, not a
    # registry traversal — part of the ≤10% budget enforced by
    # ``benchmarks/bench_quality_telemetry.py``.  The memo is swapped as
    # one object; the benign build race between serving threads and the
    # worker just fetches the same idempotent children twice.

    def _metric_handles(self) -> _RecorderHandles | None:
        if not runtime.metrics_enabled():
            return None
        registry = obs_metrics.get_registry()
        memo = self._handles_memo
        if memo is None or memo.registry is not registry:
            memo = _RecorderHandles(registry)
            self._handles_memo = memo
        return memo

    def _set_backlog(self, backlog: int) -> None:
        handles = self._metric_handles()
        if handles is not None:
            handles.backlog.set(backlog)

    def _count_record(self, kind: str) -> None:
        handles = self._metric_handles()
        if handles is None:
            return
        counter = handles.records.get(kind)
        if counter is None:
            counter = handles.registry.counter(
                "repro_telemetry_records_total",
                "Telemetry records accepted by the flight recorder, by kind.",
                kind=kind,
            )
            handles.records[kind] = counter
        counter.inc()

    def _count_drop(self, reason: str) -> None:
        handles = self._metric_handles()
        if handles is None:
            return
        counter = handles.drops.get(reason)
        if counter is None:
            counter = handles.registry.counter(
                "repro_telemetry_dropped_total",
                "Telemetry records not written, by reason (sampled = head-"
                "based sampling, backlog = full queue, closed = recorder "
                "shut down, error = serialization/write failure).",
                reason=reason,
            )
            handles.drops[reason] = counter
        counter.inc()

    def _count_rotation(self) -> None:
        handles = self._metric_handles()
        if handles is not None:
            handles.rotations.inc()

    # -- recording -------------------------------------------------------

    def should_sample(self, request_id: str) -> bool:
        """Deterministic head-based sampling decision for ``request_id``."""
        if self._threshold >= _SAMPLE_SPACE:
            return True
        if self._threshold <= 0:
            return False
        return zlib.crc32(request_id.encode("utf-8")) % _SAMPLE_SPACE < (
            self._threshold
        )

    def record_request(
        self,
        request_id: str,
        endpoint: str,
        method: str,
        status: int,
        elapsed: float,
        spans: list[dict[str, object]] | None = None,
        trace_id: str | None = None,
    ) -> None:
        """Record one served request (subject to sampling)."""
        if not self.should_sample(request_id):
            self._count_drop("sampled")
            return
        record: dict[str, object] = {
            "kind": "request",
            "ts": round(self._clock(), 6),
            "request_id": request_id,
            "endpoint": endpoint,
            "method": method,
            "status": status,
            "seconds": round(elapsed, 6),
        }
        if trace_id is not None:
            record["trace_id"] = trace_id
        if spans:
            record["spans"] = spans
        self._enqueue(record, kind="request")

    def record_event(
        self,
        kind: str,
        payload: dict[str, object],
        request_id: str | None = None,
    ) -> None:
        """Record a quality/drift/lifecycle event; never sampled out."""
        record: dict[str, object] = {
            "kind": kind,
            "ts": round(self._clock(), 6),
        }
        if request_id is not None:
            record["request_id"] = request_id
        for key, value in payload.items():
            record.setdefault(key, value)
        self._enqueue(record, kind=kind)

    def _enqueue(self, record: dict[str, object], kind: str) -> None:
        backlog = 0
        with self._cond:
            if self._recorder_closed:
                self._dropped["closed"] = self._dropped.get("closed", 0) + 1
                dropped = "closed"
            elif len(self._queue) >= self.queue_size:
                self._dropped["backlog"] = self._dropped.get("backlog", 0) + 1
                dropped = "backlog"
            else:
                self._queue.append(record)
                self._enqueued += 1
                backlog = len(self._queue)
                dropped = ""
                self._cond.notify_all()
        if dropped:
            self._count_drop(dropped)
            return
        self._count_record(kind)
        self._set_backlog(backlog)

    # -- worker ----------------------------------------------------------

    def _run(self) -> None:
        while True:
            with self._cond:
                while not self._queue and not self._recorder_closed:
                    self._cond.wait()
                if not self._queue:  # closed and drained
                    return
                # Drain whole batches: one lock round-trip and one flusher
                # wake-up per burst instead of per record keeps the writer
                # from stealing interpreter time from the serving threads.
                batch = list(self._queue)
                self._queue.clear()
            for record in batch:
                try:
                    self._writer.write_line(
                        json.dumps(record, sort_keys=True, default=str)
                    )
                except Exception:  # noqa: BLE001 - must not kill the worker
                    self._count_drop("error")
            with self._cond:
                self._written += len(batch)
                backlog = len(self._queue)
                self._cond.notify_all()
            self._set_backlog(backlog)

    # -- introspection / lifecycle ---------------------------------------

    def backlog(self) -> int:
        """Records queued but not yet handed to the writer."""
        with self._cond:
            return len(self._queue)

    def snapshot(self) -> dict[str, object]:
        """Recorder state for ``/debug/vars`` and ``/debug/quality``."""
        with self._cond:
            state = {
                "backlog": len(self._queue),
                "enqueued": self._enqueued,
                "written": self._written,
                "dropped": dict(self._dropped),
            }
        stats = self._writer.stats()
        return {
            "directory": str(self.directory),
            "sample_rate": self.sample_rate,
            "rotations": stats["rotations"],
            "bytes_written": stats["bytes_written"],
            **state,
        }

    def flush(self, timeout: float = 5.0) -> bool:
        """Block until the queue drains; ``False`` on timeout."""
        deadline = time.monotonic() + timeout
        with self._cond:
            while self._queue or self._written < self._enqueued:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._cond.wait(remaining)
        return True

    def close(self, timeout: float = 5.0) -> None:
        """Drain the queue, stop the worker and close the file; idempotent."""
        with self._cond:
            if self._recorder_closed:
                return
            self._recorder_closed = True
            self._cond.notify_all()
        self._worker.join(timeout)
        self._writer.close()


def iter_telemetry_records(directory: Path) -> Iterator[dict[str, object]]:
    """Yield every record in a telemetry directory, oldest first.

    Walks rotated backups (``*.jsonl.N``, highest ``N`` first) before each
    primary ``*.jsonl`` file, so replay order matches write order.  Lines
    that fail to parse (a partial line from a killed process) are skipped —
    a flight recorder must replay what survived, not demand perfection.
    """
    directory = Path(directory)
    groups: dict[str, list[tuple[int, Path]]] = {}
    for path in directory.iterdir():
        if not path.is_file():
            continue
        name = path.name
        if name.endswith(".jsonl"):
            groups.setdefault(name, []).append((0, path))
        else:
            stem, _, suffix = name.rpartition(".")
            if stem.endswith(".jsonl") and suffix.isdigit():
                groups.setdefault(stem, []).append((int(suffix), path))
    for name in sorted(groups):
        for _, path in sorted(groups[name], reverse=True):
            with path.open("r", encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        record = json.loads(line)
                    except ValueError:
                        continue
                    if isinstance(record, dict):
                        yield record
