"""Process-wide metrics registry with Prometheus text exposition.

Three metric kinds, matching the Prometheus data model:

- :class:`Counter` — monotonically increasing count (requests served,
  errors raised);
- :class:`Gauge` — a value that goes both ways (library size, in-flight
  requests);
- :class:`Histogram` — fixed-bucket distribution with cumulative bucket
  counts, a sum and a count (latencies).

Metrics are addressed by *family name* plus a *label set*; children are
created on first use and cached, so call sites simply write::

    registry = obs.get_registry()
    registry.counter("repro_http_requests_total",
                     "HTTP requests served.",
                     endpoint="/recommend", method="POST", status="200").inc()
    registry.histogram("repro_recommend_latency_seconds",
                       "recommend() latency.",
                       strategy="breadth").observe(elapsed)

Everything is stdlib-only and thread-safe: family/child creation takes the
registry lock, and each child serializes its own updates, so handler threads
of the HTTP service can record concurrently.  :meth:`MetricsRegistry.render`
produces the Prometheus text exposition format (version 0.0.4) served by the
``GET /metrics`` endpoint; :meth:`MetricsRegistry.render_openmetrics`
produces OpenMetrics 1.0, which additionally carries **exemplars** — when
exemplar capture is enabled (:mod:`repro.obs.runtime`) each histogram bucket
remembers the request id of a recent observation that landed in it, so a
slow bucket on a dashboard links straight to a concrete request whose span
tree sits in ``GET /debug/slow``.
"""

from __future__ import annotations

import math
import re
import threading
import time
from bisect import bisect_left
from collections.abc import Sequence

from repro.obs import runtime
from repro.obs.logs import current_request_id

#: Default latency buckets, in seconds: 100µs .. 10s, roughly 1-2.5-5 per
#: decade.  Chosen to straddle both the microsecond-scale space queries and
#: second-scale model builds of the paper's Figure 7 study.
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Buckets for sub-microsecond operations (cache lookups, dict probes):
#: 100ns .. 10ms.  ``DEFAULT_LATENCY_BUCKETS`` starts at 100µs, which would
#: collapse every cache hit into the first bucket.
CACHE_LOOKUP_BUCKETS: tuple[float, ...] = (
    1e-7, 2.5e-7, 5e-7, 1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5,
    5e-5, 1e-4, 2.5e-4, 5e-4, 1e-3, 1e-2,
)

_METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Lock discipline, machine-checked by ``repro-lint`` (rule RL001, see
#: docs/static-analysis.md): these attributes may only be touched inside
#: ``with self.<lock>``.
_GUARDED_BY = {
    "Counter._value": "_lock",
    "Gauge._value": "_lock",
    "Histogram._counts": "_lock",
    "Histogram._sum": "_lock",
    "Histogram._count": "_lock",
    "Histogram._exemplars": "_lock",
    "MetricsRegistry._families": "_lock",
}


class Exemplar:
    """One concrete observation attached to a histogram bucket.

    OpenMetrics lets each ``_bucket`` sample carry a labelled exemplar —
    here the ``trace_id`` is the request id minted by the service (also
    returned as ``X-Request-Id`` and recorded in ``/debug/slow``), so the
    bucket links to a findable trace.
    """

    __slots__ = ("trace_id", "value", "timestamp")

    def __init__(self, trace_id: str, value: float, timestamp: float) -> None:
        self.trace_id = trace_id
        self.value = value
        self.timestamp = timestamp

    def render(self) -> str:
        """The OpenMetrics exemplar suffix, without the leading ``# ``."""
        return (
            f'{{trace_id="{_escape_label_value(self.trace_id)}"}} '
            f"{_format_value(self.value)} {_format_value(round(self.timestamp, 3))}"
        )


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return f"{int(value)}"
    return repr(float(value))


def _format_labels(labels: tuple[tuple[str, str], ...], extra: str = "") -> str:
    parts = [f'{name}="{_escape_label_value(value)}"' for name, value in labels]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


class Counter:
    """A monotonically increasing value."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ValueError(f"counters only go up; got {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        """The current count."""
        with self._lock:
            return self._value


class Gauge:
    """A value that can go up and down."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        """Replace the gauge value."""
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (may be negative) to the gauge."""
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Subtract ``amount`` from the gauge."""
        self.inc(-amount)

    @property
    def value(self) -> float:
        """The current value."""
        with self._lock:
            return self._value


class Histogram:
    """Fixed-bucket distribution with cumulative exposition.

    ``buckets`` are the finite upper bounds, strictly increasing; an
    implicit ``+Inf`` bucket catches the tail, so ``observe`` never drops a
    sample.
    """

    __slots__ = ("_lock", "_bounds", "_counts", "_sum", "_count", "_exemplars")

    def __init__(self, buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one finite bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(f"bucket bounds must be strictly increasing: {bounds}")
        if bounds[-1] == math.inf:
            bounds = bounds[:-1]  # the +Inf bucket is implicit
        self._lock = threading.Lock()
        self._bounds = bounds
        self._counts = [0] * (len(bounds) + 1)
        self._sum = 0.0
        self._count = 0
        self._exemplars: list[Exemplar | None] = [None] * (len(bounds) + 1)

    def observe(self, value: float) -> None:
        """Record one sample.

        When exemplar capture is on and a request id is in scope, the
        sample's bucket remembers ``(request_id, value, now)`` — last
        writer wins, which keeps exemplars recent without extra state.
        The request-id lookup happens outside the lock; only the slot
        write is serialized.
        """
        index = bisect_left(self._bounds, value)
        exemplar: Exemplar | None = None
        if runtime.exemplars_enabled():
            trace_id = current_request_id()
            if trace_id is not None:
                exemplar = Exemplar(trace_id, value, time.time())
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1
            if exemplar is not None:
                self._exemplars[index] = exemplar

    @property
    def bounds(self) -> tuple[float, ...]:
        """The finite bucket upper bounds."""
        return self._bounds

    @property
    def sum(self) -> float:
        """Sum of all observed samples."""
        with self._lock:
            return self._sum

    @property
    def count(self) -> int:
        """Number of observed samples."""
        with self._lock:
            return self._count

    def cumulative_counts(self) -> list[int]:
        """Cumulative per-bucket counts, ``+Inf`` last (Prometheus ``le``)."""
        with self._lock:
            raw = list(self._counts)
        total = 0
        cumulative = []
        for bucket_count in raw:
            total += bucket_count
            cumulative.append(total)
        return cumulative

    def exemplars(self) -> list[Exemplar | None]:
        """Per-bucket exemplars (``+Inf`` last); ``None`` where never captured."""
        with self._lock:
            return list(self._exemplars)


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class _Family:
    """One named metric with its labelled children."""

    __slots__ = ("name", "kind", "help", "label_names", "buckets", "children")

    def __init__(self, name: str, kind: str, help_text: str,
                 label_names: tuple[str, ...],
                 buckets: tuple[float, ...] | None) -> None:
        self.name = name
        self.kind = kind
        self.help = help_text
        self.label_names = label_names
        self.buckets = buckets
        self.children: dict[tuple[tuple[str, str], ...], object] = {}


class MetricsRegistry:
    """Thread-safe collection of metric families.

    One process-wide instance (:func:`get_registry`) backs all built-in
    instrumentation; tests construct private registries (or swap the global
    one with :func:`set_registry`) for isolation.
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._families: dict[str, _Family] = {}

    # ------------------------------------------------------------------
    # Metric accessors (create-on-first-use)
    # ------------------------------------------------------------------

    def counter(self, name: str, help: str = "", **labels: object) -> Counter:
        """Return the counter child of ``name`` for this label set."""
        return self._child(name, "counter", help, labels, None)

    def gauge(self, name: str, help: str = "", **labels: object) -> Gauge:
        """Return the gauge child of ``name`` for this label set."""
        return self._child(name, "gauge", help, labels, None)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] | None = None,
        **labels: object,
    ) -> Histogram:
        """Return the histogram child of ``name`` for this label set.

        ``buckets`` applies on family creation; later calls must agree (or
        omit it) — a family cannot mix bucket layouts.
        """
        resolved = tuple(float(b) for b in buckets) if buckets is not None else None
        return self._child(name, "histogram", help, labels, resolved)

    def _child(
        self,
        name: str,
        kind: str,
        help_text: str,
        labels: dict[str, object],
        buckets: tuple[float, ...] | None,
    ) -> object:
        if not _METRIC_NAME.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        for label in labels:
            if not _LABEL_NAME.match(label):
                raise ValueError(f"invalid label name {label!r} on {name}")
        key = tuple(sorted((label, str(value)) for label, value in labels.items()))
        label_names = tuple(label for label, _ in key)
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = _Family(name, kind, help_text, label_names, buckets)
                self._families[name] = family
            else:
                if family.kind != kind:
                    raise ValueError(
                        f"metric {name!r} is a {family.kind}, not a {kind}"
                    )
                if family.label_names != label_names:
                    raise ValueError(
                        f"metric {name!r} has labels {family.label_names}, "
                        f"got {label_names}"
                    )
                if buckets is not None and family.buckets is not None \
                        and buckets != family.buckets:
                    raise ValueError(
                        f"metric {name!r} already has buckets {family.buckets}"
                    )
            child = family.children.get(key)
            if child is None:
                if kind == "histogram":
                    child = Histogram(family.buckets or DEFAULT_LATENCY_BUCKETS)
                else:
                    child = _KINDS[kind]()
                family.children[key] = child
            return child

    # ------------------------------------------------------------------
    # Introspection and exposition
    # ------------------------------------------------------------------

    def names(self) -> list[str]:
        """Registered family names, sorted."""
        with self._lock:
            return sorted(self._families)

    def snapshot(self, *, include_buckets: bool = False) -> dict[str, dict]:
        """A picklable view: name -> {kind, help, samples}.

        Counter/gauge samples map the label tuple to the value; histogram
        samples map it to ``{"count": n, "sum": s}``.  With
        ``include_buckets=True`` each histogram sample additionally carries
        ``"buckets"`` (cumulative per-bucket counts, ``+Inf`` last) and the
        family carries ``"bounds"`` — enough for a consumer such as
        :class:`repro.obs.history.MetricsHistory` to derive quantiles over a
        window from bucket-count deltas.
        """
        with self._lock:
            families = list(self._families.values())
        result: dict[str, dict] = {}
        for family in families:
            samples: dict[tuple, object] = {}
            bounds: tuple[float, ...] | None = None
            for key, child in sorted(family.children.items()):
                if isinstance(child, Histogram):
                    sample: dict[str, object] = {
                        "count": child.count, "sum": child.sum,
                    }
                    if include_buckets:
                        sample["buckets"] = child.cumulative_counts()
                        bounds = child.bounds
                    samples[key] = sample
                else:
                    samples[key] = child.value  # type: ignore[union-attr]
            entry: dict[str, object] = {
                "kind": family.kind,
                "help": family.help,
                "samples": samples,
            }
            if include_buckets and bounds is not None:
                entry["bounds"] = bounds
            result[family.name] = entry
        return result

    def reset(self) -> None:
        """Drop every family (test isolation helper)."""
        with self._lock:
            self._families.clear()

    def render(self) -> str:
        """The Prometheus text exposition (format version 0.0.4)."""
        with self._lock:
            families = [self._families[name] for name in sorted(self._families)]
        lines: list[str] = []
        for family in families:
            if family.help:
                escaped = family.help.replace("\\", "\\\\").replace("\n", "\\n")
                lines.append(f"# HELP {family.name} {escaped}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            for key, child in sorted(family.children.items()):
                if isinstance(child, Histogram):
                    cumulative = child.cumulative_counts()
                    bounds = [*child.bounds, math.inf]
                    for bound, count in zip(bounds, cumulative):
                        le = f'le="{_format_value(bound)}"'
                        lines.append(
                            f"{family.name}_bucket{_format_labels(key, le)} {count}"
                        )
                    lines.append(
                        f"{family.name}_sum{_format_labels(key)} "
                        f"{_format_value(child.sum)}"
                    )
                    lines.append(
                        f"{family.name}_count{_format_labels(key)} {child.count}"
                    )
                else:
                    lines.append(
                        f"{family.name}{_format_labels(key)} "
                        f"{_format_value(child.value)}"  # type: ignore[union-attr]
                    )
        return "\n".join(lines) + ("\n" if lines else "")

    def render_openmetrics(self) -> str:
        """The OpenMetrics 1.0 text exposition, exemplars included.

        Differences from :meth:`render` (Prometheus 0.0.4), per the
        OpenMetrics spec:

        - counter metadata (``# TYPE``/``# HELP``) names the family
          *without* the ``_total`` suffix; the sample line keeps it;
        - histogram ``_bucket`` samples may carry an exemplar suffix
          ``# {trace_id="..."} value timestamp``;
        - the exposition ends with ``# EOF``.
        """
        with self._lock:
            families = [self._families[name] for name in sorted(self._families)]
        lines: list[str] = []
        for family in families:
            meta_name = family.name
            if family.kind == "counter" and meta_name.endswith("_total"):
                meta_name = meta_name[: -len("_total")]
            lines.append(f"# TYPE {meta_name} {family.kind}")
            if family.help:
                escaped = family.help.replace("\\", "\\\\").replace("\n", "\\n")
                lines.append(f"# HELP {meta_name} {escaped}")
            for key, child in sorted(family.children.items()):
                if isinstance(child, Histogram):
                    cumulative = child.cumulative_counts()
                    exemplars = child.exemplars()
                    bounds = [*child.bounds, math.inf]
                    for index, (bound, count) in enumerate(zip(bounds, cumulative)):
                        le = f'le="{_format_value(bound)}"'
                        line = f"{family.name}_bucket{_format_labels(key, le)} {count}"
                        exemplar = exemplars[index]
                        if exemplar is not None:
                            line = f"{line} # {exemplar.render()}"
                        lines.append(line)
                    lines.append(
                        f"{family.name}_sum{_format_labels(key)} "
                        f"{_format_value(child.sum)}"
                    )
                    lines.append(
                        f"{family.name}_count{_format_labels(key)} {child.count}"
                    )
                else:
                    sample_name = family.name
                    if family.kind == "counter" and not sample_name.endswith("_total"):
                        sample_name = f"{sample_name}_total"
                    lines.append(
                        f"{sample_name}{_format_labels(key)} "
                        f"{_format_value(child.value)}"  # type: ignore[union-attr]
                    )
        lines.append("# EOF")
        return "\n".join(lines) + "\n"


_registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide registry all built-in instrumentation writes to."""
    return _registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Replace the process-wide registry; returns the previous one."""
    global _registry
    previous = _registry
    _registry = registry
    return previous
