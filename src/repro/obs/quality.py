"""Online recommendation-quality accounting, drift detection and SLOs.

Infra observability (latency, cache hits, span trees) cannot see a model
that answers fast and *badly*: every list empty, every top score ~0, every
request full of actions the model has never indexed.  This module watches
the recommendations themselves:

- :class:`QualityMonitor` — per-strategy score distributions, empty and
  below-threshold result rates, unknown-activity (OOV) rate, inferred
  space-size distributions (|IS|/|GS|/|AS|) and sliding-window catalog
  coverage, exported as the ``repro_quality_*`` metric families;
- :class:`DriftDetector` — a **deterministic** comparison of the live
  request-activity distribution against a baseline profile frozen at model
  load / generation swap, scored with the Population Stability Index
  (:func:`population_stability_index`).  Same baseline + same request
  stream ⇒ bit-identical scores (pinned by ``tests/test_quality.py``), so
  a drift alert found in production replays in a test;
- :class:`SLOTracker` — availability and latency burn-rate gauges derived
  from the request stream: burn rate 1.0 means the error budget is being
  spent exactly at the objective's rate, >1 means faster.

Everything is gated at the call sites by ``obs.quality_enabled()`` (a
plain boolean, see :mod:`repro.obs.runtime`) and holds the same ≤10%
enabled-path overhead budget as the rest of the observability layer —
``benchmarks/bench_quality_telemetry.py`` enforces it.

The process-wide monitor mirrors the tracer/registry pattern:
:func:`get_quality_monitor` / :func:`set_quality_monitor`, with the HTTP
service installing a configured instance at startup.
"""

from __future__ import annotations

import math
import threading
import time
from collections import Counter, deque
from collections.abc import Callable, Iterable, Mapping
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, NamedTuple

from repro.obs import metrics as obs_metrics
from repro.obs import runtime
from repro.obs.logs import current_request_id, get_logger, log_event
from repro.obs.tracecontext import current_trace_id

if TYPE_CHECKING:
    from repro.core.entities import RecommendationList
    from repro.core.protocols import ModelView

#: Histogram buckets for strategy top scores (dimensionless, open-ended:
#: breadth counts goals, so scores are not capped at 1).
SCORE_BUCKETS: tuple[float, ...] = (0.05, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0, 2.0, 5.0)

#: Histogram buckets for ratios in [0, 1] (OOV rate).
RATIO_BUCKETS: tuple[float, ...] = (0.01, 0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0)

#: Histogram buckets for inferred space sizes (|IS|, |GS|, |AS|).
SIZE_BUCKETS: tuple[float, ...] = (1, 2, 5, 10, 25, 50, 100, 250, 1000, 5000)

#: An event sink receives ``(event_kind, payload)`` — the flight recorder's
#: :meth:`~repro.obs.export.FlightRecorder.record_event` matches it.
EventSink = Callable[[str, dict[str, object]], None]

#: Lock discipline, machine-checked by ``repro-lint`` (rule RL001): all
#: sliding-window state is shared across the service's handler threads.
_GUARDED_BY = {
    "DriftDetector._baseline": "_lock",
    "DriftDetector._window": "_lock",
    "DriftDetector._counts": "_lock",
    "DriftDetector._since_recompute": "_lock",
    "DriftDetector._psi": "_lock",
    "DriftDetector._alerting": "_lock",
    "DriftDetector._alerts": "_lock",
    "SLOTracker._window": "_lock",
    "SLOTracker._errors": "_lock",
    "SLOTracker._slow": "_lock",
    "SLOTracker._availability_burn": "_lock",
    "SLOTracker._latency_burn": "_lock",
    "QualityMonitor._handles": "_lock",
    "QualityMonitor._traffic_handles": "_lock",
    "QualityMonitor._stats": "_lock",
    "QualityMonitor._observations": "_lock",
    "QualityMonitor._coverage_window": "_lock",
    "QualityMonitor._coverage_counts": "_lock",
    "QualityMonitor._catalog_size": "_lock",
    "QualityMonitor._last_oov": "_lock",
    "QualityMonitor._oov_sum": "_lock",
    "QualityMonitor._oov_count": "_lock",
    "QualityMonitor._generation": "_lock",
}

_logger = get_logger("repro.obs.quality")


def population_stability_index(
    baseline: Mapping[str, float],
    live: Mapping[str, float],
    epsilon: float = 1e-6,
) -> float:
    """PSI between a baseline and a live probability distribution.

    ``Σ (p_live − p_base) · ln(p_live / p_base)`` over the baseline's
    support, plus one out-of-vocabulary bucket collecting all live mass on
    labels the baseline has never seen.  Probabilities are floored at
    ``epsilon`` so empty cells contribute finitely.  Iteration order is
    sorted, so the floating-point sum — and therefore the score — is
    bit-identical for identical inputs.

    Rule of thumb from the credit-scoring literature: < 0.1 stable,
    0.1–0.25 moderate shift, > 0.25 drifted.
    """
    score = 0.0
    for label in sorted(baseline):
        p_base = max(baseline[label], epsilon)
        p_live = max(live.get(label, 0.0), epsilon)
        score += (p_live - p_base) * math.log(p_live / p_base)
    oov_mass = sum(
        probability
        for label, probability in sorted(live.items())
        if label not in baseline
    )
    if oov_mass > 0.0:
        p_live = max(oov_mass, epsilon)
        score += (p_live - epsilon) * math.log(p_live / epsilon)
    return score


@dataclass(frozen=True)
class BaselineProfile:
    """A frozen activity-frequency distribution to drift against.

    ``distribution`` maps action labels to probabilities (summing to ~1);
    ``generation`` records which model generation froze it, surfaced on the
    ``repro_drift_baseline_generation`` gauge so a drift score can always
    be traced to the baseline it was computed against.
    """

    distribution: Mapping[str, float] = field(default_factory=dict)
    generation: int = 0

    @classmethod
    def from_counts(
        cls, counts: Mapping[str, float], generation: int = 0
    ) -> "BaselineProfile":
        """Normalize raw label counts/frequencies into a profile."""
        total = float(sum(counts.values()))
        if total <= 0.0:
            return cls({}, generation)
        return cls(
            {str(label): value / total for label, value in sorted(counts.items())},
            generation,
        )

    @classmethod
    def from_model(cls, model: "ModelView", generation: int = 0) -> "BaselineProfile":
        """Freeze a profile from a model's library action frequencies.

        Uses ``action_frequencies()`` when the model offers it (the
        indexed :class:`~repro.core.model.AssociationGoalModel` does);
        other :class:`~repro.core.protocols.ModelView` implementations
        fall back to a uniform profile over their action vocabulary —
        still enough to flag vocabulary drift via the OOV bucket.
        """
        frequencies = getattr(model, "action_frequencies", None)
        if callable(frequencies):
            counts = {
                str(model.action_label(aid)): float(value)
                for aid, value in frequencies().items()
                if value > 0
            }
        else:
            counts = {
                str(model.action_label(aid)): 1.0
                for aid in range(model.num_actions)
            }
        return cls.from_counts(counts, generation)


class DriftDetector:
    """Sliding-window PSI of live activity labels against a frozen baseline.

    Deterministic by construction: the score depends only on the baseline
    and the observed label sequence (the injectable ``clock`` stamps alert
    events, never the score), so the same seeded request stream replays to
    bit-identical scores.  Recomputing every ``recompute_every``
    observations amortizes the PSI pass; tests set it to 1.
    """

    def __init__(
        self,
        window_size: int = 256,
        threshold: float = 0.25,
        recompute_every: int = 128,
        clock: Callable[[], float] = time.time,
        event_sink: EventSink | None = None,
    ) -> None:
        if window_size <= 0:
            raise ValueError("window_size must be positive")
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        if recompute_every <= 0:
            raise ValueError("recompute_every must be positive")
        self.window_size = window_size
        self.threshold = threshold
        self.recompute_every = recompute_every
        self._clock = clock
        self.event_sink = event_sink
        self._lock = threading.Lock()
        self._baseline: BaselineProfile | None = None
        self._window: deque[str] = deque()
        self._counts: Counter[str] = Counter()
        self._since_recompute = 0
        self._psi = 0.0
        self._alerting = False
        self._alerts = 0

    # One helper per gauge keeps each family name at exactly one call site
    # (RL003) while several methods update it.

    def _score_gauge(self) -> obs_metrics.Gauge:
        return obs_metrics.get_registry().gauge(
            "repro_drift_score",
            "PSI of the live activity window against the frozen baseline "
            "profile (<0.1 stable, >0.25 drifted).",
        )

    def _alert_gauge(self) -> obs_metrics.Gauge:
        return obs_metrics.get_registry().gauge(
            "repro_drift_alert",
            "1 while the drift score is at or above the alert threshold.",
        )

    def _generation_gauge(self) -> obs_metrics.Gauge:
        return obs_metrics.get_registry().gauge(
            "repro_drift_baseline_generation",
            "Model generation the current drift baseline was frozen at.",
        )

    def set_baseline(self, baseline: BaselineProfile) -> None:
        """Freeze a new baseline and restart the live window.

        Called at model load and on every hot-reload generation swap: the
        old window described traffic scored against the old vocabulary.
        """
        with self._lock:
            self._baseline = baseline
            self._window.clear()
            self._counts.clear()
            self._since_recompute = 0
            self._psi = 0.0
            self._alerting = False
        if runtime.metrics_enabled():
            self._score_gauge().set(0.0)
            self._alert_gauge().set(0.0)
            self._generation_gauge().set(baseline.generation)

    def observe(self, labels: Iterable[str]) -> None:
        """Feed one request's activity labels into the live window."""
        event: dict[str, object] | None = None
        score: float | None = None
        alert = False
        with self._lock:
            baseline = self._baseline
            if baseline is None or not baseline.distribution:
                return
            for label in labels:
                if len(self._window) == self.window_size:
                    evicted = self._window.popleft()
                    self._counts[evicted] -= 1
                    if self._counts[evicted] <= 0:
                        del self._counts[evicted]
                self._window.append(label)
                self._counts[label] += 1
                self._since_recompute += 1
            if self._since_recompute < self.recompute_every:
                return
            self._since_recompute = 0
            total = len(self._window)
            live = {
                label: count / total for label, count in self._counts.items()
            }
            self._psi = population_stability_index(baseline.distribution, live)
            score = self._psi
            crossed = score >= self.threshold
            if crossed and not self._alerting:
                self._alerts += 1
                event = {
                    "score": round(score, 6),
                    "threshold": self.threshold,
                    "window": total,
                    "baseline_generation": baseline.generation,
                }
            self._alerting = crossed
            alert = crossed
        # Gauge updates, logging and the event sink all run outside the
        # lock: none of them may stall another handler thread's observe.
        if score is not None and runtime.metrics_enabled():
            self._score_gauge().set(score)
            self._alert_gauge().set(1.0 if alert else 0.0)
        if event is not None:
            # Drift fires from inside a handler thread's recommend path, so
            # the request/trace ids of the tipping request are in scope —
            # stamp them so the alert joins against /debug/trace and the
            # flight recorder's sampled records.
            request_id = current_request_id()
            if request_id is not None:
                event["request_id"] = request_id
            trace_id = current_trace_id()
            if trace_id is not None:
                event["trace_id"] = trace_id
            if runtime.metrics_enabled():
                obs_metrics.get_registry().counter(
                    "repro_drift_alerts_total",
                    "Drift-threshold crossings (rising edges) since start.",
                ).inc()
            log_event(_logger, "quality.drift", ts=self._clock(), **event)
            sink = self.event_sink
            if sink is not None:
                event_payload: dict[str, object] = dict(event)
                sink("drift", event_payload)

    def score(self) -> float:
        """The most recently computed PSI (0.0 before the first window)."""
        with self._lock:
            return self._psi

    def snapshot(self) -> dict[str, object]:
        """Detector state for ``GET /debug/quality``."""
        with self._lock:
            baseline = self._baseline
            return {
                "score": round(self._psi, 6),
                "threshold": self.threshold,
                "alerting": self._alerting,
                "alerts": self._alerts,
                "window": len(self._window),
                "window_size": self.window_size,
                "baseline_generation": (
                    None if baseline is None else baseline.generation
                ),
                "baseline_actions": (
                    0 if baseline is None else len(baseline.distribution)
                ),
            }


class SLOTracker:
    """Availability and latency burn rates over a sliding request window.

    ``burn = observed_bad_fraction / (1 − objective)``: 1.0 spends the
    error budget exactly at the objective rate, 2.0 twice as fast.  The
    gauges are the standard multi-window burn-rate alert input; the window
    here is count-based so the math is deterministic and clock-free.
    """

    def __init__(
        self,
        availability_objective: float = 0.999,
        latency_objective_seconds: float = 0.25,
        latency_target: float = 0.99,
        window_size: int = 1024,
    ) -> None:
        if not 0.0 < availability_objective < 1.0:
            raise ValueError("availability_objective must be in (0, 1)")
        if not 0.0 < latency_target < 1.0:
            raise ValueError("latency_target must be in (0, 1)")
        if latency_objective_seconds <= 0:
            raise ValueError("latency_objective_seconds must be positive")
        if window_size <= 0:
            raise ValueError("window_size must be positive")
        self.availability_objective = availability_objective
        self.latency_objective_seconds = latency_objective_seconds
        self.latency_target = latency_target
        self.window_size = window_size
        self._lock = threading.Lock()
        self._window: deque[tuple[bool, bool]] = deque()
        self._errors = 0
        self._slow = 0
        self._availability_burn = 0.0
        self._latency_burn = 0.0

    def _availability_gauge(self) -> obs_metrics.Gauge:
        return obs_metrics.get_registry().gauge(
            "repro_slo_availability_burn_rate",
            "Error-budget burn rate for the availability SLO over the "
            "sliding request window (1.0 = burning at the objective rate).",
        )

    def _latency_gauge(self) -> obs_metrics.Gauge:
        return obs_metrics.get_registry().gauge(
            "repro_slo_latency_burn_rate",
            "Error-budget burn rate for the latency SLO over the sliding "
            "request window (1.0 = burning at the objective rate).",
        )

    def observe(self, error: bool, seconds: float) -> None:
        """Feed one request outcome into the window and refresh the gauges."""
        slow = seconds > self.latency_objective_seconds
        with self._lock:
            if len(self._window) == self.window_size:
                old_error, old_slow = self._window.popleft()
                self._errors -= old_error
                self._slow -= old_slow
            self._window.append((error, slow))
            self._errors += error
            self._slow += slow
            total = len(self._window)
            self._availability_burn = (self._errors / total) / (
                1.0 - self.availability_objective
            )
            self._latency_burn = (self._slow / total) / (
                1.0 - self.latency_target
            )
            availability_burn = self._availability_burn
            latency_burn = self._latency_burn
        if runtime.metrics_enabled():
            self._availability_gauge().set(availability_burn)
            self._latency_gauge().set(latency_burn)

    def snapshot(self) -> dict[str, object]:
        """Tracker state for ``GET /debug/quality``."""
        with self._lock:
            total = len(self._window)
            return {
                "availability_objective": self.availability_objective,
                "latency_objective_seconds": self.latency_objective_seconds,
                "latency_target": self.latency_target,
                "window": total,
                "window_size": self.window_size,
                "errors": self._errors,
                "slow": self._slow,
                "availability_burn_rate": round(self._availability_burn, 6),
                "latency_burn_rate": round(self._latency_burn, 6),
            }


class _StrategyHandles(NamedTuple):
    """Memoized metric children for one strategy label set."""

    requests: obs_metrics.Counter
    empty: obs_metrics.Counter
    below: obs_metrics.Counter
    top_score: obs_metrics.Histogram


class _TrafficHandles(NamedTuple):
    """Memoized metric children of the request-level hook."""

    oov: obs_metrics.Histogram
    coverage: obs_metrics.Gauge
    generation: obs_metrics.Gauge


@dataclass
class _StrategyStats:
    """Plain counters mirrored for ``snapshot()`` (registry-independent)."""

    requests: int = 0
    empty: int = 0
    below_threshold: int = 0
    last_top_score: float | None = None


class QualityMonitor:
    """Online accounting of recommendation health.

    Two hooks feed it, because the serving path caches:

    - :meth:`observe_recommend` — from
      :class:`~repro.core.recommender.GoalRecommender` on every *computed*
      recommendation (cache misses): score distributions, empty/below-
      threshold rates, sampled |IS|/|GS|/|AS| sizes;
    - :meth:`observe_traffic` — from the service's
      :class:`~repro.service.ModelManager` on every request including
      cache hits: OOV rate, drift-window feed, catalog coverage.
    """

    def __init__(
        self,
        window_size: int = 512,
        score_threshold: float = 0.05,
        space_sample_every: int = 64,
        drift: DriftDetector | None = None,
        event_sink: EventSink | None = None,
    ) -> None:
        if window_size <= 0:
            raise ValueError("window_size must be positive")
        if space_sample_every <= 0:
            raise ValueError("space_sample_every must be positive")
        self.window_size = window_size
        self.score_threshold = score_threshold
        self.space_sample_every = space_sample_every
        self.drift = drift if drift is not None else DriftDetector()
        self.event_sink = event_sink
        self._lock = threading.Lock()
        # Call-site memo for per-strategy metric children, swapped as one
        # ``(registry, {strategy: handles})`` tuple (the GoalRecommender
        # pattern): the steady-state cost is one dict lookup, which is how
        # the ≤10% budget of bench_quality_telemetry.py holds.
        self._handles: (
            tuple[object, dict[str, _StrategyHandles]] | None
        ) = None
        self._traffic_handles: tuple[object, _TrafficHandles] | None = None
        self._stats: dict[str, _StrategyStats] = {}
        self._observations = 0
        self._coverage_window: deque[tuple[str, ...]] = deque()
        self._coverage_counts: Counter[str] = Counter()
        self._catalog_size = 0
        self._last_oov = 0.0
        self._oov_sum = 0.0
        self._oov_count = 0
        self._generation = 0

    def set_event_sink(self, sink: EventSink | None) -> None:
        """Route quality/drift events (e.g. into the flight recorder)."""
        self.event_sink = sink
        self.drift.event_sink = sink

    # -- computation-level hook ------------------------------------------

    def observe_recommend(
        self,
        strategy: str,
        model: "ModelView",
        activity: frozenset[int],
        result: "RecommendationList",
    ) -> None:
        """Account one computed recommendation (GoalRecommender hook)."""
        top_score = result.items[0].score if result.items else None
        below = top_score is not None and top_score < self.score_threshold
        with self._lock:
            stats = self._stats.get(strategy)
            if stats is None:
                stats = _StrategyStats()
                self._stats[strategy] = stats
            stats.requests += 1
            stats.last_top_score = top_score
            if top_score is None:
                stats.empty += 1
            elif below:
                stats.below_threshold += 1
            self._observations += 1
            sample_spaces = self._observations % self.space_sample_every == 0
            handles = self._handles_locked(strategy)
        if handles is not None:
            handles.requests.inc()
            if top_score is None:
                handles.empty.inc()
            else:
                handles.top_score.observe(top_score)
                if below:
                    handles.below.inc()
        if sample_spaces:
            self._observe_spaces(model, activity)

    def _handles_locked(self, strategy: str) -> _StrategyHandles | None:
        """Fetch/build the memoized metric children for ``strategy``."""
        if not runtime.metrics_enabled():
            return None
        registry = obs_metrics.get_registry()
        memo = self._handles
        if memo is None or memo[0] is not registry:
            memo = (registry, {})
            self._handles = memo
        handles = memo[1].get(strategy)
        if handles is None:
            handles = _StrategyHandles(
                requests=registry.counter(
                    "repro_quality_requests_total",
                    "Recommendations accounted by the quality monitor, by "
                    "strategy.",
                    strategy=strategy,
                ),
                empty=registry.counter(
                    "repro_quality_empty_total",
                    "Recommendations that returned an empty list, by "
                    "strategy.",
                    strategy=strategy,
                ),
                below=registry.counter(
                    "repro_quality_below_threshold_total",
                    "Non-empty recommendations whose top score fell below "
                    "the configured quality threshold, by strategy.",
                    strategy=strategy,
                ),
                top_score=registry.histogram(
                    "repro_quality_top_score",
                    "Distribution of the top recommendation score, by "
                    "strategy (dimensionless).",
                    buckets=SCORE_BUCKETS,
                    strategy=strategy,
                ),
            )
            memo[1][strategy] = handles
        return handles

    def _observe_spaces(self, model: "ModelView", activity: frozenset[int]) -> None:
        """Record |IS|/|GS|/|AS| for one deterministically sampled request."""
        if not runtime.metrics_enabled():
            return
        registry = obs_metrics.get_registry()
        sizes = (
            ("is", len(model.implementation_space(activity))),
            ("gs", len(model.goal_space(activity))),
            ("as", len(model.action_space(activity))),
        )
        for space, size in sizes:
            registry.histogram(
                "repro_quality_space_size_items",
                "Inferred space sizes |IS(H)|, |GS(H)|, |AS(H)| for sampled "
                "requests, by space.",
                buckets=SIZE_BUCKETS,
                space=space,
            ).observe(size)

    # -- request-level hook ----------------------------------------------

    def _traffic_handles_locked(self) -> _TrafficHandles | None:
        """Fetch/build the memoized request-level metric handles.

        Same shape as :meth:`_handles_locked`: the registry lookups run
        once per registry swap, not once per served request — that keeps
        the hot path inside the ≤10% budget of
        ``bench_quality_telemetry.py``.
        """
        if not runtime.metrics_enabled():
            return None
        registry = obs_metrics.get_registry()
        memo = self._traffic_handles
        if memo is None or memo[0] is not registry:
            handles = _TrafficHandles(
                oov=registry.histogram(
                    "repro_quality_oov_ratio",
                    "Per-request fraction of distinct activity actions "
                    "unknown to the serving model.",
                    buckets=RATIO_BUCKETS,
                ),
                coverage=registry.gauge(
                    "repro_quality_catalog_coverage_ratio",
                    "Fraction of the action catalog recommended at least "
                    "once within the sliding coverage window.",
                ),
                generation=registry.gauge(
                    "repro_quality_model_generation",
                    "Model generation the quality window is currently "
                    "observing.",
                ),
            )
            memo = (registry, handles)
            self._traffic_handles = memo
        return memo[1]

    def observe_traffic(
        self,
        activity: Iterable[str],
        model: "ModelView",
        result: "RecommendationList",
        generation: int = 0,
    ) -> None:
        """Account one served request, cache hits included (service hook)."""
        distinct = {str(label) for label in activity}
        unknown = sum(1 for label in distinct if not model.has_action(label))
        oov = unknown / len(distinct) if distinct else 0.0
        recommended = tuple(item.action for item in result.items)
        with self._lock:
            self._last_oov = oov
            self._oov_sum += oov
            self._oov_count += 1
            self._generation = generation
            self._catalog_size = model.num_actions
            if len(self._coverage_window) == self.window_size:
                for label in self._coverage_window.popleft():
                    self._coverage_counts[label] -= 1
                    if self._coverage_counts[label] <= 0:
                        del self._coverage_counts[label]
            self._coverage_window.append(recommended)
            for label in recommended:
                self._coverage_counts[label] += 1
            coverage = len(self._coverage_counts) / max(self._catalog_size, 1)
            handles = self._traffic_handles_locked()
        if handles is not None:
            handles.oov.observe(oov)
            handles.coverage.set(coverage)
            handles.generation.set(generation)
        # Drift sees the *sorted distinct* labels: per-request order is
        # irrelevant to a frequency window, and sorting makes the fed
        # sequence — hence the PSI — independent of set-iteration order.
        self.drift.observe(sorted(distinct))

    # -- introspection ----------------------------------------------------

    def snapshot(self) -> dict[str, object]:
        """Monitor state for ``GET /debug/quality``."""
        with self._lock:
            strategies = {
                name: {
                    "requests": stats.requests,
                    "empty": stats.empty,
                    "below_threshold": stats.below_threshold,
                    "last_top_score": stats.last_top_score,
                }
                for name, stats in sorted(self._stats.items())
            }
            oov_mean = (
                self._oov_sum / self._oov_count if self._oov_count else 0.0
            )
            state: dict[str, object] = {
                "strategies": strategies,
                "observations": self._observations,
                "score_threshold": self.score_threshold,
                "generation": self._generation,
                "oov": {
                    "last": round(self._last_oov, 6),
                    "mean": round(oov_mean, 6),
                    "requests": self._oov_count,
                },
                "coverage": {
                    "covered_actions": len(self._coverage_counts),
                    "catalog_actions": self._catalog_size,
                    "window": len(self._coverage_window),
                    "window_size": self.window_size,
                    "ratio": round(
                        len(self._coverage_counts)
                        / max(self._catalog_size, 1),
                        6,
                    ),
                },
            }
        state["drift"] = self.drift.snapshot()
        return state

    def reset(self) -> None:
        """Clear all accumulated state (tests and generation experiments)."""
        with self._lock:
            self._handles = None
            self._traffic_handles = None
            self._stats.clear()
            self._observations = 0
            self._coverage_window.clear()
            self._coverage_counts.clear()
            self._catalog_size = 0
            self._last_oov = 0.0
            self._oov_sum = 0.0
            self._oov_count = 0
            self._generation = 0


_monitor = QualityMonitor()


def get_quality_monitor() -> QualityMonitor:
    """The process-wide quality monitor the built-in hooks feed."""
    return _monitor


def set_quality_monitor(monitor: QualityMonitor) -> QualityMonitor:
    """Replace the process-wide monitor; returns the previous one."""
    global _monitor
    previous = _monitor
    _monitor = monitor
    return previous
