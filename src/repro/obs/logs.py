"""Structured logging helpers with shared run and request identifiers.

Built on :mod:`logging` so existing handlers, levels and capture tooling
keep working; what this module adds is *structure*:

- every record carries the process-wide :data:`RUN_ID`, so lines from one
  process correlate across log aggregation;
- a per-request id propagated through a :class:`~contextvars.ContextVar`
  (:func:`request_context`), set by the HTTP service from the incoming
  ``X-Request-Id`` header and echoed back to the client;
- :func:`log_event` attaches machine-readable key/value fields to a record,
  rendered as JSON by :class:`JsonLogFormatter` (``--json-logs``) or as
  ``key=value`` suffixes by :class:`TextLogFormatter`.

Example JSON line::

    {"event": "http.request", "level": "info", "logger": "repro.service",
     "run_id": "1f0c2a9d8e3b", "request_id": "a6f...", "endpoint":
     "/recommend", "status": 200, "seconds": 0.0021, "ts": 1754000000.0}

Nothing emits anywhere until :func:`configure_logging` installs a handler
(the CLI does this from ``--log-level``/``--json-logs``); libraries log into
the void by default, which keeps test output quiet.  ``--log-file`` swaps
the stderr stream for a size-rotated file backed by the same
:class:`~repro.obs.export.RotatingFileWriter` the flight recorder uses, so
logs and telemetry follow one rotation policy.
"""

from __future__ import annotations

import json
import logging
import sys
import uuid
from collections.abc import Iterator
from contextlib import contextmanager
from contextvars import ContextVar
from pathlib import Path
from typing import IO, TYPE_CHECKING

if TYPE_CHECKING:
    from repro.obs.export import RotatingFileWriter

#: Process-wide correlation id, minted once at import.
RUN_ID: str = uuid.uuid4().hex[:12]

_request_id: ContextVar[str | None] = ContextVar("repro_request_id", default=None)

_FIELDS_ATTR = "repro_fields"


def new_request_id() -> str:
    """Mint a fresh request id (opaque hex token)."""
    return uuid.uuid4().hex[:16]


def current_request_id() -> str | None:
    """The request id bound to the current context, if any."""
    return _request_id.get()


@contextmanager
def request_context(request_id: str | None = None) -> Iterator[str]:
    """Bind a request id to the current context; mints one when omitted."""
    rid = request_id or new_request_id()
    token = _request_id.set(rid)
    try:
        yield rid
    finally:
        _request_id.reset(token)


class JsonLogFormatter(logging.Formatter):
    """Render each record as one JSON object per line."""

    def format(self, record: logging.LogRecord) -> str:
        payload: dict[str, object] = {
            "ts": round(record.created, 6),
            "level": record.levelname.lower(),
            "logger": record.name,
            "event": record.getMessage(),
            "run_id": RUN_ID,
        }
        rid = _request_id.get()
        if rid is not None:
            payload["request_id"] = rid
        fields = getattr(record, _FIELDS_ATTR, None)
        if fields:
            payload.update(fields)
        if record.exc_info:
            payload["exception"] = self.formatException(record.exc_info)
        return json.dumps(payload, default=str, sort_keys=True)


class TextLogFormatter(logging.Formatter):
    """Human-readable rendering with structured fields as a suffix."""

    def format(self, record: logging.LogRecord) -> str:
        base = f"{record.levelname.lower():<7} {record.name}: {record.getMessage()}"
        parts: list[str] = []
        rid = _request_id.get()
        if rid is not None:
            parts.append(f"request_id={rid}")
        fields = getattr(record, _FIELDS_ATTR, None)
        if fields:
            parts.extend(f"{key}={value}" for key, value in fields.items())
        if parts:
            base = f"{base} [{' '.join(parts)}]"
        if record.exc_info:
            base = f"{base}\n{self.formatException(record.exc_info)}"
        return base


def get_logger(name: str = "repro") -> logging.Logger:
    """A logger under the ``repro`` hierarchy."""
    return logging.getLogger(name)


def log_event(
    logger: logging.Logger,
    event: str,
    level: int = logging.INFO,
    **fields: object,
) -> None:
    """Log ``event`` with structured ``fields`` attached to the record."""
    if logger.isEnabledFor(level):
        logger.log(level, event, extra={_FIELDS_ATTR: fields})


class _RotatingFileLogHandler(logging.Handler):
    """:class:`logging.Handler` writing through a rotating line writer.

    Bridges the logging stack to
    :class:`~repro.obs.export.RotatingFileWriter` — the one size-based
    rotation implementation shared with the telemetry flight recorder —
    instead of carrying a second policy via
    :class:`logging.handlers.RotatingFileHandler`.
    """

    def __init__(self, writer: "RotatingFileWriter") -> None:
        super().__init__()
        self.writer = writer

    def emit(self, record: logging.LogRecord) -> None:
        try:
            self.writer.write_line(self.format(record))
        except Exception:  # noqa: BLE001 - logging must never raise upward
            self.handleError(record)

    def close(self) -> None:
        self.writer.close()
        super().close()


def configure_logging(
    level: int | str = "WARNING",
    json_logs: bool = False,
    stream: IO[str] | None = None,
    *,
    log_file: Path | str | None = None,
    log_file_max_bytes: int = 10 << 20,
    log_file_backups: int = 3,
) -> logging.Logger:
    """Install one handler on the ``repro`` logger; idempotent.

    Re-running replaces (and closes) the previously installed handler
    (handlers added by the application or test harness are left alone).
    With ``log_file`` set, records go to a size-rotated file
    (``log_file_max_bytes`` per file, ``log_file_backups`` numbered
    backups) instead of ``stream``.  Returns the configured logger.
    """
    if isinstance(level, str):
        numeric = logging.getLevelName(level.upper())
        if not isinstance(numeric, int):
            raise ValueError(f"unknown log level {level!r}")
    else:
        numeric = level
    root = logging.getLogger("repro")
    for handler in list(root.handlers):
        if getattr(handler, "_repro_obs_handler", False):
            root.removeHandler(handler)
            handler.close()
    new_handler: logging.Handler
    if log_file is not None:
        # Imported here: repro.obs.export pulls in the metrics module,
        # which imports this one — a module-level import would cycle.
        from repro.obs.export import RotatingFileWriter

        new_handler = _RotatingFileLogHandler(
            RotatingFileWriter(
                Path(log_file),
                max_bytes=log_file_max_bytes,
                backups=log_file_backups,
            )
        )
    else:
        new_handler = logging.StreamHandler(stream or sys.stderr)
    new_handler._repro_obs_handler = True  # type: ignore[attr-defined]
    new_handler.setFormatter(
        JsonLogFormatter() if json_logs else TextLogFormatter()
    )
    root.addHandler(new_handler)
    root.setLevel(numeric)
    return root
