"""Lightweight tracing spans with JSON export.

A span is one timed operation; spans opened while another span is active
become its children, so one traced ``recommend`` call yields a tree::

    recommend(strategy=breadth, is_size=.., gs_size=.., as_size=..)
    └── rank(strategy=breadth)

Usage mirrors OpenTelemetry's context-manager API without the dependency::

    with obs.trace_span("recommend", strategy="breadth", k=10) as span:
        ...
        span.set_attr("candidates", len(candidates))

    obs.get_tracer().spans()        # list of root-span dicts
    obs.get_tracer().export_json()  # the same, as a JSON document

:func:`trace_span` is the only entry point instrumented code uses: when
tracing is disabled (:mod:`repro.obs.runtime`) it yields the shared
:data:`NOOP_SPAN` without touching the tracer — one boolean check, no
allocation.  Parenting uses a :class:`~contextvars.ContextVar`, so spans
nest correctly across the HTTP service's handler threads.

Consumers that want every finished root span — the stage profiler, the
service's slow-request log — register a *sink* (:meth:`Tracer.add_sink`)
instead of polling :meth:`Tracer.spans`: sinks see each root exactly once,
including roots that the bounded buffer has already evicted by the time a
poller would run.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from contextvars import ContextVar
from types import TracebackType
from typing import Callable

from repro.obs import runtime

#: Lock discipline, machine-checked by ``repro-lint`` (rule RL001, see
#: docs/static-analysis.md): the bounded root-span deque and the sink list
#: are shared across handler threads.
_GUARDED_BY = {
    "Tracer._roots": "_lock",
    "Tracer._sinks": "_lock",
    "Tracer._dropped": "_lock",
}


class Span:
    """One timed operation with attributes and child spans."""

    __slots__ = ("name", "attributes", "start_time", "duration", "children")

    is_recording = True

    def __init__(self, name: str, attributes: dict[str, object]) -> None:
        self.name = name
        # The dict is taken by reference, not copied: every constructor site
        # passes a fresh ``**kwargs`` dict, and spans sit on the hot traced
        # path where the copy is measurable.
        self.attributes = attributes
        self.start_time = time.time()
        self.duration: float | None = None
        self.children: list["Span"] = []

    def set_attr(self, key: str, value: object) -> None:
        """Attach one attribute to the span."""
        self.attributes[key] = value

    def set_attrs(self, **attributes: object) -> None:
        """Attach several attributes at once."""
        self.attributes.update(attributes)

    def to_dict(self) -> dict:
        """The span tree as plain JSON-serializable data."""
        return {
            "name": self.name,
            "start_time": round(self.start_time, 6),
            "duration_ms": (
                None if self.duration is None else round(self.duration * 1e3, 4)
            ),
            "attributes": dict(self.attributes),
            "children": [child.to_dict() for child in self.children],
        }


class _NoopSpan:
    """Inert stand-in yielded when tracing is disabled."""

    __slots__ = ()

    is_recording = False

    def set_attr(self, key: str, value: object) -> None:
        """Discard the attribute."""

    def set_attrs(self, **attributes: object) -> None:
        """Discard the attributes."""


#: The shared no-op span; ``span.is_recording`` distinguishes it, letting
#: call sites skip computing expensive attributes when tracing is off.
NOOP_SPAN = _NoopSpan()

_current_span: ContextVar[Span | None] = ContextVar("repro_obs_span", default=None)


class _SpanGuard:
    """Class-based span context manager.

    A hand-rolled ``__enter__``/``__exit__`` pair is roughly 3x cheaper
    than the generator-based ``@contextmanager`` it replaced — spans open
    on every instrumented pipeline stage, so the constant matters for the
    ≤10% enabled-path budget of ``benchmarks/bench_obs_overhead.py``.
    """

    __slots__ = ("_tracer", "_span", "_parent", "_token", "_start")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        span = self._span
        self._parent = _current_span.get()
        self._token = _current_span.set(span)
        self._start = time.perf_counter()
        return span

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> bool:
        span = self._span
        span.duration = time.perf_counter() - self._start
        _current_span.reset(self._token)
        if exc is not None:
            span.attributes["error"] = f"{type(exc).__name__}: {exc}"
        parent = self._parent
        if parent is not None:
            parent.children.append(span)
        else:
            self._tracer._finish_root(span)
        return False


class _NoopGuard:
    """Inert context manager yielded when tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> _NoopSpan:
        return NOOP_SPAN

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> bool:
        return False


#: Shared inert guard: stateless, so one instance serves every disabled
#: ``trace_span`` call without allocation.
_NOOP_GUARD = _NoopGuard()


class Tracer:
    """Collects finished root spans, bounded to the most recent ``max_spans``.

    When the buffer is full the **oldest** root is dropped to make room —
    a tracer favours recent traffic, matching the bounded deque semantics
    (``tests/test_obs.py`` pins this down).  :attr:`capacity`,
    :meth:`occupancy` and :meth:`dropped` expose the buffer state for
    ``GET /debug/vars`` — a climbing dropped count tells an operator the
    buffer is shedding history faster than anyone reads it.
    """

    def __init__(self, max_spans: int = 1024) -> None:
        self._lock = threading.Lock()
        self._roots: deque[Span] = deque(maxlen=max_spans)
        self._sinks: list[Callable[[Span], None]] = []
        self._dropped = 0
        self.capacity = max_spans

    def span(self, name: str, **attributes: object) -> _SpanGuard:
        """Open a recording span; nests under the context's active span."""
        return _SpanGuard(self, Span(name, attributes))

    def _finish_root(self, span: Span) -> None:
        """Buffer a finished root span and fan it out to the sinks."""
        with self._lock:
            # A full deque evicts its oldest root silently; count the
            # eviction so /debug/vars can report the shed history.
            if len(self._roots) == self.capacity:
                self._dropped += 1
            self._roots.append(span)
            sinks = list(self._sinks)
        # Sinks run outside the lock: a sink that re-enters the tracer (or
        # just takes time) must not stall other handler threads finishing
        # their roots.
        for sink in sinks:
            try:
                sink(span)
            except Exception:  # noqa: BLE001 - sinks must not break tracing
                pass

    def add_sink(self, sink: Callable[[Span], None]) -> None:
        """Register a callable invoked with every finished root span."""
        with self._lock:
            if sink not in self._sinks:
                self._sinks.append(sink)

    def remove_sink(self, sink: Callable[[Span], None]) -> None:
        """Unregister a sink; unknown sinks are ignored."""
        with self._lock:
            if sink in self._sinks:
                self._sinks.remove(sink)

    def occupancy(self) -> int:
        """Number of root spans currently buffered (≤ :attr:`capacity`)."""
        with self._lock:
            return len(self._roots)

    def dropped(self) -> int:
        """Root spans evicted from the full buffer since construction."""
        with self._lock:
            return self._dropped

    def spans(self) -> list[dict]:
        """Finished root spans (oldest first) as dict trees."""
        with self._lock:
            roots = list(self._roots)
        return [span.to_dict() for span in roots]

    def export_json(self, indent: int | None = None) -> str:
        """The finished root spans as one JSON document."""
        return json.dumps({"spans": self.spans()}, indent=indent, default=str)

    def reset(self) -> None:
        """Drop all finished spans."""
        with self._lock:
            self._roots.clear()


_tracer = Tracer()


def get_tracer() -> Tracer:
    """The process-wide tracer all built-in instrumentation uses."""
    return _tracer


def set_tracer(tracer: Tracer) -> Tracer:
    """Replace the process-wide tracer; returns the previous one."""
    global _tracer
    previous = _tracer
    _tracer = tracer
    return previous


def trace_span(name: str, **attributes: object) -> _SpanGuard | _NoopGuard:
    """Open a span on the global tracer, or yield :data:`NOOP_SPAN` when off."""
    if not runtime.tracing_enabled():
        return _NOOP_GUARD
    return _SpanGuard(_tracer, Span(name, attributes))
