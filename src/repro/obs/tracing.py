"""Lightweight tracing spans with JSON export.

A span is one timed operation; spans opened while another span is active
become its children, so one traced ``recommend`` call yields a tree::

    recommend(strategy=breadth, is_size=.., gs_size=.., as_size=..)
    └── rank(strategy=breadth)

Usage mirrors OpenTelemetry's context-manager API without the dependency::

    with obs.trace_span("recommend", strategy="breadth", k=10) as span:
        ...
        span.set_attr("candidates", len(candidates))

    obs.get_tracer().spans()        # list of root-span dicts
    obs.get_tracer().export_json()  # the same, as a JSON document

:func:`trace_span` is the only entry point instrumented code uses: when
tracing is disabled (:mod:`repro.obs.runtime`) it yields the shared
:data:`NOOP_SPAN` without touching the tracer — one boolean check, no
allocation.  Parenting uses a :class:`~contextvars.ContextVar`, so spans
nest correctly across the HTTP service's handler threads.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from collections.abc import Iterator
from contextlib import contextmanager
from contextvars import ContextVar

from repro.obs import runtime

#: Lock discipline, machine-checked by ``repro-lint`` (rule RL001, see
#: docs/static-analysis.md): the bounded root-span deque is shared across
#: handler threads.
_GUARDED_BY = {
    "Tracer._roots": "_lock",
}


class Span:
    """One timed operation with attributes and child spans."""

    __slots__ = ("name", "attributes", "start_time", "duration", "children")

    is_recording = True

    def __init__(self, name: str, attributes: dict[str, object]) -> None:
        self.name = name
        self.attributes = dict(attributes)
        self.start_time = time.time()
        self.duration: float | None = None
        self.children: list["Span"] = []

    def set_attr(self, key: str, value: object) -> None:
        """Attach one attribute to the span."""
        self.attributes[key] = value

    def set_attrs(self, **attributes: object) -> None:
        """Attach several attributes at once."""
        self.attributes.update(attributes)

    def to_dict(self) -> dict:
        """The span tree as plain JSON-serializable data."""
        return {
            "name": self.name,
            "start_time": round(self.start_time, 6),
            "duration_ms": (
                None if self.duration is None else round(self.duration * 1e3, 4)
            ),
            "attributes": dict(self.attributes),
            "children": [child.to_dict() for child in self.children],
        }


class _NoopSpan:
    """Inert stand-in yielded when tracing is disabled."""

    __slots__ = ()

    is_recording = False

    def set_attr(self, key: str, value: object) -> None:
        """Discard the attribute."""

    def set_attrs(self, **attributes: object) -> None:
        """Discard the attributes."""


#: The shared no-op span; ``span.is_recording`` distinguishes it, letting
#: call sites skip computing expensive attributes when tracing is off.
NOOP_SPAN = _NoopSpan()

_current_span: ContextVar[Span | None] = ContextVar("repro_obs_span", default=None)


class Tracer:
    """Collects finished root spans, bounded to the most recent ``max_spans``."""

    def __init__(self, max_spans: int = 1024) -> None:
        self._lock = threading.Lock()
        self._roots: deque[Span] = deque(maxlen=max_spans)

    @contextmanager
    def span(self, name: str, **attributes: object) -> Iterator[Span]:
        """Open a recording span; nests under the context's active span."""
        parent = _current_span.get()
        span = Span(name, attributes)
        token = _current_span.set(span)
        start = time.perf_counter()
        try:
            yield span
        except BaseException as exc:
            span.set_attr("error", f"{type(exc).__name__}: {exc}")
            raise
        finally:
            span.duration = time.perf_counter() - start
            _current_span.reset(token)
            if parent is not None:
                parent.children.append(span)
            else:
                with self._lock:
                    self._roots.append(span)

    def spans(self) -> list[dict]:
        """Finished root spans (oldest first) as dict trees."""
        with self._lock:
            roots = list(self._roots)
        return [span.to_dict() for span in roots]

    def export_json(self, indent: int | None = None) -> str:
        """The finished root spans as one JSON document."""
        return json.dumps({"spans": self.spans()}, indent=indent, default=str)

    def reset(self) -> None:
        """Drop all finished spans."""
        with self._lock:
            self._roots.clear()


_tracer = Tracer()


def get_tracer() -> Tracer:
    """The process-wide tracer all built-in instrumentation uses."""
    return _tracer


def set_tracer(tracer: Tracer) -> Tracer:
    """Replace the process-wide tracer; returns the previous one."""
    global _tracer
    previous = _tracer
    _tracer = tracer
    return previous


@contextmanager
def trace_span(name: str, **attributes: object) -> Iterator[Span | _NoopSpan]:
    """Open a span on the global tracer, or yield :data:`NOOP_SPAN` when off."""
    if not runtime.tracing_enabled():
        yield NOOP_SPAN
        return
    with get_tracer().span(name, **attributes) as span:
        yield span
